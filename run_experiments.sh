#!/bin/sh
# Regenerates every paper artifact at the default reproduction scale and
# collects the outputs under results/. Each phase logs its wall time so
# slowdowns are attributable to a specific artifact; the summary lands
# in results/phase_times.txt.
set -e
cd "$(dirname "$0")"
BIN=./target/release
mkdir -p results
: > results/phase_times.txt

# phase <name> <command...>: run a phase, tee its console output, and
# append its wall time (seconds) to the summary.
phase() {
    name=$1
    shift
    start=$(date +%s)
    "$@" | tee "results/${name}_console.txt"
    end=$(date +%s)
    printf '%-12s %4ds\n' "$name" "$((end - start))" | tee -a results/phase_times.txt
}

total_start=$(date +%s)
phase motivation "$BIN/motivation"
phase fig5       "$BIN/fig5" --jobs 120
phase fig6       "$BIN/fig6" --jobs 120
phase fig7       "$BIN/fig7" --jobs 30
phase fig8       "$BIN/fig8" --jobs 120
phase ablation   "$BIN/ablation" --jobs 80
phase sweep      "$BIN/sweep" --jobs 40 --trace-out results/trace
phase chaos      "$BIN/chaos" --jobs 40
phase bench      "$BIN/bench" --jobs 40
total_end=$(date +%s)
printf '%-12s %4ds\n' total "$((total_end - total_start))" | tee -a results/phase_times.txt
echo "all experiments complete"
