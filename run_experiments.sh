#!/usr/bin/env bash
# Regenerates every paper artifact at the default reproduction scale and
# collects the outputs under results/. Each phase logs its wall time and
# ok/FAILED status so slowdowns and breakage are attributable to a
# specific artifact; the summary lands in results/phase_times.txt. A
# failing phase is recorded, the remaining phases still run, and the
# script exits nonzero.
#
# GURITA_THREADS (default 1) sets the intra-run component-pool width
# passed to every figure/sweep phase via --threads (0 = one worker per
# core; the online phase reads the variable directly); results are
# bit-for-bit identical at any setting, so this is purely a wall-time
# knob. The per-phase thread count is recorded in
# results/phase_times.txt so snapshots are comparable. Note: wall
# times from before the PR 9 SoA hot-state layout (CHANGELOG
# "Hot-loop overhaul") are not comparable to later snapshots — the
# engine's advance/full-pass cost model changed.
set -euo pipefail
cd "$(dirname "$0")"
BIN=./target/release
THREADS="${GURITA_THREADS:-1}"
mkdir -p results
: > results/phase_times.txt
failed=0

# phase <name> <threads> <command...>: run a phase, tee its console
# output, and append its wall time (seconds), thread count, and
# ok/FAILED status to the summary. `tee` must not mask the binary's
# exit code (pipefail), and one failing phase must not silently abort
# the sweep (the failure is recorded and re-raised at the end). The
# thread column records what the phase was *given* ("-" for phases
# without a --threads flag).
phase() {
    local name=$1 threads=$2
    shift 2
    local start end status
    start=$(date +%s)
    if "$@" | tee "results/${name}_console.txt"; then
        status=ok
    else
        status=FAILED
        failed=1
    fi
    end=$(date +%s)
    printf '%-12s %4ds  threads=%-4s %s\n' "$name" "$((end - start))" "$threads" "$status" \
        | tee -a results/phase_times.txt
}

total_start=$(date +%s)
phase motivation -          "$BIN/motivation"
phase fig5       "$THREADS" "$BIN/fig5" --jobs 120 --threads "$THREADS"
phase fig6       "$THREADS" "$BIN/fig6" --jobs 120 --threads "$THREADS"
phase fig7       "$THREADS" "$BIN/fig7" --jobs 30 --threads "$THREADS"
phase fig8       "$THREADS" "$BIN/fig8" --jobs 120 --threads "$THREADS"
phase ablation   "$THREADS" "$BIN/ablation" --jobs 80 --threads "$THREADS"
phase sweep      "$THREADS" "$BIN/sweep" --jobs 40 --threads "$THREADS" --trace-out results/trace
phase chaos      "$THREADS" "$BIN/chaos" --jobs 40 --threads "$THREADS" --control-faults
phase online     "$THREADS" env GURITA_THREADS="$THREADS" \
    GURITA_ONLINE_OUT=results/online_arrivals.json \
    GURITA_ONLINE_METRICS_OUT=results/daemon_metrics.json "$BIN/online_arrivals"
phase bench      -          "$BIN/bench" --jobs 40
total_end=$(date +%s)
printf '%-12s %4ds\n' total "$((total_end - total_start))" | tee -a results/phase_times.txt

if [ "$failed" -ne 0 ]; then
    echo "some experiments FAILED (see results/phase_times.txt)" >&2
    exit 1
fi
echo "all experiments complete"
