#!/usr/bin/env bash
# Regenerates every paper artifact at the default reproduction scale and
# collects the outputs under results/. Each phase logs its wall time and
# ok/FAILED status so slowdowns and breakage are attributable to a
# specific artifact; the summary lands in results/phase_times.txt. A
# failing phase is recorded, the remaining phases still run, and the
# script exits nonzero.
set -euo pipefail
cd "$(dirname "$0")"
BIN=./target/release
mkdir -p results
: > results/phase_times.txt
failed=0

# phase <name> <command...>: run a phase, tee its console output, and
# append its wall time (seconds) and status to the summary. `tee` must
# not mask the binary's exit code (pipefail), and one failing phase must
# not silently abort the sweep (the failure is recorded and re-raised at
# the end).
phase() {
    local name=$1
    shift
    local start end status
    start=$(date +%s)
    if "$@" | tee "results/${name}_console.txt"; then
        status=ok
    else
        status=FAILED
        failed=1
    fi
    end=$(date +%s)
    printf '%-12s %4ds  %s\n' "$name" "$((end - start))" "$status" \
        | tee -a results/phase_times.txt
}

total_start=$(date +%s)
phase motivation "$BIN/motivation"
phase fig5       "$BIN/fig5" --jobs 120
phase fig6       "$BIN/fig6" --jobs 120
phase fig7       "$BIN/fig7" --jobs 30
phase fig8       "$BIN/fig8" --jobs 120
phase ablation   "$BIN/ablation" --jobs 80
phase sweep      "$BIN/sweep" --jobs 40 --trace-out results/trace
phase chaos      "$BIN/chaos" --jobs 40 --control-faults
phase bench      "$BIN/bench" --jobs 40
total_end=$(date +%s)
printf '%-12s %4ds\n' total "$((total_end - total_start))" | tee -a results/phase_times.txt

if [ "$failed" -ne 0 ]; then
    echo "some experiments FAILED (see results/phase_times.txt)" >&2
    exit 1
fi
echo "all experiments complete"
