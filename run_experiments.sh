#!/bin/sh
# Regenerates every paper artifact at the default reproduction scale and
# collects the outputs under results/.
set -e
cd "$(dirname "$0")"
BIN=./target/release
mkdir -p results
$BIN/motivation                  | tee results/motivation_console.txt
$BIN/fig5 --jobs 120             | tee results/fig5_console.txt
$BIN/fig6 --jobs 120             | tee results/fig6_console.txt
$BIN/fig7 --jobs 30              | tee results/fig7_console.txt
$BIN/fig8 --jobs 120             | tee results/fig8_console.txt
$BIN/ablation --jobs 80          | tee results/ablation_console.txt
$BIN/sweep --jobs 40             | tee results/sweep_console.txt
$BIN/chaos --jobs 40             | tee results/chaos_console.txt
$BIN/bench --jobs 40             | tee results/bench_console.txt
echo "all experiments complete"
