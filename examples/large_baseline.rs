//! Quick 48-pod throughput probe: runs the large-fabric gate scenario
//! (bursty FB-Tao under Gurita on the 27,648-host fat-tree, seed 42)
//! once and prints events/sec, for fast interactive perf iteration.
//!
//! Usage: `cargo run --release --example large_baseline [jobs] [threads]`
//! (default 40 jobs / 1 thread — the same configuration the `bench`
//! binary records in `results/BENCH_sim.json` under `large`, which is
//! the number that gates PRs; this example skips the warm-up run and
//! A/B pass, so expect slightly noisier output. `threads` arms the
//! intra-run component pool — `0` = one worker per core — without
//! changing results).

use gurita_bench::timed_run;
use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_workload::dags::StructureKind;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut scenario = Scenario::bursty(StructureKind::FbTao, jobs, 48, 42);
    scenario.threads = threads;
    let specs = scenario.jobs();
    let flows: usize = specs
        .iter()
        .map(|j| {
            (0..j.dag().num_vertices())
                .map(|v| j.coflow(v).width())
                .sum::<usize>()
        })
        .sum();
    eprintln!("jobs={} flows={}", specs.len(), flows);
    let (result, tp) = timed_run(|| scenario.run(SchedulerKind::Gurita));
    println!(
        "events={} elapsed={:.3}s events/sec={:.0} completed_jobs={} arena_unique={} arena_kib={:.1}",
        result.events,
        tp.wall_sec,
        tp.events_per_sec,
        result.jobs.len(),
        result.path_arena_unique,
        result.path_arena_storage_bytes as f64 / 1024.0
    );
}
