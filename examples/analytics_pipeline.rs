//! A TPC-DS-style analytics query (the paper's CD workload) competing
//! with background shuffle traffic: the motivating scenario for
//! stage-aware scheduling. The query sends most of its bytes in its
//! scan stage and almost nothing afterwards — a TBS scheduler keeps
//! punishing it in the late stages; Gurita re-evaluates per stage.
//!
//! ```sh
//! cargo run --release -p gurita-examples --example analytics_pipeline
//! ```

use gurita_experiments::roster::SchedulerKind;
use gurita_model::{units, JobId, JobSpec};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::FatTree;
use gurita_workload::dags::tpcds_query42;
use gurita_workload::facebook::{FacebookConfig, FacebookSampler};
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pods = 8;
    let hosts = pods * pods * pods / 4;

    // The analytics query: TPC-DS query-42 shape, 4 GB total with the
    // canonical byte skew (scan-heavy, tiny aggregate).
    let template = tpcds_query42();
    let sampler = FacebookSampler::new(FacebookConfig {
        num_hosts: hosts,
        ..FacebookConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(1);
    let total = 4.0 * units::GB;
    let coflows: Vec<_> = (0..template.dag.num_vertices())
        .map(|v| {
            let width = ((8.0 * template.width_scale[v]).round() as usize).max(1);
            sampler
                .sample_coflow_with_width(&mut rng, width)
                .materialize(total * template.byte_fraction[v])
        })
        .collect();
    let query = JobSpec::new(0, 0.0, coflows, template.dag.clone())?;

    // Background: a steady mix of production-shaped jobs.
    let mut background = JobGenerator::new(
        WorkloadConfig {
            num_jobs: 40,
            num_hosts: hosts,
            category_weights: [0.5, 0.3, 0.15, 0.05, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        7,
    )
    .generate();
    for job in &mut background {
        *job = job.with_id(job.id().index() + 1);
    }

    println!(
        "query: {} over {} stages; background: {} jobs\n",
        units::format_bytes(query.total_bytes()),
        query.num_stages(),
        background.len()
    );
    println!(
        "{:<12} {:>12} {:>16}",
        "scheduler", "query JCT", "avg JCT (all)"
    );
    for kind in [
        SchedulerKind::Gurita,
        SchedulerKind::Stream,
        SchedulerKind::Aalo,
        SchedulerKind::Baraat,
        SchedulerKind::Pfs,
    ] {
        let mut jobs = vec![query.clone()];
        jobs.extend(background.iter().cloned());
        let mut sim = Simulation::new(FatTree::new(pods)?, SimConfig::default());
        let mut scheduler = kind.build();
        let result = sim.run(jobs, scheduler.as_mut());
        let query_jct = result
            .jobs
            .iter()
            .find(|j| j.id == JobId(0))
            .expect("query completes")
            .jct;
        println!(
            "{:<12} {:>12} {:>16}",
            kind.label(),
            units::format_seconds(query_jct),
            units::format_seconds(result.avg_jct()),
        );
    }
    Ok(())
}
