//! Quickstart: build a two-stage job, run it through the flow-level
//! simulator under Gurita, and inspect the completion records.
//!
//! ```sh
//! cargo run -p gurita-examples --example quickstart
//! ```

use gurita::scheduler::{GuritaConfig, GuritaScheduler};
use gurita_model::{units, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::FatTree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A datacenter fabric: 4-pod fat-tree (16 hosts, 20 switches),
    //    10 Gbit/s links, ECMP routing — the small sibling of the
    //    paper's 8-pod evaluation fabric.
    let fabric = FatTree::new(4)?;

    // 2. A two-stage job: a 3-flow shuffle feeding a single reduce
    //    output, plus a competing single-stage job.
    let shuffle = CoflowSpec::new(vec![
        FlowSpec::new(HostId(0), HostId(8), 120.0 * units::MB),
        FlowSpec::new(HostId(1), HostId(8), 80.0 * units::MB),
        FlowSpec::new(HostId(2), HostId(9), 100.0 * units::MB),
    ]);
    let reduce = CoflowSpec::new(vec![FlowSpec::new(HostId(8), HostId(15), 20.0 * units::MB)]);
    let pipeline = JobSpec::new(0, 0.0, vec![shuffle, reduce], JobDag::chain(2)?)?;

    let competitor = JobSpec::new(
        1,
        0.05,
        vec![CoflowSpec::new(vec![FlowSpec::new(
            HostId(3),
            HostId(8),
            10.0 * units::MB,
        )])],
        JobDag::chain(1)?,
    )?;

    // 3. Run both jobs under the Gurita scheduler.
    let mut sim = Simulation::new(fabric, SimConfig::default());
    let mut scheduler = GuritaScheduler::new(GuritaConfig::default());
    let result = sim.run(vec![pipeline, competitor], &mut scheduler);

    // 4. Inspect completions.
    println!("scheduler: {}", result.scheduler);
    println!("makespan : {}", units::format_seconds(result.makespan));
    for job in &result.jobs {
        println!(
            "job {:>2}  JCT {:>10}  total {:>9}  stages {}",
            job.id,
            units::format_seconds(job.jct),
            units::format_bytes(job.total_bytes),
            job.num_stages,
        );
    }
    for cf in &result.coflows {
        println!(
            "  coflow {:>2} (job {}, vertex {})  CCT {:>10}",
            cf.id,
            cf.job,
            cf.dag_vertex,
            units::format_seconds(cf.cct()),
        );
    }
    Ok(())
}
