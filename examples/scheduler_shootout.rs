//! Full-roster comparison over one workload: every scheduler —
//! including the ablation variants and the clairvoyant Varys-SEBF
//! extension — replays the same trace-driven production mix, and the
//! improvement table (the paper's Figure 6 semantics) is printed.
//!
//! ```sh
//! cargo run --release -p gurita-examples --example scheduler_shootout -- [jobs]
//! ```

use gurita_experiments::figures::{raw_runs, FigureOptions};
use gurita_experiments::metrics::{category_populations, improvement_table};
use gurita_experiments::report::render_improvement_table;
use gurita_experiments::roster::SchedulerKind;
use gurita_workload::dags::StructureKind;

fn main() {
    let jobs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);
    let opts = FigureOptions {
        jobs,
        seed: 3,
        ..FigureOptions::default()
    };
    let kinds = [
        SchedulerKind::Gurita,
        SchedulerKind::GuritaLocal,
        SchedulerKind::GuritaPlus,
        SchedulerKind::Aalo,
        SchedulerKind::AaloLocal,
        SchedulerKind::Stream,
        SchedulerKind::Baraat,
        SchedulerKind::Pfs,
        SchedulerKind::VarysSebf,
    ];
    let results = raw_runs(StructureKind::ProductionMix, &opts, &kinds);
    let (gurita, others) = results.split_first().expect("roster is non-empty");
    println!(
        "workload: {} production-mix jobs on an 8-pod fat-tree\n",
        jobs
    );
    println!(
        "{}",
        render_improvement_table(
            &format!(
                "Scheduler shootout (Gurita avg JCT {:.3}s; factors >1 = Gurita faster)",
                gurita.avg_jct()
            ),
            &improvement_table(gurita, others),
            &category_populations(gurita),
        )
    );
    println!("{:<12} {:>12} {:>10}", "scheduler", "avg JCT (s)", "events");
    for run in &results {
        println!(
            "{:<12} {:>12.3} {:>10}",
            run.scheduler,
            run.avg_jct(),
            run.events
        );
    }
}
