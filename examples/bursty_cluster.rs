//! Bursty arrivals and starvation mitigation.
//!
//! Replays a burst storm (jobs arriving 2 µs apart, as in the paper's
//! bursty scenario) under Gurita with strict priority queues versus
//! Gurita with the WRR starvation mitigation, and reports the tail JCT
//! of the lowest-priority (largest) jobs — the jobs SPQ starves.
//!
//! ```sh
//! cargo run --release -p gurita-examples --example bursty_cluster
//! ```

use gurita_experiments::roster::SchedulerKind;
use gurita_model::{units, SizeCategory};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::FatTree;
use gurita_workload::arrivals::ArrivalProcess;
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pods = 8;
    let workload = WorkloadConfig {
        num_jobs: 60,
        num_hosts: pods * pods * pods / 4,
        structure: StructureKind::FbTao,
        arrivals: ArrivalProcess::Bursty {
            burst_size: 20,
            intra_gap: 2.0 * units::MICROS,
            inter_gap: 5.0,
        },
        category_weights: [0.35, 0.25, 0.2, 0.1, 0.1, 0.0, 0.0],
        ..WorkloadConfig::default()
    };
    let jobs = JobGenerator::new(workload, 11).generate();
    println!(
        "burst storm: {} jobs, {} bursts of 20, 2us intra-burst gaps\n",
        jobs.len(),
        jobs.len() / 20
    );
    println!(
        "{:<14} {:>12} {:>14} {:>16}",
        "variant", "avg JCT", "p95 JCT", "big-job avg JCT"
    );
    for kind in [SchedulerKind::Gurita, SchedulerKind::GuritaSpq] {
        let mut sim = Simulation::new(FatTree::new(pods)?, SimConfig::default());
        let mut scheduler = kind.build();
        let result = sim.run(jobs.clone(), scheduler.as_mut());
        let big_avg: f64 = {
            let big: Vec<f64> = result
                .jobs
                .iter()
                .filter(|j| j.category() >= SizeCategory::IV)
                .map(|j| j.jct)
                .collect();
            if big.is_empty() {
                0.0
            } else {
                big.iter().sum::<f64>() / big.len() as f64
            }
        };
        println!(
            "{:<14} {:>12} {:>14} {:>16}",
            kind.label(),
            units::format_seconds(result.avg_jct()),
            units::format_seconds(result.jct_percentile(0.95).unwrap_or(0.0)),
            units::format_seconds(big_avg),
        );
    }
    println!(
        "\nWRR emulation trades a little average JCT for bounded delay on\n\
         demoted jobs — the starvation SPQ would otherwise inflict."
    );
    Ok(())
}
