//! Examples-only package. The runnable binaries live at the package
//! root as `[[example]]` targets:
//!
//! * `quickstart` — build a job, simulate, inspect results;
//! * `analytics_pipeline` — a TPC-DS-style query DAG competing with
//!   background traffic under different schedulers;
//! * `bursty_cluster` — a bursty arrival storm and Gurita's starvation
//!   mitigation;
//! * `scheduler_shootout` — the full roster over one workload with a
//!   comparison table.
//!
//! Run with `cargo run -p gurita-examples --example <name>`.
