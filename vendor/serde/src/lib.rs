//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this stub routes everything
//! through an owned [`Value`] tree: [`Serialize`] converts to a `Value`,
//! [`Deserialize`] converts back. The companion `serde_derive` crate
//! generates both impls for structs and enums, and the vendored
//! `serde_json` prints/parses `Value`s. All numbers travel as `f64`
//! (exact for integers below 2^53, which covers every counter in this
//! workspace).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between
/// `Serialize` and `Deserialize`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

/// Types convertible into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: what was expected, and where.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// A required field was absent.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` for `{type_name}`"))
    }

    /// The input had the wrong shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        Self::custom(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field in a `Value::Map` (derive helper).
pub fn get_field<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    match value {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Num(n) => Ok(*n),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed.map(|v| match v.try_into() {
                    Ok(arr) => arr,
                    Err(_) => unreachable!("length checked above"),
                })
            }
            other => Err(DeError::expected("fixed-length sequence", other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let tree = v.to_value();
        assert_eq!(Vec::<Option<u32>>::from_value(&tree).unwrap(), v);
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let arr: [Option<f64>; 3] = [Some(1.5), None, Some(-2.0)];
        assert_eq!(
            <[Option<f64>; 3]>::from_value(&arr.to_value()).unwrap(),
            arr
        );
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn integers_reject_fractional_input() {
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert_eq!(u32::from_value(&Value::Num(7.0)).unwrap(), 7);
    }
}
