//! Minimal offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored Value-tree serde, without `syn`/`quote`: the input item is
//! parsed with a small hand-rolled token cursor and the impl is emitted
//! as a string parsed back into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields, honoring `#[serde(default)]` and
//!   `#[serde(default = "path")]` per field (the path is resolved in
//!   the struct's module, as real serde does)
//! - tuple structs (newtype and multi-field)
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   like real serde's default representation)
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Field {
    name: String,
    default: Option<DefaultKind>,
}

/// How a missing field is filled during deserialization.
enum DefaultKind {
    /// Bare `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

// ---------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn is_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    /// Skips attributes; returns the field-default spec if any was
    /// `#[serde(default)]` or `#[serde(default = "path")]`.
    fn skip_attrs(&mut self) -> Option<DefaultKind> {
        let mut default = None;
        while self.is_punct('#') {
            self.bump();
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if let Some(kind) = attr_serde_default(g.stream()) {
                        default = Some(kind);
                    }
                }
                other => panic!("expected attribute brackets after `#`, got {other:?}"),
            }
        }
        default
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_vis(&mut self) {
        if self.is_ident("pub") {
            self.bump();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.bump();
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, got {other:?}"),
        }
    }

    fn expect_punct(&mut self, c: char) {
        match self.bump() {
            Some(TokenTree::Punct(p)) if p.as_char() == c => {}
            other => panic!("expected `{c}`, got {other:?}"),
        }
    }

    /// Skips a type expression, stopping at a top-level `,` (consumed)
    /// or end of stream. Angle-bracket depth is tracked so commas inside
    /// generic arguments don't terminate early.
    fn skip_type_until_comma(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    self.bump();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                    self.bump();
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }
}

fn attr_serde_default(stream: TokenStream) -> Option<DefaultKind> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let args = match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            args.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => return None,
    };
    let mut i = 0;
    while i < args.len() {
        if matches!(&args[i], TokenTree::Ident(id) if id.to_string() == "default") {
            // `default = "path"`: the path literal comes quoted; strip
            // the quotes and call it verbatim at the use site.
            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                (args.get(i + 1), args.get(i + 2))
            {
                if eq.as_char() == '=' {
                    let raw = lit.to_string();
                    let path = raw.trim_matches('"').to_string();
                    assert!(
                        !path.is_empty() && !path.contains('"'),
                        "malformed #[serde(default = ...)] path literal: {raw}"
                    );
                    return Some(DefaultKind::Path(path));
                }
            }
            return Some(DefaultKind::Std);
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    if c.is_punct('<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let data = match keyword.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    };
    Item { name, data }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let default = c.skip_attrs();
        c.skip_vis();
        let name = c.expect_ident();
        c.expect_punct(':');
        c.skip_type_until_comma();
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break; // trailing comma
        }
        c.skip_type_until_comma();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.bump();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.bump();
                f
            }
            _ => Fields::Unit,
        };
        if c.is_punct(',') {
            c.bump();
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Data::Struct(Fields::Named(fields)) => ser_named_fields(fields, "&self.", ""),
        Data::Struct(Fields::Tuple(1)) => {
            "<_ as ::serde::Serialize>::to_value(&self.0)".to_string()
        }
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("<_ as ::serde::Serialize>::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    Fields::Named(fs) => {
                        let binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                        let inner = ser_named_fields(fs, "", "");
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(x0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), <_ as ::serde::Serialize>::to_value(x0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("<_ as ::serde::Serialize>::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
            fn to_value(&self) -> ::serde::Value {{ {body} }} \
        }}"
    )
}

/// Serializes named fields into a `Value::Map` expression. `access` is
/// the prefix before each field name: `"&self."` for structs, `""` for
/// match-bound enum variant fields (already references).
fn ser_named_fields(fields: &[Field], access: &str, _unused: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), <_ as ::serde::Serialize>::to_value({access}{n}))",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

// ---------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Unit) => format!("Ok({name})"),
        Data::Struct(Fields::Named(fields)) => {
            let inits = de_named_fields(name, fields, "value");
            format!("Ok({name} {{ {inits} }})")
        }
        Data::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(<_ as ::serde::Deserialize>::from_value(value)?))")
        }
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("<_ as ::serde::Deserialize>::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{ \
                    ::serde::Value::Seq(items) if items.len() == {n} => Ok({name}({items})), \
                    other => Err(::serde::DeError::expected(\"{n}-element sequence for `{name}`\", other)), \
                }}",
                items = items.join(", ")
            )
        }
        Data::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
            fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
        }}"
    )
}

/// Field initializers for a named-fields constructor, reading from the
/// map expression `source`.
fn de_named_fields(type_name: &str, fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if let Some(kind) = &f.default {
                let fallback = match kind {
                    DefaultKind::Std => "::std::default::Default::default()".to_string(),
                    DefaultKind::Path(path) => format!("{path}()"),
                };
                format!(
                    "{n}: match ::serde::get_field({source}, \"{n}\") {{ \
                        Some(v) => <_ as ::serde::Deserialize>::from_value(v)?, \
                        None => {fallback}, \
                    }},"
                )
            } else {
                format!(
                    "{n}: <_ as ::serde::Deserialize>::from_value(\
                        ::serde::get_field({source}, \"{n}\")\
                        .ok_or_else(|| ::serde::DeError::missing_field(\"{type_name}\", \"{n}\"))?\
                    )?,"
                )
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    // Externally tagged: unit variants are strings, data variants are
    // single-entry maps keyed by the variant name.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|(vname, fields)| match fields {
            Fields::Unit => None,
            Fields::Named(fs) => {
                let inits = de_named_fields(name, fs, "inner");
                Some(format!("\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),"))
            }
            Fields::Tuple(1) => Some(format!(
                "\"{vname}\" => Ok({name}::{vname}(<_ as ::serde::Deserialize>::from_value(inner)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("<_ as ::serde::Deserialize>::from_value(&items[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{vname}\" => match inner {{ \
                        ::serde::Value::Seq(items) if items.len() == {n} => Ok({name}::{vname}({items})), \
                        other => Err(::serde::DeError::expected(\"{n}-element sequence for `{name}::{vname}`\", other)), \
                    }},",
                    items = items.join(", ")
                ))
            }
        })
        .collect();
    format!(
        "match value {{ \
            ::serde::Value::Str(s) => match s.as_str() {{ \
                {unit_arms} \
                other => Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` for `{name}`\", other))), \
            }}, \
            ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                let (tag, inner) = &entries[0]; \
                match tag.as_str() {{ \
                    {data_arms} \
                    other => Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` for `{name}`\", other))), \
                }} \
            }}, \
            other => Err(::serde::DeError::expected(\"externally tagged enum `{name}`\", other)), \
        }}",
        unit_arms = unit_arms.join(" "),
        data_arms = data_arms.join(" ")
    )
}
