//! Minimal offline stand-in for `serde_json`: a JSON printer and parser
//! over the vendored `serde::Value` tree.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses `input` as JSON and deserializes into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null matches serde_json's lossy f64 mode.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` gives the shortest representation that round-trips.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 code point verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<f64> = vec![1.0, 2.5, -3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2.5,-3]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_indents() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_objects_and_escapes() {
        let json = r#"{"a": [1, {"b": "x\ny A"}], "c": null}"#;
        let v: Value = {
            let mut p = Parser {
                bytes: json.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            p.parse_value().unwrap()
        };
        match &v {
            Value::Map(m) => {
                assert_eq!(m.len(), 2);
                assert_eq!(m[0].0, "a");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        let xs = vec![0.1, 1e-9, 123456.789, f64::MAX / 2.0];
        let back: Vec<f64> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
    }
}
