//! Minimal offline stand-in for `criterion`.
//!
//! Benchmarks compile against the same API (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros) but each body runs
//! exactly once with coarse wall-clock timing — `cargo bench` becomes a
//! smoke test rather than a statistics run.

use std::fmt::Display;
use std::time::Instant;

/// Top-level driver, handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&name.to_string(), &mut f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub always runs each body once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; measurement time is ignored.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_once(&label, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_once(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { elapsed_ns: 0 };
    f(&mut bencher);
    eprintln!(
        "bench {label}: {:.3} ms (single run; vendored criterion stub)",
        bencher.elapsed_ns as f64 / 1e6
    );
}

/// Timing harness passed to benchmark bodies.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the routine once and records its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        drop(out);
    }
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("spq", n)` → label `spq/n`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
