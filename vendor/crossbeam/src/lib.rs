//! Minimal offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`.
//!
//! Only the `crossbeam::scope(|s| { s.spawn(|_| ...); })` entry point is
//! provided; spawned closures receive a `&Scope` argument for API parity
//! with crossbeam (nested spawns work through it).

use std::any::Any;

/// Error type returned when the scope closure panics. With the std
/// backing, spawned-thread panics propagate out of `std::thread::scope`
/// directly, so this mirrors crossbeam's signature more than its runtime
/// behavior.
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// Scope handle passed to [`scope`] closures and to spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a `&Scope` so it can
    /// spawn further threads, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope in which threads borrowing from the environment can
/// be spawned; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_join_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
