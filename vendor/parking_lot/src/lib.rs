//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches parking_lot's API shape where the workspace uses it:
//! `lock()` returns a guard directly (poisoning is treated as a
//! propagated panic) and `into_inner()` takes no `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutex with a `parking_lot`-shaped API over `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poisoned) => MutexGuard {
                inner: poisoned.into_inner(),
            },
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader–writer lock with a `parking_lot`-shaped API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poisoned) => RwLockReadGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poisoned) => RwLockWriteGuard {
                inner: poisoned.into_inner(),
            },
        }
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![0u32; 3]);
        m.lock()[1] = 5;
        assert_eq!(m.into_inner(), vec![0, 5, 0]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(l.into_inner(), 2);
    }
}
