//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses: an owned
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen_range` / `gen_bool`. The generator
//! is xoshiro256** (public domain, Blackman & Vigna) seeded through
//! splitmix64, which is statistically strong enough for the workload
//! generators and their distribution tests.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (subset of rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that can be sampled from (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)` with 53-bit
/// precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` via Lemire's widening-multiply method
/// with rejection, so small spans are exactly unbiased.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let x = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        (lo + (hi - lo) * u).clamp(lo, hi)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let x: f64 = (self.start as f64..self.end as f64).sample_single(rng);
        x as f32
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline stand-in for
    /// rand's `StdRng`; same trait surface, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = r.gen_range(3i32..=7);
            assert!((3..=7).contains(&x));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
