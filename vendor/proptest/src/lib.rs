//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, `x in strategy` and
//! `x: Type` parameter forms, `prop_assert!` / `prop_assert_eq!`,
//! `prop::collection::{vec, btree_set}`, range and tuple strategies, and
//! `.prop_map`. Failing cases panic with the failure message but are
//! **not shrunk**; each test draws from a generator seeded from the test
//! name, so runs are deterministic.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator used by strategies (xoshiro256**, seeded from
/// the test name so every test has its own reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds a generator from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample empty range");
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map: f,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! int_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + (self.end - self.start) * rng.unit_f64();
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        (lo + (hi - lo) * rng.unit_f64()).clamp(lo, hi)
    }
}

macro_rules! tuple_strategy_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of `element` with cardinality in
    /// `size` (best effort if the element domain is small).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 50 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` resolves after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// Types with a canonical whole-domain strategy (used for `name: Type`
/// parameters in `proptest!`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int_impls {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Declares property tests. See the crate docs for the supported
/// grammar.
#[macro_export]
macro_rules! proptest {
    // -- internal: emit one test fn at a time ----------------------
    (@funcs $cfg:expr;) => {};
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(::core::stringify!($name));
            for case_index in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::proptest!(@bind rng; $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        ::core::stringify!($name),
                        case_index + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    // -- internal: bind parameters ---------------------------------
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    // -- entry points ----------------------------------------------
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the current case
/// (without aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_and_collections_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let v = prop::collection::vec(0usize..5, 2..4).generate(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            let s: BTreeSet<usize> =
                prop::collection::btree_set(0usize..10, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut rng = TestRng::for_test("map");
        let doubled = (1usize..10).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_both_param_forms(x in 0usize..10, pair in (0u8..4, 1.0f64..2.0), y: u64) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4, "got {}", pair.0);
            prop_assert_eq!(y, y);
            prop_assert_ne!(pair.1, 0.0);
        }
    }
}
