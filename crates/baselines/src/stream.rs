//! Stream: decentralized opportunistic inter-coflow scheduling
//! (Susanto et al., ICNP'16).
//!
//! Stream leverages the coflow communication pattern and strict priority
//! queues, but ranks by the job's *accumulated total bytes sent*. As the
//! Gurita paper characterizes it: "Stream requires larger jobs to
//! transmit at lower priority regardless of the amount of byte sent per
//! stage" — the stage-agnostic TBS demotion that Gurita's per-stage
//! blocking effect improves on. Being decentralized and SPQ-enforced,
//! Stream is subject to the same TCP-reordering discipline as Gurita:
//! live flows are only demoted; promotions apply to new flows.

use gurita_model::JobId;
use gurita_sim::sched::{Observation, Oracle, Scheduler};
use gurita_sim::thresholds::ThresholdLadder;
use std::collections::HashMap;

/// Stream configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Number of priority queues (the evaluation uses 4).
    pub num_queues: usize,
    /// First demotion threshold on the job's accumulated bytes.
    pub threshold_base: f64,
    /// Exponential spacing between thresholds.
    pub threshold_factor: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            num_queues: 4,
            threshold_base: 10.0e6,
            threshold_factor: 10.0,
        }
    }
}

/// The Stream scheduler.
#[derive(Debug)]
pub struct Stream {
    config: StreamConfig,
    ladder: ThresholdLadder,
}

impl Stream {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= num_queues <= 8`, the base is positive, and
    /// the factor exceeds 1.
    pub fn new(config: StreamConfig) -> Self {
        assert!(
            (1..=8).contains(&config.num_queues),
            "queues must be in 1..=8"
        );
        let ladder = ThresholdLadder::exponential(
            config.num_queues,
            config.threshold_base,
            config.threshold_factor,
        );
        Self { config, ladder }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}

impl Scheduler for Stream {
    fn name(&self) -> String {
        "stream".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.config.num_queues
    }

    fn assign(&mut self, obs: &Observation, _oracle: &Oracle<'_>) -> Vec<usize> {
        // TBS across the whole job: completed coflows' bytes plus live
        // observations — exactly the accumulated total-bytes-sent rank,
        // with no per-stage reset.
        let mut job_queue: HashMap<JobId, usize> = HashMap::new();
        for job in &obs.jobs {
            job_queue.insert(job.id, self.ladder.queue_for(job.bytes_received));
        }
        obs.coflows.iter().map(|c| job_queue[&c.job]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::topology::BigSwitch;

    fn sim() -> Simulation<BigSwitch> {
        Simulation::new(
            BigSwitch::new(16, MB),
            SimConfig {
                tick_interval: 0.05,
                ..SimConfig::default()
            },
        )
    }

    /// The on-and-off trap the paper describes: a job that sent many
    /// bytes in stage 1 stays demoted in its tiny stage 2 under Stream,
    /// while a per-stage scheduler would forgive it.
    #[test]
    fn tbs_demotion_persists_across_stages() {
        let mut s = Stream::new(StreamConfig {
            threshold_base: 1.0 * MB,
            ..StreamConfig::default()
        });
        let obs = gurita_sim::sched::Observation {
            now: 5.0,
            coflows: vec![gurita_sim::sched::CoflowObs {
                id: gurita_model::CoflowId(1),
                job: JobId(0),
                dag_vertex: 1,
                dag_stage: 1,
                activated_at: 5.0,
                open_flows: 1,
                bytes_received: 0.0, // fresh stage, nothing sent yet
                max_flow_bytes_received: 0.0,
                flows: vec![],
            }],
            jobs: vec![gurita_sim::sched::JobObs {
                id: JobId(0),
                arrival: 0.0,
                completed_coflows: 1,
                completed_stages: 1,
                completed_bytes: 0.0,
                bytes_received: 50.0 * MB, // stage-1 history
                active_coflows: vec![0],
            }],
        };
        let jobs = HashMap::new();
        let rem = |_| None;
        let size = |_| None;
        let oracle = gurita_sim::sched::Oracle::new(&jobs, &rem, &size);
        let assignment = s.assign(&obs, &oracle);
        assert!(
            assignment[0] >= 2,
            "stream must keep punishing the job for old bytes, got q{}",
            assignment[0]
        );
    }

    #[test]
    fn small_jobs_stay_at_top() {
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| {
                JobSpec::new(
                    i,
                    i as f64 * 3.0,
                    vec![CoflowSpec::new(vec![FlowSpec::new(
                        HostId(i),
                        HostId(9),
                        2.0 * MB,
                    )])],
                    JobDag::chain(1).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let mut s = Stream::new(StreamConfig::default());
        let res = sim().run(jobs, &mut s);
        assert_eq!(res.jobs.len(), 2);
        for j in &res.jobs {
            assert!(j.jct < 2.5, "small jobs unimpeded: {}", j.jct);
        }
    }

    #[test]
    fn established_elephant_yields_to_late_mouse() {
        let elephant = JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(9),
                60.0 * MB,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let mouse = JobSpec::new(
            1,
            8.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(1),
                HostId(9),
                1.0 * MB,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let mut s = Stream::new(StreamConfig {
            threshold_base: 2.0 * MB,
            ..StreamConfig::default()
        });
        let res = sim().run(vec![elephant, mouse], &mut s);
        let mouse_jct = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap().jct;
        assert!(mouse_jct < 1.3, "mouse took {mouse_jct}");
    }
}
