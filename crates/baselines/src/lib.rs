//! Baseline coflow schedulers the paper compares Gurita against.
//!
//! * [`pfs::PerFlowFairSharing`] — the baseline: every flow shares each
//!   link max-min fairly (steady-state TCP with no prioritization);
//! * [`baraat::Baraat`] — decentralized FIFO with limited multiplexing
//!   (Dogar et al., SIGCOMM'14): jobs are served in arrival order and
//!   heavy jobs trigger multiplexing with their successors;
//! * [`stream::Stream`] — decentralized opportunistic inter-coflow
//!   scheduling (Susanto et al., ICNP'16), characterized by the paper as
//!   demoting jobs on *accumulated total bytes sent* regardless of the
//!   per-stage profile;
//! * [`aalo::Aalo`] — the centralized clairvoyant-free coordinator
//!   (Chowdhury & Stoica, SIGCOMM'15): discretized coflow-aware
//!   least-attained service with exponentially-spaced queue thresholds
//!   and instantaneous global knowledge of accumulated bytes (the
//!   paper's simulation grants it zero coordination delay);
//! * [`sebf::VarysSebf`] — *extension*: Varys' clairvoyant
//!   Smallest-Effective-Bottleneck-First heuristic, included as an
//!   upper-reference oracle baseline beyond the paper's comparison set.
//!
//! All baselines implement [`gurita_sim::sched::Scheduler`] and are
//! information-audited: only [`aalo::Aalo`] and [`sebf::VarysSebf`]
//! touch the oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aalo;
pub mod baraat;
pub mod pfs;
pub mod sebf;
pub mod stream;
