//! Per-Flow Fair Sharing (PFS) — the paper's baseline.
//!
//! "A scheduling scheme that divides the resource capacity equally among
//! flows traversing the same link": every flow sits in the single
//! highest-priority queue and the fluid network model's max-min fair
//! allocation does the rest. This is steady-state TCP with no
//! coflow/job awareness at all.

use gurita_sim::sched::{Observation, Oracle, Scheduler};

/// The per-flow fair-sharing baseline.
///
/// # Example
///
/// ```
/// use gurita_baselines::pfs::PerFlowFairSharing;
/// use gurita_sim::sched::Scheduler;
/// let s = PerFlowFairSharing::new();
/// assert_eq!(s.num_queues(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerFlowFairSharing {
    _private: (),
}

impl PerFlowFairSharing {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for PerFlowFairSharing {
    fn name(&self) -> String {
        "pfs".to_owned()
    }

    fn num_queues(&self) -> usize {
        1
    }

    fn assign(&mut self, obs: &Observation, _oracle: &Oracle<'_>) -> Vec<usize> {
        vec![0; obs.coflows.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::topology::BigSwitch;

    #[test]
    fn equal_jobs_finish_together() {
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| {
                JobSpec::new(
                    i,
                    0.0,
                    vec![CoflowSpec::new(vec![FlowSpec::new(
                        HostId(i),
                        HostId(9),
                        3.0 * MB,
                    )])],
                    JobDag::chain(1).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let mut sim = Simulation::new(BigSwitch::new(16, MB), SimConfig::default());
        let res = sim.run(jobs, &mut PerFlowFairSharing::new());
        assert_eq!(res.jobs.len(), 3);
        for j in &res.jobs {
            assert!(
                (j.jct - 9.0).abs() < 1e-6,
                "fair share of 1/3 link: {}",
                j.jct
            );
        }
    }
}
