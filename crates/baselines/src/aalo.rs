//! Aalo: efficient coflow scheduling without prior knowledge
//! (Chowdhury & Stoica, SIGCOMM'15).
//!
//! Aalo implements Discretized Coflow-Aware Least-Attained Service
//! (D-CLAS): a central coordinator tracks every coflow's accumulated
//! bytes sent and demotes the coflow down exponentially-spaced priority
//! queues as the count grows. Following the paper's evaluation setup,
//! "Aalo's additional delay from managing centralized system is not
//! considered … information on job is made available instantaneously to
//! the centralized controller": our Aalo reads exact per-coflow sent
//! bytes from the oracle (sent = size − remaining) and re-prioritizes
//! live flows freely.
//!
//! Aalo schedules at coflow granularity: each coflow of a multi-stage
//! job re-enters the highest queue when it starts — its *own* bytes
//! reset, but the coordinator has no notion of per-stage blocking,
//! width, or critical path, which is where Gurita differentiates.

use gurita_sim::control::{HostAgent, PriorityTable};
use gurita_sim::sched::{Observation, Oracle, Scheduler};
use gurita_sim::thresholds::ThresholdLadder;

/// Aalo configuration (defaults follow the Aalo paper: exponential
/// spacing E = 10 with a 10 MB first queue; 4 queues in the Gurita
/// evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct AaloConfig {
    /// Number of priority queues.
    pub num_queues: usize,
    /// First demotion threshold on the coflow's sent bytes.
    pub threshold_base: f64,
    /// Exponential spacing between thresholds.
    pub threshold_factor: f64,
}

impl Default for AaloConfig {
    fn default() -> Self {
        Self {
            num_queues: 4,
            threshold_base: 10.0e6,
            threshold_factor: 10.0,
        }
    }
}

/// The Aalo (D-CLAS) scheduler with an instantaneous global view.
#[derive(Debug)]
pub struct Aalo {
    config: AaloConfig,
    ladder: ThresholdLadder,
}

impl Aalo {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= num_queues <= 8`, the base is positive, and
    /// the factor exceeds 1.
    pub fn new(config: AaloConfig) -> Self {
        assert!(
            (1..=8).contains(&config.num_queues),
            "queues must be in 1..=8"
        );
        let ladder = ThresholdLadder::exponential(
            config.num_queues,
            config.threshold_base,
            config.threshold_factor,
        );
        Self { config, ladder }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &AaloConfig {
        &self.config
    }
}

impl Scheduler for Aalo {
    fn name(&self) -> String {
        "aalo".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.config.num_queues
    }

    fn reprioritizes_live_flows(&self) -> bool {
        true // central coordinator updates priorities everywhere
    }

    fn assign(&mut self, obs: &Observation, oracle: &Oracle<'_>) -> Vec<usize> {
        obs.coflows
            .iter()
            .map(|c| {
                // Exact sent bytes per coflow from the global view:
                // Σ (size − remaining) over its flows. Falls back to the
                // receiver-observed count when oracle data is missing
                // (completed flows have already been delivered in full).
                let sent: f64 = c
                    .flows
                    .iter()
                    .map(
                        |f| match (oracle.flow_size(f.id), oracle.remaining_bytes(f.id)) {
                            (Some(size), Some(rem)) => size - rem,
                            _ => f.bytes_received,
                        },
                    )
                    .sum();
                self.ladder.queue_for(sent)
            })
            .collect()
    }
}

/// Aalo as a [`HostAgent`] (reported as `aalo@local`) — D-CLAS from
/// receiver-observed bytes alone, no oracle.
///
/// The centralized [`Aalo`] reads exact sent bytes from the oracle as
/// `size − remaining`; the runtime computes each flow's observed
/// `bytes_received` as the *same* subtraction, so ranking coflows by the
/// sum of their flows' observed bytes is bitwise identical — which is
/// what makes the `control_latency == 0` identity test possible. This
/// agent is therefore Aalo with the clairvoyance crutch removed: it
/// decides purely from what the hosts report.
#[derive(Debug)]
pub struct AaloAgent {
    config: AaloConfig,
    ladder: ThresholdLadder,
}

impl AaloAgent {
    /// Creates the agent.
    ///
    /// # Panics
    ///
    /// Same validation as [`Aalo::new`].
    pub fn new(config: AaloConfig) -> Self {
        let inner = Aalo::new(config);
        Self {
            config: inner.config,
            ladder: inner.ladder,
        }
    }
}

impl HostAgent for AaloAgent {
    fn name(&self) -> String {
        "aalo@local".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.config.num_queues
    }

    fn reprioritizes_live_flows(&self) -> bool {
        true // D-CLAS demotes and promotes live coflows alike
    }

    fn decide(&mut self, merged: &Observation, _oracle: &Oracle<'_>) -> PriorityTable {
        merged
            .coflows
            .iter()
            .map(|c| {
                // Same per-flow accumulation order as the centralized
                // assign, over observed bytes instead of oracle state.
                let sent: f64 = c.flows.iter().map(|f| f.bytes_received).sum();
                (c.id, self.ladder.queue_for(sent))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag, JobId, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::topology::BigSwitch;

    fn sim() -> Simulation<BigSwitch> {
        Simulation::new(
            BigSwitch::new(16, MB),
            SimConfig {
                tick_interval: 0.05,
                ..SimConfig::default()
            },
        )
    }

    fn job(id: usize, arrival: f64, bytes: f64, src: usize) -> JobSpec {
        JobSpec::new(
            id,
            arrival,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(src),
                HostId(9),
                bytes,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn late_mouse_beats_established_elephant() {
        let jobs = vec![job(0, 0.0, 60.0 * MB, 0), job(1, 8.0, 1.0 * MB, 1)];
        let mut a = Aalo::new(AaloConfig {
            threshold_base: 2.0 * MB,
            ..AaloConfig::default()
        });
        let res = sim().run(jobs, &mut a);
        let mouse = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap();
        assert!(
            mouse.jct < 1.2,
            "D-CLAS must favor the mouse: {}",
            mouse.jct
        );
    }

    #[test]
    fn per_stage_bytes_reset_between_coflows() {
        // A 2-stage job: heavy stage 1, tiny stage 2. Aalo's stage-2
        // coflow starts back at the top queue because D-CLAS counts per
        // coflow — verify through the simulation completing with a tiny
        // stage-2 CCT even while a competitor hogs the link.
        let deep = JobSpec::new(
            0,
            0.0,
            vec![
                CoflowSpec::new(vec![FlowSpec::new(HostId(0), HostId(9), 30.0 * MB)]),
                CoflowSpec::new(vec![FlowSpec::new(HostId(9), HostId(10), 0.5 * MB)]),
            ],
            JobDag::chain(2).unwrap(),
        )
        .unwrap();
        let hog = job(1, 0.0, 60.0 * MB, 1);
        let mut a = Aalo::new(AaloConfig {
            threshold_base: 2.0 * MB,
            ..AaloConfig::default()
        });
        let res = sim().run(vec![deep, hog], &mut a);
        let stage2 = res
            .coflows
            .iter()
            .find(|c| c.job == JobId(0) && c.dag_vertex == 1)
            .unwrap();
        assert!(
            stage2.cct() < 1.0,
            "fresh stage must restart at top priority: {}",
            stage2.cct()
        );
    }

    #[test]
    fn agent_ranks_like_the_centralized_ladder() {
        use gurita_sim::sched::{CoflowObs, FlowObs};
        let mut agent = AaloAgent::new(AaloConfig::default());
        let obs = Observation {
            now: 1.0,
            coflows: vec![
                CoflowObs {
                    id: gurita_model::CoflowId(0),
                    job: JobId(0),
                    dag_vertex: 0,
                    dag_stage: 0,
                    activated_at: 0.0,
                    open_flows: 1,
                    bytes_received: 50.0 * MB,
                    max_flow_bytes_received: 50.0 * MB,
                    flows: vec![FlowObs {
                        id: gurita_model::FlowId(0),
                        bytes_received: 50.0 * MB,
                        open: true,
                    }],
                },
                CoflowObs {
                    id: gurita_model::CoflowId(1),
                    job: JobId(1),
                    dag_vertex: 0,
                    dag_stage: 0,
                    activated_at: 0.5,
                    open_flows: 1,
                    bytes_received: 1.0 * MB,
                    max_flow_bytes_received: 1.0 * MB,
                    flows: vec![FlowObs {
                        id: gurita_model::FlowId(1),
                        bytes_received: 1.0 * MB,
                        open: true,
                    }],
                },
            ],
            jobs: Vec::new(),
        };
        // The denying oracle must never be touched.
        let table = agent.decide(&obs, &Oracle::deny());
        assert_eq!(table.len(), 2);
        let elephant = table[0].1;
        let mouse = table[1].1;
        assert!(
            mouse < elephant,
            "D-CLAS demotes by sent bytes: mouse q{mouse} vs elephant q{elephant}"
        );
    }

    #[test]
    fn equal_simultaneous_jobs_tie() {
        let jobs = vec![job(0, 0.0, 5.0 * MB, 0), job(1, 0.0, 5.0 * MB, 1)];
        let mut a = Aalo::new(AaloConfig::default());
        let res = sim().run(jobs, &mut a);
        let jcts: Vec<f64> = res.jobs.iter().map(|j| j.jct).collect();
        assert!((jcts[0] - jcts[1]).abs() < 0.2, "{jcts:?}");
    }
}
