//! Varys' Smallest-Effective-Bottleneck-First (SEBF) — extension
//! baseline.
//!
//! Varys (Chowdhury, Zhong & Stoica, SIGCOMM'14) assumes complete prior
//! knowledge of every coflow (sizes, endpoints) and schedules the coflow
//! whose *effective bottleneck* — the slowest port it must traverse —
//! completes soonest. It is the clairvoyant upper reference the Aalo
//! line of work approximates, and it is *not* part of the Gurita paper's
//! comparison set; we include it as an extension so the benchmark
//! harness can report how far all the information-agnostic schemes sit
//! from a clairvoyant rank ordering.
//!
//! Mapping to queues: active coflows are ranked by remaining bottleneck
//! bytes (per-port aggregate of remaining volume, maximized over ports);
//! rank `r` maps to queue `min(r, K−1)`.

use gurita_model::HostId;
use gurita_sim::sched::{Observation, Oracle, Scheduler};
use std::collections::HashMap;

/// The clairvoyant SEBF scheduler.
#[derive(Debug)]
pub struct VarysSebf {
    num_queues: usize,
}

impl VarysSebf {
    /// Creates the scheduler with `num_queues` priority queues.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= num_queues <= 8`.
    pub fn new(num_queues: usize) -> Self {
        assert!((1..=8).contains(&num_queues), "queues must be in 1..=8");
        Self { num_queues }
    }
}

impl Scheduler for VarysSebf {
    fn name(&self) -> String {
        "varys-sebf".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn reprioritizes_live_flows(&self) -> bool {
        true
    }

    fn assign(&mut self, obs: &Observation, oracle: &Oracle<'_>) -> Vec<usize> {
        // Effective bottleneck of a coflow: the largest per-endpoint sum
        // of remaining bytes (ingress or egress port), i.e. Varys' Γ.
        let mut gammas: Vec<(usize, f64)> = Vec::with_capacity(obs.coflows.len());
        for (ci, c) in obs.coflows.iter().enumerate() {
            let spec = oracle
                .job_spec(c.job)
                .map(|j| j.coflow(c.dag_vertex).flows().to_vec())
                .unwrap_or_default();
            let mut per_port: HashMap<(bool, HostId), f64> = HashMap::new();
            for (f, fs) in c.flows.iter().zip(&spec) {
                let rem = oracle
                    .remaining_bytes(f.id)
                    .unwrap_or(fs.bytes - f.bytes_received);
                *per_port.entry((true, fs.src)).or_insert(0.0) += rem;
                *per_port.entry((false, fs.dst)).or_insert(0.0) += rem;
            }
            let gamma = per_port.values().copied().fold(0.0, f64::max);
            gammas.push((ci, gamma));
        }
        gammas.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite bottleneck"));
        let mut assignment = vec![0; obs.coflows.len()];
        for (rank, (ci, _)) in gammas.into_iter().enumerate() {
            assignment[ci] = rank.min(self.num_queues - 1);
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, JobDag, JobId, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::topology::BigSwitch;

    fn job(id: usize, bytes: f64, src: usize) -> JobSpec {
        JobSpec::new(
            id,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(src),
                HostId(9),
                bytes,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn clairvoyance_orders_simultaneous_arrivals() {
        // SEBF knows sizes ahead of time: the mouse wins even when both
        // arrive together (which no information-agnostic scheme can do).
        let jobs = vec![job(0, 50.0 * MB, 0), job(1, 1.0 * MB, 1)];
        let mut sebf = VarysSebf::new(8);
        let mut sim = Simulation::new(
            BigSwitch::new(16, MB),
            SimConfig {
                tick_interval: 0.05,
                ..SimConfig::default()
            },
        );
        let res = sim.run(jobs, &mut sebf);
        let mouse = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap();
        assert!(mouse.jct < 1.1, "clairvoyant mouse: {}", mouse.jct);
        let elephant = res.jobs.iter().find(|j| j.id == JobId(0)).unwrap();
        assert!(
            (elephant.jct - 51.0).abs() < 0.5,
            "elephant: {}",
            elephant.jct
        );
    }

    #[test]
    #[should_panic(expected = "queues")]
    fn rejects_bad_queue_count() {
        let _ = VarysSebf::new(0);
    }
}
