//! Baraat: decentralized task-aware FIFO with limited multiplexing
//! (FIFO-LM, Dogar et al., SIGCOMM'14).
//!
//! Baraat schedules at *task* (job) granularity in arrival order: the
//! oldest active job's flows get the network, later jobs queue behind
//! it. Pure FIFO head-of-line-blocks behind heavy tasks, so Baraat adds
//! *limited multiplexing*: once a job is identified as heavy (its
//! accumulated bytes exceed a threshold), the jobs behind it are allowed
//! to share service with it instead of waiting.
//!
//! Mapping onto the simulator's priority queues: active jobs are walked
//! in arrival order; *light* jobs receive consecutive FIFO levels
//! (levels past the second-to-last queue collapse together), while jobs
//! identified as *heavy* are moved to the shared lowest level, where
//! they multiplex with each other — "mice flows are processed … in the
//! presence of large coflows" instead of head-of-line blocking behind
//! them. Because Baraat's priorities are task-arrival ranks (not
//! DSCP-tagged per-flow classes), a job is promoted naturally as older
//! jobs drain — live flows re-prioritize in both directions.

use gurita_model::JobId;
use gurita_sim::sched::{Observation, Oracle, Scheduler};
use std::collections::HashMap;

/// Baraat configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BaraatConfig {
    /// Number of priority queues.
    pub num_queues: usize,
    /// A job whose accumulated bytes exceed this is "heavy" and triggers
    /// multiplexing (Baraat derives this from observed task-size
    /// distributions; 10 MB matches the mice/elephant boundary of the
    /// Aalo-style ladders used by the other schemes).
    pub heavy_threshold: f64,
}

impl Default for BaraatConfig {
    fn default() -> Self {
        Self {
            num_queues: 8,
            heavy_threshold: 10.0e6,
        }
    }
}

/// The Baraat FIFO-LM scheduler.
#[derive(Debug)]
pub struct Baraat {
    config: BaraatConfig,
}

impl Baraat {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= num_queues <= 8` and the threshold is
    /// positive.
    pub fn new(config: BaraatConfig) -> Self {
        assert!(
            (1..=8).contains(&config.num_queues),
            "queues must be in 1..=8"
        );
        assert!(config.heavy_threshold > 0.0, "threshold must be positive");
        Self { config }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &BaraatConfig {
        &self.config
    }
}

impl Scheduler for Baraat {
    fn name(&self) -> String {
        "baraat".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.config.num_queues
    }

    fn reprioritizes_live_flows(&self) -> bool {
        true
    }

    fn assign(&mut self, obs: &Observation, _oracle: &Oracle<'_>) -> Vec<usize> {
        // Walk active jobs in FIFO (arrival) order, assigning levels
        // with limited multiplexing after heavy jobs. Ties break on the
        // monotone job id, so the order is total and stable.
        let mut order: Vec<&gurita_sim::sched::JobObs> = obs.jobs.iter().collect();
        order.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("arrivals are finite")
                .then_with(|| a.id.cmp(&b.id))
        });
        let background = self.config.num_queues - 1;
        let mut level = 0usize;
        let mut job_level: HashMap<JobId, usize> = HashMap::new();
        for job in order {
            let heavy = job.bytes_received > self.config.heavy_threshold;
            if heavy {
                // Identified heavy tasks multiplex in the background.
                job_level.insert(job.id, background);
                continue;
            }
            // Light (or not-yet-identified) jobs hold FIFO levels; the
            // excess beyond the available queues multiplexes in the
            // second-to-last level (limited multiplexing).
            job_level.insert(job.id, level.min(background.saturating_sub(1)));
            level += 1;
        }
        obs.coflows.iter().map(|c| job_level[&c.job]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::topology::BigSwitch;

    fn job(id: usize, arrival: f64, bytes: f64, src: usize) -> JobSpec {
        JobSpec::new(
            id,
            arrival,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(src),
                HostId(9),
                bytes,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()
    }

    fn sim() -> Simulation<BigSwitch> {
        Simulation::new(
            BigSwitch::new(16, MB),
            SimConfig {
                tick_interval: 0.05,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn fifo_order_serves_first_job_first() {
        // Two small jobs, second arrives just after the first: FIFO
        // gives the first the full link.
        let jobs = vec![job(0, 0.0, 4.0 * MB, 0), job(1, 0.1, 4.0 * MB, 1)];
        let mut b = Baraat::new(BaraatConfig::default());
        let res = sim().run(jobs, &mut b);
        let j0 = res.jobs.iter().find(|j| j.id == JobId(0)).unwrap();
        let j1 = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap();
        assert!(j0.jct < 4.5, "first job near-exclusive: {}", j0.jct);
        // Second starts effectively after the first finishes.
        assert!(j1.completed_at > j0.completed_at);
    }

    #[test]
    fn heavy_job_triggers_multiplexing() {
        // A heavy elephant at the head must not head-of-line-block the
        // mouse behind it forever: limited multiplexing lets the mouse
        // share once the elephant is identified heavy (threshold 1 MB
        // here).
        let jobs = vec![job(0, 0.0, 50.0 * MB, 0), job(1, 0.1, 2.0 * MB, 1)];
        let mut b = Baraat::new(BaraatConfig {
            heavy_threshold: 1.0 * MB,
            ..BaraatConfig::default()
        });
        let res = sim().run(jobs, &mut b);
        let j1 = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap();
        // With multiplexing the mouse shares fairly: ~2/0.5 = 4s + the
        // ~1s pre-multiplexing wait; without it, it would wait 50s.
        assert!(
            j1.jct < 10.0,
            "mouse must multiplex with heavy head: {}",
            j1.jct
        );
    }

    #[test]
    fn all_jobs_complete_under_fifo_lm() {
        let mut b = Baraat::new(BaraatConfig::default());
        let jobs = vec![job(0, 0.0, MB, 0), job(1, 0.2, MB, 1)];
        let res = sim().run(jobs, &mut b);
        assert_eq!(res.jobs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "queues")]
    fn rejects_zero_queues() {
        let _ = Baraat::new(BaraatConfig {
            num_queues: 0,
            ..BaraatConfig::default()
        });
    }
}
