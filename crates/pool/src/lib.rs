//! Persistent worker pool for deterministic intra-run parallelism.
//!
//! The simulator's rate recomputation (`gurita_sim::runtime`, behind
//! `SimConfig::threads`) fans the disjoint flow↔link components of one
//! recompute epoch across a fixed set of long-lived worker threads. A
//! recompute epoch is a few microseconds to a few milliseconds of work,
//! so the pool is built for *cheap dispatch*, not generality:
//!
//! * Workers are spawned once per engine and parked on a condvar
//!   between epochs — no per-epoch `thread::spawn` (~40–80 µs each,
//!   which would eat the entire win at ~150 µs/event).
//! * The caller participates as worker slot `0`, so `threads = n`
//!   means `n` CPUs busy, not `n + 1`.
//! * Tasks are claimed from a shared counter under a mutex; component
//!   waterfills are microseconds-scale, so one uncontended lock per
//!   claim is noise.
//!
//! Determinism is the caller's contract, not the pool's: tasks write to
//! disjoint output slots, so the *values* produced are independent of
//! which worker runs which task or in what order — the pool only
//! changes wall-clock time. See the "Intra-run parallelism" section of
//! DESIGN.md.
//!
//! This crate is the workspace's one island of `unsafe`: every other
//! crate carries `#![forbid(unsafe_code)]`, and the two erasures needed
//! for a persistent pool over borrowed data (the lifetime-erased
//! private task pointer and the per-slot [`PerWorker`] cells) live here
//! behind safe-to-audit invariants.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Resolves a thread-count setting: `0` means "one worker per available
/// core" (`std::thread::available_parallelism`, 1 when unknown),
/// anything else is taken literally.
///
/// This is the single auto-detection rule shared by the simulator's
/// `SimConfig::threads` and the experiment harness's `--par` fan-out
/// (`experiments::par`), so intra-run and inter-run parallelism can
/// never disagree about what "auto" means.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Lifetime-erased pointer to the current batch's task closure.
///
/// Safety: the pointer is only dereferenced by workers between the
/// batch's publication and its completion, and [`WorkerPool::run`] does
/// not return (and therefore the closure cannot be dropped) until every
/// task of the batch has finished. `Send` is sound because the pointee
/// is required to be `Sync` at the only construction site.
struct TaskPtr(*const (dyn Fn(usize, usize) + Sync));
unsafe impl Send for TaskPtr {}

struct State {
    /// Monotone batch counter; workers compare against their last seen
    /// value so a spurious wakeup never re-runs an old batch.
    batch: u64,
    /// The in-flight batch's closure; `None` between batches.
    task: Option<TaskPtr>,
    /// Tasks in the current batch.
    n: usize,
    /// Next unclaimed task index.
    next: usize,
    /// Tasks that have finished running (successfully or by panic).
    completed: usize,
    /// A task panicked; re-raised by [`WorkerPool::run`] on the caller.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new batch (or shutdown).
    work: Condvar,
    /// The dispatching caller waits here for batch completion.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads executing one batch of
/// index-addressed tasks at a time.
///
/// [`WorkerPool::run`]`(n, f)` invokes `f(worker_slot, task_index)` for
/// every `task_index in 0..n`, spread across `threads` workers (the
/// caller participates as slot `0`; spawned workers use slots
/// `1..threads`). Two invariants back the callers' `unsafe` blocks:
///
/// * **Slot exclusivity** — at any instant, at most one thread is
///   executing `f` with a given `worker_slot`, so per-slot scratch
///   (e.g. one `Allocator` per slot) is data-race free.
/// * **Batch confinement** — `run` returns only after every task has
///   returned, so `f` may capture references to the caller's stack.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` total workers (the calling thread
    /// counts as one; `threads - 1` OS threads are spawned). `threads`
    /// is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                batch: 0,
                task: None,
                n: 0,
                next: 0,
                completed: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gurita-pool-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Total worker slots, including the calling thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(worker_slot, task_index)` for every index in `0..n` and
    /// returns when all invocations have finished.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (the payload is replaced; workers
    /// survive and the pool stays usable).
    pub fn run(&self, n: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        self.run_with(n, f, || {});
    }

    /// [`WorkerPool::run`] with a producer phase overlapped on the
    /// calling thread: the batch is published first, so the spawned
    /// workers (slots `1..threads`) start claiming tasks while the
    /// caller runs `produce()`; only then does the caller join as slot
    /// `0` to drain whatever tasks remain, and finally waits for batch
    /// completion.
    ///
    /// This is the pipelining primitive behind the engine's
    /// BFS/allocate overlap: `produce` discovers work items (publishing
    /// them through caller-owned shared state the tasks consume) while
    /// the tasks already chew on earlier items. Both invariants of
    /// [`WorkerPool::run`] hold unchanged — slot exclusivity (the
    /// caller only ever acts as slot 0, and not before `produce`
    /// returns) and batch confinement (`run_with` returns only after
    /// every task finished, so `f` and `produce` may borrow from the
    /// caller's stack).
    ///
    /// `produce` must not call back into the pool (batches are not
    /// reentrant), and if it can unwind, the caller is responsible for
    /// ensuring tasks still terminate (e.g. a drop guard closing the
    /// work queue) — the unwind propagates only after the batch drains.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked, like [`WorkerPool::run`]. A panic
    /// in `produce` propagates after every published task finished.
    pub fn run_with(&self, n: usize, f: &(dyn Fn(usize, usize) + Sync), produce: impl FnOnce()) {
        if n == 0 {
            produce();
            return;
        }
        let batch = {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            debug_assert!(st.task.is_none(), "run() is not reentrant");
            // Safety: erases the borrow's lifetime. The closure outlives
            // every dereference because `run` does not return (and the
            // borrow cannot end) until `completed == n`.
            let f_static: &'static (dyn Fn(usize, usize) + Sync) =
                unsafe { std::mem::transmute(f) };
            st.task = Some(TaskPtr(f_static));
            st.n = n;
            st.next = 0;
            st.completed = 0;
            st.batch += 1;
            st.batch
        };
        self.shared.work.notify_all();
        // Overlap phase: spawned workers are already claiming tasks.
        // Catch an unwinding producer so the batch still drains (tasks
        // may borrow the caller's frame; returning mid-batch would
        // dangle them) and re-raise it afterwards.
        let produced = catch_unwind(AssertUnwindSafe(produce));
        // Participate as slot 0 until the claim counter runs dry.
        drain_tasks(&self.shared, 0, batch, f);
        let panicked = {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            while st.completed < st.n {
                st = self.shared.done.wait(st).expect("pool mutex poisoned");
            }
            st.task = None;
            std::mem::replace(&mut st.panicked, false)
        };
        if let Err(payload) = produced {
            std::panic::resume_unwind(payload);
        }
        if panicked {
            panic!("worker pool task panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .expect("pool mutex poisoned")
            .shutdown = true;
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and runs tasks of batch `batch` until none remain. The batch
/// check matters: a straggler returning from its last task after the
/// dispatcher has already published the *next* batch must not claim
/// into it with the stale closure. Panics in `f` are recorded, counted
/// as completed, and swallowed so the sibling tasks still finish and
/// the dispatcher can re-raise.
fn drain_tasks(shared: &Shared, slot: usize, batch: u64, f: &(dyn Fn(usize, usize) + Sync)) {
    loop {
        let i = {
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            if st.batch != batch || st.next >= st.n {
                return;
            }
            let i = st.next;
            st.next += 1;
            i
        };
        let ok = catch_unwind(AssertUnwindSafe(|| f(slot, i))).is_ok();
        let mut st = shared.state.lock().expect("pool mutex poisoned");
        if !ok {
            st.panicked = true;
        }
        st.completed += 1;
        if st.completed == st.n {
            shared.done.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.task.is_some() && st.batch != seen {
                    break;
                }
                st = shared.work.wait(st).expect("pool mutex poisoned");
            }
            seen = st.batch;
            st.task.as_ref().expect("batch published").0
        };
        // Safety: the dispatcher keeps the closure alive until
        // `completed == n`, and we only reach `completed == n` after
        // this worker's final `f` call returns (see `TaskPtr`).
        let f = unsafe { &*task };
        drain_tasks(shared, slot, seen, f);
    }
}

/// Per-worker-slot mutable scratch shareable across the pool's threads.
///
/// Wraps one `T` per worker slot in [`UnsafeCell`]s so a `&PerWorker`
/// captured by a pool task can hand each worker exclusive mutable
/// access to its own slot without locking.
#[derive(Debug)]
pub struct PerWorker<T> {
    slots: Vec<UnsafeCell<T>>,
}

// Safety: distinct slots are distinct objects; a given slot is only
// handed out under the pool's slot-exclusivity invariant (see
// `PerWorker::slot`).
unsafe impl<T: Send> Sync for PerWorker<T> {}

impl<T> PerWorker<T> {
    /// Builds `n` slots from `make` (called once per slot, in order).
    pub fn new(n: usize, mut make: impl FnMut() -> T) -> Self {
        Self {
            slots: (0..n).map(|_| UnsafeCell::new(make())).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the scratch has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Exclusive access to slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee no two live references to the same
    /// slot exist at once — satisfied when `i` is the task's
    /// `worker_slot` under [`WorkerPool`]'s slot-exclusivity invariant
    /// and the reference does not outlive the task invocation.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot(&self, i: usize) -> &mut T {
        &mut *self.slots[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn auto_detection_resolves_zero_to_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn auto_detection_edge_cases() {
        // `0` resolves to available_parallelism — and on a box where
        // that probe fails it must still land on a usable count (the
        // contract is ≥ 1, never 0; a 1-core box resolves to exactly
        // its core count).
        let auto = effective_threads(0);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(auto, cores);
        assert!(auto >= 1, "auto must never resolve to zero workers");
        // Oversubscription is taken literally, not clamped: asking for
        // more threads than cores is a valid (if unwise) setting.
        let oversubscribed = cores + 8;
        assert_eq!(effective_threads(oversubscribed), oversubscribed);
        assert_eq!(effective_threads(usize::MAX), usize::MAX);
    }

    #[test]
    fn oversubscribed_pool_still_runs_every_task() {
        // More workers than the machine has cores: correctness must
        // not depend on threads actually running in parallel.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let pool = WorkerPool::new(cores + 3);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(97, &|_, i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        for n in [0usize, 1, 3, 64, 257] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "{n}");
        }
    }

    #[test]
    fn worker_slots_stay_in_range_and_exclusive() {
        let pool = WorkerPool::new(3);
        let scratch: PerWorker<u64> = PerWorker::new(3, || 0);
        pool.run(100, &|slot, _| {
            assert!(slot < 3);
            // Safety: the pool never runs two tasks with one slot
            // concurrently, and the reference dies with the task.
            let cell = unsafe { scratch.slot(slot) };
            *cell += 1;
        });
        let total: u64 = (0..3).map(|i| unsafe { *scratch.slot(i) }).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let sum = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(10, &|_, i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 45 * 50);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicUsize::new(0);
        pool.run(16, &|slot, i| {
            assert_eq!(slot, 0);
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn run_with_overlaps_producer_and_runs_every_task() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let produced = AtomicUsize::new(0);
        pool.run_with(
            64,
            &|_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
            || {
                produced.store(7, Ordering::Relaxed);
            },
        );
        assert_eq!(produced.load(Ordering::Relaxed), 7);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_with_zero_tasks_still_produces() {
        let pool = WorkerPool::new(2);
        let produced = AtomicUsize::new(0);
        pool.run_with(0, &|_, _| {}, || {
            produced.store(1, Ordering::Relaxed);
        });
        assert_eq!(produced.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_with_producer_consumer_queue_drains() {
        // The intended usage shape: the producer feeds a shared queue
        // that the batch's tasks consume until told it is closed —
        // tasks must terminate and every produced item must be seen
        // exactly once, regardless of interleaving.
        use std::collections::VecDeque;
        use std::sync::{Condvar, Mutex};
        struct Queue {
            state: Mutex<(VecDeque<usize>, bool)>,
            cv: Condvar,
        }
        let pool = WorkerPool::new(3);
        let q = Queue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        };
        let seen: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run_with(
            pool.threads(),
            &|_, _| loop {
                let item = {
                    let mut st = q.state.lock().unwrap();
                    loop {
                        if let Some(item) = st.0.pop_front() {
                            break Some(item);
                        }
                        if st.1 {
                            break None;
                        }
                        st = q.cv.wait(st).unwrap();
                    }
                };
                match item {
                    Some(i) => {
                        seen[i].fetch_add(1, Ordering::Relaxed);
                    }
                    None => return,
                }
            },
            || {
                for i in 0..100 {
                    q.state.lock().unwrap().0.push_back(i);
                    q.cv.notify_one();
                }
                q.state.lock().unwrap().1 = true;
                q.cv.notify_all();
            },
        );
        assert!(seen.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_with_producer_panic_propagates_after_drain() {
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_with(
                8,
                &|_, _| {
                    ran.fetch_add(1, Ordering::Relaxed);
                },
                || panic!("producer boom"),
            );
        }));
        assert!(caught.is_err(), "producer panic must propagate");
        assert_eq!(ran.load(Ordering::Relaxed), 8, "batch drains first");
        // Pool stays usable.
        let sum = AtomicUsize::new(0);
        pool.run(4, &|_, i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|_, i| {
                assert!(i != 5, "boom");
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the dispatcher");
        // The pool must remain usable after a task panic.
        let sum = AtomicUsize::new(0);
        pool.run(4, &|_, i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }
}
