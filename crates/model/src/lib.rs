//! Core data model for multi-stage datacenter jobs scheduled at coflow
//! granularity.
//!
//! This crate defines the vocabulary shared by the whole Gurita
//! reproduction:
//!
//! * [`FlowSpec`] — a point-to-point data transfer between two hosts;
//! * [`CoflowSpec`] — a collection of flows with a shared completion
//!   semantic (the coflow completes when *all* of its flows complete);
//! * [`JobDag`] — the dependency structure between the coflows of one job
//!   (a parent coflow may start only after all of its children complete);
//! * [`JobSpec`] — a job: a DAG of coflows plus an arrival time;
//! * [`SizeCategory`] — the paper's Table 1 partition of jobs into seven
//!   size categories (6 MB–80 MB up to >1 TB).
//!
//! The model is deliberately free of any simulation state: crates further
//! up the stack (`gurita-sim`, schedulers, workload generators) consume
//! these specifications.
//!
//! # Example
//!
//! ```
//! use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec, units};
//!
//! // A two-stage job: one map->shuffle coflow feeding a reduce coflow.
//! let shuffle = CoflowSpec::new(vec![
//!     FlowSpec::new(HostId(0), HostId(2), units::MB * 10.0),
//!     FlowSpec::new(HostId(1), HostId(2), units::MB * 20.0),
//! ]);
//! let reduce = CoflowSpec::new(vec![
//!     FlowSpec::new(HostId(2), HostId(3), units::MB * 5.0),
//! ]);
//! let dag = JobDag::chain(2).expect("two-vertex chain");
//! let job = JobSpec::new(0, 0.0, vec![shuffle, reduce], dag).expect("valid job");
//! assert_eq!(job.num_stages(), 2);
//! assert_eq!(job.total_bytes(), units::MB * 35.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod category;
mod coflow;
mod dag;
mod error;
mod flow;
mod ids;
mod job;
pub mod units;

pub use category::SizeCategory;
pub use coflow::CoflowSpec;
pub use dag::{DagShape, JobDag};
pub use error::ModelError;
pub use flow::FlowSpec;
pub use ids::{CoflowId, CoflowIndex, FlowId, HostId, JobId};
pub use job::JobSpec;
