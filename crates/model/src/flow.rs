//! Flow specifications.

use crate::{HostId, ModelError};
use serde::{Deserialize, Serialize};

/// Specification of a single data flow: `bytes` transferred from `src` to
/// `dst`.
///
/// A flow is the unit the network transports; a set of flows with shared
/// completion semantics forms a [`crate::CoflowSpec`].
///
/// # Example
///
/// ```
/// use gurita_model::{FlowSpec, HostId, units};
/// let f = FlowSpec::new(HostId(0), HostId(1), units::MB);
/// assert_eq!(f.bytes, units::MB);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Number of bytes to transfer. Must be positive and finite.
    pub bytes: f64,
}

impl FlowSpec {
    /// Creates a new flow specification.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not positive and finite. Use
    /// [`FlowSpec::try_new`] for fallible construction.
    pub fn new(src: HostId, dst: HostId, bytes: f64) -> Self {
        Self::try_new(src, dst, bytes).expect("flow size must be positive and finite")
    }

    /// Creates a new flow specification, validating the size.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFlowSize`] if `bytes` is not positive
    /// and finite.
    pub fn try_new(src: HostId, dst: HostId, bytes: f64) -> Result<Self, ModelError> {
        if !(bytes.is_finite() && bytes > 0.0) {
            return Err(ModelError::InvalidFlowSize { bytes });
        }
        Ok(Self { src, dst, bytes })
    }

    /// Whether this flow stays on a single host (degenerate, but legal in
    /// traces where a task reads locally; it consumes no fabric capacity).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_bad_sizes() {
        assert!(FlowSpec::try_new(HostId(0), HostId(1), 0.0).is_err());
        assert!(FlowSpec::try_new(HostId(0), HostId(1), -5.0).is_err());
        assert!(FlowSpec::try_new(HostId(0), HostId(1), f64::NAN).is_err());
        assert!(FlowSpec::try_new(HostId(0), HostId(1), f64::INFINITY).is_err());
        assert!(FlowSpec::try_new(HostId(0), HostId(1), 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn new_panics_on_zero() {
        let _ = FlowSpec::new(HostId(0), HostId(1), 0.0);
    }

    #[test]
    fn local_flow_detected() {
        assert!(FlowSpec::new(HostId(3), HostId(3), 1.0).is_local());
        assert!(!FlowSpec::new(HostId(3), HostId(4), 1.0).is_local());
    }
}
