//! Coflow specifications.

use crate::{FlowSpec, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A coflow: a collection of flows between two groups of machines that
/// share a performance objective — the coflow completes only when *all*
/// of its flows complete (Chowdhury & Stoica, HotNets'12).
///
/// In the paper's three-dimensional characterization of a multi-stage job
/// (§III.C) a coflow contributes:
///
/// * the **horizontal** dimension — [`CoflowSpec::width`], its number of
///   flows;
/// * the **vertical** dimension — [`CoflowSpec::max_flow_bytes`], its
///   largest flow size.
///
/// (The **depth** dimension is a property of the enclosing
/// [`crate::JobDag`].)
///
/// # Example
///
/// ```
/// use gurita_model::{CoflowSpec, FlowSpec, HostId, units};
/// let c = CoflowSpec::new(vec![
///     FlowSpec::new(HostId(0), HostId(2), 2.0 * units::MB),
///     FlowSpec::new(HostId(1), HostId(2), 6.0 * units::MB),
/// ]);
/// assert_eq!(c.width(), 2);
/// assert_eq!(c.max_flow_bytes(), 6.0 * units::MB);
/// assert_eq!(c.total_bytes(), 8.0 * units::MB);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoflowSpec {
    flows: Vec<FlowSpec>,
}

impl CoflowSpec {
    /// Creates a coflow from its flows. An empty coflow is legal at the
    /// model level (it completes instantly) but workload generators never
    /// produce one.
    pub fn new(flows: Vec<FlowSpec>) -> Self {
        Self { flows }
    }

    /// The flows of this coflow.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Number of flows — the *horizontal* (width) dimension.
    pub fn width(&self) -> usize {
        self.flows.len()
    }

    /// Size of the largest flow in bytes — the *vertical* dimension.
    /// Returns 0.0 for an empty coflow.
    pub fn max_flow_bytes(&self) -> f64 {
        self.flows.iter().map(|f| f.bytes).fold(0.0, f64::max)
    }

    /// Mean flow size in bytes (`L_avg` in the blocking-effect formula).
    /// Returns 0.0 for an empty coflow.
    pub fn avg_flow_bytes(&self) -> f64 {
        if self.flows.is_empty() {
            0.0
        } else {
            self.total_bytes() / self.flows.len() as f64
        }
    }

    /// Total bytes across all flows.
    pub fn total_bytes(&self) -> f64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// The set of distinct sending hosts.
    pub fn senders(&self) -> BTreeSet<HostId> {
        self.flows.iter().map(|f| f.src).collect()
    }

    /// The set of distinct receiving hosts.
    pub fn receivers(&self) -> BTreeSet<HostId> {
        self.flows.iter().map(|f| f.dst).collect()
    }

    /// The *head receiver* (HR): the paper designates the first receiver
    /// invoked in a coflow to aggregate observations and decide priority.
    /// We deterministically use the receiver of the first flow.
    pub fn head_receiver(&self) -> Option<HostId> {
        self.flows.first().map(|f| f.dst)
    }

    /// Ideal completion time of the coflow alone on an uncontended fabric
    /// where every flow progresses at `rate` bytes/sec — the `CCT ≈ L/r`
    /// approximation the paper uses to weight critical-path vertices.
    pub fn ideal_cct(&self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        self.max_flow_bytes() / rate
    }
}

impl FromIterator<FlowSpec> for CoflowSpec {
    fn from_iter<T: IntoIterator<Item = FlowSpec>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<FlowSpec> for CoflowSpec {
    fn extend<T: IntoIterator<Item = FlowSpec>>(&mut self, iter: T) {
        self.flows.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MB;

    fn sample() -> CoflowSpec {
        CoflowSpec::new(vec![
            FlowSpec::new(HostId(0), HostId(4), 2.0 * MB),
            FlowSpec::new(HostId(1), HostId(4), 4.0 * MB),
            FlowSpec::new(HostId(1), HostId(5), 6.0 * MB),
        ])
    }

    #[test]
    fn dimensions() {
        let c = sample();
        assert_eq!(c.width(), 3);
        assert_eq!(c.max_flow_bytes(), 6.0 * MB);
        assert_eq!(c.total_bytes(), 12.0 * MB);
        assert_eq!(c.avg_flow_bytes(), 4.0 * MB);
    }

    #[test]
    fn endpoints() {
        let c = sample();
        assert_eq!(c.senders().len(), 2);
        assert_eq!(c.receivers().len(), 2);
        assert_eq!(c.head_receiver(), Some(HostId(4)));
    }

    #[test]
    fn empty_coflow_is_benign() {
        let c = CoflowSpec::default();
        assert_eq!(c.width(), 0);
        assert_eq!(c.max_flow_bytes(), 0.0);
        assert_eq!(c.avg_flow_bytes(), 0.0);
        assert_eq!(c.head_receiver(), None);
    }

    #[test]
    fn ideal_cct_is_bottleneck_flow() {
        let c = sample();
        assert_eq!(c.ideal_cct(1.0 * MB), 6.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut c: CoflowSpec = (0..3)
            .map(|i| FlowSpec::new(HostId(i), HostId(9), MB))
            .collect();
        assert_eq!(c.width(), 3);
        c.extend([FlowSpec::new(HostId(7), HostId(9), MB)]);
        assert_eq!(c.width(), 4);
    }
}
