//! Identifier newtypes.
//!
//! Every entity in the system is addressed by a small integer identifier.
//! Newtypes keep host, job, coflow, and flow identifiers statically
//! distinct (C-NEWTYPE) while remaining `Copy` and hashable.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v)
            }
        }

        impl From<$name> for usize {
            fn from(v: $name) -> usize {
                v.0
            }
        }
    };
}

id_newtype!(
    /// Identifier of a host (server NIC) in the datacenter.
    HostId,
    "h"
);
id_newtype!(
    /// Globally unique identifier of a job.
    JobId,
    "j"
);
id_newtype!(
    /// Globally unique identifier of a coflow (across all jobs).
    CoflowId,
    "c"
);
id_newtype!(
    /// Globally unique identifier of a flow (across all coflows).
    FlowId,
    "f"
);
id_newtype!(
    /// Index of a coflow *within its job's DAG* (a DAG vertex).
    CoflowIndex,
    "v"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(JobId(0).to_string(), "j0");
        assert_eq!(CoflowId(12).to_string(), "c12");
        assert_eq!(FlowId(7).to_string(), "f7");
        assert_eq!(CoflowIndex(1).to_string(), "v1");
    }

    #[test]
    fn conversions_round_trip() {
        let id = JobId::from(42usize);
        assert_eq!(usize::from(id), 42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(FlowId(1));
        set.insert(FlowId(1));
        set.insert(FlowId(2));
        assert_eq!(set.len(), 2);
        assert!(CoflowId(1) < CoflowId(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(HostId::default(), HostId(0));
    }
}
