//! The paper's Table 1: seven categories of multi-stage job size.
//!
//! | I | II | III | IV | V | VI | VII |
//! |---|----|-----|----|---|----|-----|
//! | 6 MB–80 MB | 81 MB–800 MB | 801 MB–8 GB | 8 GB–10 GB | 10 GB–100 GB | 100 GB–1 TB | > 1 TB |
//!
//! Jobs are binned by *total bytes sent* across all stages. Jobs smaller
//! than 6 MB fall into category I (the table's lower bound describes the
//! trace's smallest jobs, not an exclusion).

use crate::units::{GB, MB, TB};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A job-size category (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SizeCategory {
    /// 6 MB – 80 MB (and anything smaller).
    I,
    /// 81 MB – 800 MB.
    II,
    /// 801 MB – 8 GB.
    III,
    /// 8 GB – 10 GB.
    IV,
    /// 10 GB – 100 GB.
    V,
    /// 100 GB – 1 TB.
    VI,
    /// Over 1 TB.
    VII,
}

impl SizeCategory {
    /// All categories in ascending size order.
    pub const ALL: [SizeCategory; 7] = [
        SizeCategory::I,
        SizeCategory::II,
        SizeCategory::III,
        SizeCategory::IV,
        SizeCategory::V,
        SizeCategory::VI,
        SizeCategory::VII,
    ];

    /// Upper byte bound of each category (exclusive), `f64::INFINITY` for
    /// category VII.
    pub fn upper_bound(self) -> f64 {
        match self {
            SizeCategory::I => 80.0 * MB,
            SizeCategory::II => 800.0 * MB,
            SizeCategory::III => 8.0 * GB,
            SizeCategory::IV => 10.0 * GB,
            SizeCategory::V => 100.0 * GB,
            SizeCategory::VI => 1.0 * TB,
            SizeCategory::VII => f64::INFINITY,
        }
    }

    /// Classifies a job by its total bytes sent.
    ///
    /// # Example
    ///
    /// ```
    /// use gurita_model::{SizeCategory, units};
    /// assert_eq!(SizeCategory::of_bytes(50.0 * units::MB), SizeCategory::I);
    /// assert_eq!(SizeCategory::of_bytes(9.0 * units::GB), SizeCategory::IV);
    /// assert_eq!(SizeCategory::of_bytes(2.0 * units::TB), SizeCategory::VII);
    /// ```
    pub fn of_bytes(total_bytes: f64) -> Self {
        for cat in Self::ALL {
            if total_bytes <= cat.upper_bound() {
                return cat;
            }
        }
        SizeCategory::VII
    }

    /// Zero-based position of the category (I = 0 … VII = 6).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Roman-numeral label as printed in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SizeCategory::I => "I",
            SizeCategory::II => "II",
            SizeCategory::III => "III",
            SizeCategory::IV => "IV",
            SizeCategory::V => "V",
            SizeCategory::VI => "VI",
            SizeCategory::VII => "VII",
        }
    }

    /// Human-readable byte range, e.g. `"6MB-80MB"`.
    pub fn range_label(self) -> &'static str {
        match self {
            SizeCategory::I => "6MB-80MB",
            SizeCategory::II => "81MB-800MB",
            SizeCategory::III => "801MB-8GB",
            SizeCategory::IV => "8GB-10GB",
            SizeCategory::V => "10GB-100GB",
            SizeCategory::VI => "100GB-1TB",
            SizeCategory::VII => ">1TB",
        }
    }
}

impl fmt::Display for SizeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_table_1() {
        assert_eq!(SizeCategory::of_bytes(6.0 * MB), SizeCategory::I);
        assert_eq!(SizeCategory::of_bytes(80.0 * MB), SizeCategory::I);
        assert_eq!(SizeCategory::of_bytes(81.0 * MB), SizeCategory::II);
        assert_eq!(SizeCategory::of_bytes(800.0 * MB), SizeCategory::II);
        assert_eq!(SizeCategory::of_bytes(801.0 * MB), SizeCategory::III);
        assert_eq!(SizeCategory::of_bytes(8.0 * GB), SizeCategory::III);
        assert_eq!(SizeCategory::of_bytes(8.1 * GB), SizeCategory::IV);
        assert_eq!(SizeCategory::of_bytes(10.0 * GB), SizeCategory::IV);
        assert_eq!(SizeCategory::of_bytes(10.1 * GB), SizeCategory::V);
        assert_eq!(SizeCategory::of_bytes(100.0 * GB), SizeCategory::V);
        assert_eq!(SizeCategory::of_bytes(0.5 * TB), SizeCategory::VI);
        assert_eq!(SizeCategory::of_bytes(1.0 * TB), SizeCategory::VI);
        assert_eq!(SizeCategory::of_bytes(1.1 * TB), SizeCategory::VII);
    }

    #[test]
    fn tiny_jobs_fall_into_category_i() {
        assert_eq!(SizeCategory::of_bytes(1.0), SizeCategory::I);
        assert_eq!(SizeCategory::of_bytes(0.0), SizeCategory::I);
    }

    #[test]
    fn categories_are_totally_ordered() {
        for w in SizeCategory::ALL.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].upper_bound() < w[1].upper_bound());
        }
    }

    #[test]
    fn index_and_labels() {
        assert_eq!(SizeCategory::I.index(), 0);
        assert_eq!(SizeCategory::VII.index(), 6);
        assert_eq!(SizeCategory::V.to_string(), "V");
        assert_eq!(SizeCategory::VII.range_label(), ">1TB");
    }
}
