//! Error types for model validation.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or validating model entities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The dependency graph contains a cycle, so it is not a DAG.
    CyclicDag,
    /// An edge references a vertex outside the DAG.
    VertexOutOfBounds {
        /// Offending vertex index.
        vertex: usize,
        /// Number of vertices in the DAG.
        len: usize,
    },
    /// The DAG has no vertices; a job must contain at least one coflow.
    EmptyDag,
    /// The job supplies a different number of coflows than the DAG has
    /// vertices.
    CoflowCountMismatch {
        /// Number of coflows supplied.
        coflows: usize,
        /// Number of DAG vertices.
        vertices: usize,
    },
    /// A flow was constructed with a non-positive or non-finite size.
    InvalidFlowSize {
        /// The rejected size in bytes.
        bytes: f64,
    },
    /// A shape constructor was asked for an impossible parameterization.
    InvalidShape {
        /// Human-readable description of the violated requirement.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CyclicDag => write!(f, "dependency graph contains a cycle"),
            ModelError::VertexOutOfBounds { vertex, len } => {
                write!(
                    f,
                    "edge references vertex {vertex} but DAG has {len} vertices"
                )
            }
            ModelError::EmptyDag => write!(f, "job DAG must contain at least one coflow"),
            ModelError::CoflowCountMismatch { coflows, vertices } => write!(
                f,
                "job supplies {coflows} coflows but DAG has {vertices} vertices"
            ),
            ModelError::InvalidFlowSize { bytes } => {
                write!(f, "flow size must be positive and finite, got {bytes}")
            }
            ModelError::InvalidShape { reason } => {
                write!(f, "invalid shape parameterization: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants: Vec<ModelError> = vec![
            ModelError::CyclicDag,
            ModelError::VertexOutOfBounds { vertex: 5, len: 3 },
            ModelError::EmptyDag,
            ModelError::CoflowCountMismatch {
                coflows: 2,
                vertices: 3,
            },
            ModelError::InvalidFlowSize { bytes: -1.0 },
            ModelError::InvalidShape { reason: "width" },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
