//! Byte-size and time units used throughout the reproduction.
//!
//! The simulator is a fluid model: byte counts and times are `f64`. Bytes
//! use decimal SI multiples (1 MB = 10^6 bytes), matching the paper's
//! Table 1 category bounds (6 MB–80 MB, …, >1 TB). Times are in seconds.
//! Link speeds are in bytes per second; the evaluation uses 10 Gbit/s
//! links, i.e. [`GBPS_10`] = 1.25e9 B/s.

/// One kilobyte (10^3 bytes).
pub const KB: f64 = 1e3;
/// One megabyte (10^6 bytes).
pub const MB: f64 = 1e6;
/// One gigabyte (10^9 bytes).
pub const GB: f64 = 1e9;
/// One terabyte (10^12 bytes).
pub const TB: f64 = 1e12;

/// Capacity of a 10 Gbit/s link in bytes per second.
pub const GBPS_10: f64 = 10.0e9 / 8.0;

/// One microsecond in seconds.
pub const MICROS: f64 = 1e-6;
/// One millisecond in seconds.
pub const MILLIS: f64 = 1e-3;

/// Formats a byte count with a human-readable SI suffix.
///
/// # Example
///
/// ```
/// assert_eq!(gurita_model::units::format_bytes(2.5e9), "2.50GB");
/// ```
pub fn format_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= TB {
        format!("{:.2}TB", bytes / TB)
    } else if abs >= GB {
        format!("{:.2}GB", bytes / GB)
    } else if abs >= MB {
        format!("{:.2}MB", bytes / MB)
    } else if abs >= KB {
        format!("{:.2}KB", bytes / KB)
    } else {
        format!("{bytes:.0}B")
    }
}

/// Formats a duration in seconds with an adaptive unit.
///
/// # Example
///
/// ```
/// assert_eq!(gurita_model::units::format_seconds(0.0042), "4.200ms");
/// ```
pub fn format_seconds(secs: f64) -> String {
    let abs = secs.abs();
    if abs >= 1.0 {
        format!("{secs:.3}s")
    } else if abs >= MILLIS {
        format!("{:.3}ms", secs / MILLIS)
    } else {
        format!("{:.3}us", secs / MICROS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(MB, 1000.0 * KB);
        assert_eq!(GB, 1000.0 * MB);
        assert_eq!(TB, 1000.0 * GB);
        assert_eq!(GBPS_10, 1.25e9);
    }

    #[test]
    fn format_bytes_picks_unit() {
        assert_eq!(format_bytes(500.0), "500B");
        assert_eq!(format_bytes(6.0 * MB), "6.00MB");
        assert_eq!(format_bytes(1.5 * TB), "1.50TB");
        assert_eq!(format_bytes(80.0 * KB), "80.00KB");
    }

    #[test]
    fn format_seconds_picks_unit() {
        assert_eq!(format_seconds(2.0), "2.000s");
        assert_eq!(format_seconds(2.0 * MICROS), "2.000us");
        assert_eq!(format_seconds(20.0 * MILLIS), "20.000ms");
    }
}
