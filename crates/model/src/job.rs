//! Job specifications.

use crate::{CoflowSpec, JobDag, JobId, ModelError, SizeCategory};
use serde::{Deserialize, Serialize};

/// A multi-stage job: a set of coflows with a dependency [`JobDag`] and an
/// arrival time.
///
/// Coflow `i` of [`JobSpec::coflows`] corresponds to DAG vertex `i`. The
/// job completes when all root coflows complete; its *job completion time*
/// (JCT) is measured from `arrival`.
///
/// # Example
///
/// ```
/// use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec, units};
/// let coflows = vec![
///     CoflowSpec::new(vec![FlowSpec::new(HostId(0), HostId(1), units::MB)]),
///     CoflowSpec::new(vec![FlowSpec::new(HostId(1), HostId(2), units::MB)]),
/// ];
/// let job = JobSpec::new(7, 1.5, coflows, JobDag::chain(2)?)?;
/// assert_eq!(job.id().index(), 7);
/// assert_eq!(job.arrival(), 1.5);
/// # Ok::<(), gurita_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    id: JobId,
    arrival: f64,
    coflows: Vec<CoflowSpec>,
    dag: JobDag,
}

impl JobSpec {
    /// Creates a job, pairing coflow `i` with DAG vertex `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CoflowCountMismatch`] when the coflow count
    /// differs from the DAG vertex count.
    pub fn new(
        id: impl Into<JobId>,
        arrival: f64,
        coflows: Vec<CoflowSpec>,
        dag: JobDag,
    ) -> Result<Self, ModelError> {
        if coflows.len() != dag.num_vertices() {
            return Err(ModelError::CoflowCountMismatch {
                coflows: coflows.len(),
                vertices: dag.num_vertices(),
            });
        }
        Ok(Self {
            id: id.into(),
            arrival,
            coflows,
            dag,
        })
    }

    /// The job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Arrival time in seconds.
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// The job's coflows, indexed by DAG vertex.
    pub fn coflows(&self) -> &[CoflowSpec] {
        &self.coflows
    }

    /// The coflow at DAG vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn coflow(&self, v: usize) -> &CoflowSpec {
        &self.coflows[v]
    }

    /// The dependency DAG.
    pub fn dag(&self) -> &JobDag {
        &self.dag
    }

    /// Number of computation stages — the *depth* dimension.
    pub fn num_stages(&self) -> usize {
        self.dag.num_stages()
    }

    /// Total bytes sent across all coflows and stages (the quantity
    /// total-bytes-sent schedulers sort by, and the Table 1 classifier
    /// input).
    pub fn total_bytes(&self) -> f64 {
        self.coflows.iter().map(CoflowSpec::total_bytes).sum()
    }

    /// Bytes sent in stage `s` only.
    pub fn stage_bytes(&self, s: usize) -> f64 {
        self.dag
            .vertices_in_stage(s)
            .into_iter()
            .map(|v| self.coflows[v].total_bytes())
            .sum()
    }

    /// Total number of flows across all coflows.
    pub fn num_flows(&self) -> usize {
        self.coflows.iter().map(CoflowSpec::width).sum()
    }

    /// The job's Table 1 size category.
    pub fn category(&self) -> SizeCategory {
        SizeCategory::of_bytes(self.total_bytes())
    }

    /// Ideal (uncontended) critical-path completion time at a per-flow
    /// rate of `rate` bytes/sec: the DAG's maximum leaf-to-root sum of
    /// per-coflow bottleneck times. This is the `T(Φ)` lower bound of
    /// §III.A — no schedule can complete the job faster on paths alone.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn ideal_critical_path_time(&self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let weights: Vec<f64> = self.coflows.iter().map(|c| c.ideal_cct(rate)).collect();
        self.dag.critical_path(&weights).0
    }

    /// Returns a copy of the job with a different arrival time. Workload
    /// transformers (e.g. the bursty arrival generator) use this to
    /// re-time jobs without rebuilding them.
    pub fn with_arrival(&self, arrival: f64) -> Self {
        Self {
            arrival,
            ..self.clone()
        }
    }

    /// Returns a copy of the job with a different identifier.
    pub fn with_id(&self, id: impl Into<JobId>) -> Self {
        Self {
            id: id.into(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MB;
    use crate::{FlowSpec, HostId};

    fn coflow(bytes_each: f64, width: usize, base_host: usize) -> CoflowSpec {
        CoflowSpec::new(
            (0..width)
                .map(|i| FlowSpec::new(HostId(base_host + i), HostId(base_host + 100), bytes_each))
                .collect(),
        )
    }

    fn two_stage_job() -> JobSpec {
        JobSpec::new(
            1,
            0.0,
            vec![coflow(10.0 * MB, 2, 0), coflow(1.0 * MB, 1, 10)],
            JobDag::chain(2).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn mismatch_is_rejected() {
        let err = JobSpec::new(0, 0.0, vec![coflow(MB, 1, 0)], JobDag::chain(2).unwrap());
        assert_eq!(
            err.unwrap_err(),
            ModelError::CoflowCountMismatch {
                coflows: 1,
                vertices: 2
            }
        );
    }

    #[test]
    fn aggregates() {
        let j = two_stage_job();
        assert_eq!(j.total_bytes(), 21.0 * MB);
        assert_eq!(j.stage_bytes(0), 20.0 * MB);
        assert_eq!(j.stage_bytes(1), 1.0 * MB);
        assert_eq!(j.num_flows(), 3);
        assert_eq!(j.num_stages(), 2);
        assert_eq!(j.category(), SizeCategory::I);
    }

    #[test]
    fn ideal_critical_path_time_sums_stages() {
        let j = two_stage_job();
        // Stage 0 bottleneck 10MB, stage 1 bottleneck 1MB, at 1MB/s.
        assert!((j.ideal_critical_path_time(MB) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn with_arrival_and_id_modify_copies() {
        let j = two_stage_job();
        let j2 = j.with_arrival(9.0).with_id(5);
        assert_eq!(j2.arrival(), 9.0);
        assert_eq!(j2.id(), JobId(5));
        assert_eq!(j.arrival(), 0.0);
        assert_eq!(j2.total_bytes(), j.total_bytes());
    }
}
