//! Job dependency DAGs.
//!
//! Dependencies between the coflows of a multi-stage job form a directed
//! acyclic graph (paper §II): each vertex is a coflow and an edge from a
//! *child* to its *parent* means the parent coflow may start only after
//! the child completes. Leaves (vertices with no children) are the first
//! coflows processed; roots (no parents) are the job's outputs.
//!
//! The *stage* of a vertex is its longest distance from a leaf; the
//! paper's observation that "a job's i-th stage must complete before the
//! (i+1)-th stage can be processed" holds per dependency chain — parallel
//! chains advance independently, which this vertex-level activation model
//! captures exactly.

use crate::ModelError;
use serde::{Deserialize, Serialize};

/// Catalog of job-structure shapes observed in production (Microsoft's
/// Graphene study \[28\]): "W" shape, tree, chain, inverted "V", and more
/// complex multi-root shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DagShape {
    /// A linear pipeline of `len` sequential coflows.
    Chain {
        /// Number of stages in the chain; must be ≥ 1.
        len: usize,
    },
    /// A reduction tree: `fan_in^depth` leaves aggregate level by level
    /// into a single root. ~40% of production jobs are trees.
    Tree {
        /// Number of aggregation levels; must be ≥ 1.
        depth: usize,
        /// Children per parent; must be ≥ 1.
        fan_in: usize,
    },
    /// The "W" shape: two disjoint fan-ins whose outputs join in a final
    /// vertex (5 vertices total: 2 leaves + 1 mid + 2 leaves … realized as
    /// 4 leaves, 2 mids, 1 root).
    WShape,
    /// Inverted "V": `width` parallel leaves joining into a single root.
    InvertedV {
        /// Number of parallel leaves; must be ≥ 1.
        width: usize,
    },
    /// `chains` parallel chains of `len` vertices each, joined by one
    /// root (a job with multiple parallel chains of dependencies).
    ParallelChains {
        /// Number of parallel chains; must be ≥ 1.
        chains: usize,
        /// Length of each chain; must be ≥ 1.
        len: usize,
    },
    /// A shape with multiple outputs: `roots` roots all depending on one
    /// shared fan-in of `width` leaves.
    MultiRoot {
        /// Number of output roots; must be ≥ 1.
        roots: usize,
        /// Width of the shared leaf layer; must be ≥ 1.
        width: usize,
    },
}

/// The dependency DAG of one job.
///
/// Vertices are indexed `0..num_vertices()` and correspond one-to-one with
/// the coflows of a [`crate::JobSpec`]. Construction validates bounds and
/// acyclicity, so every `JobDag` instance is a well-formed DAG.
///
/// # Example
///
/// ```
/// use gurita_model::JobDag;
/// // 0 and 1 feed 2; 2 feeds 3.     0   1
/// //                                 \ /
/// //                                  2
/// //                                  |
/// //                                  3
/// let dag = JobDag::new(4, &[(0, 2), (1, 2), (2, 3)])?;
/// assert_eq!(dag.leaves(), &[0, 1]);
/// assert_eq!(dag.roots(), &[3]);
/// assert_eq!(dag.num_stages(), 3);
/// assert_eq!(dag.stage_of(2), 1);
/// # Ok::<(), gurita_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobDag {
    /// children[v] = vertices that must complete before v may start.
    children: Vec<Vec<usize>>,
    /// parents[v] = vertices that depend on v.
    parents: Vec<Vec<usize>>,
    /// Topological order (children before parents).
    topo: Vec<usize>,
    /// stage[v] = longest distance (in vertices) from a leaf; leaves are 0.
    stage: Vec<usize>,
    /// Number of distinct stages = max(stage) + 1.
    num_stages: usize,
}

impl JobDag {
    /// Builds a DAG with `num_vertices` vertices and dependency edges
    /// `(child, parent)` — the parent coflow starts only after the child
    /// completes.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyDag`] if `num_vertices == 0`;
    /// * [`ModelError::VertexOutOfBounds`] if an edge references a vertex
    ///   `>= num_vertices`;
    /// * [`ModelError::CyclicDag`] if the edges contain a cycle.
    pub fn new(num_vertices: usize, edges: &[(usize, usize)]) -> Result<Self, ModelError> {
        if num_vertices == 0 {
            return Err(ModelError::EmptyDag);
        }
        let mut children = vec![Vec::new(); num_vertices];
        let mut parents = vec![Vec::new(); num_vertices];
        for &(child, parent) in edges {
            for v in [child, parent] {
                if v >= num_vertices {
                    return Err(ModelError::VertexOutOfBounds {
                        vertex: v,
                        len: num_vertices,
                    });
                }
            }
            children[parent].push(child);
            parents[child].push(parent);
        }
        // Kahn's algorithm over "child completed" ordering.
        let mut indeg: Vec<usize> = children.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..num_vertices).filter(|&v| indeg[v] == 0).collect();
        let mut topo = Vec::with_capacity(num_vertices);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            topo.push(v);
            for &p in &parents[v] {
                indeg[p] -= 1;
                if indeg[p] == 0 {
                    queue.push(p);
                }
            }
        }
        if topo.len() != num_vertices {
            return Err(ModelError::CyclicDag);
        }
        let mut stage = vec![0usize; num_vertices];
        for &v in &topo {
            stage[v] = children[v].iter().map(|&c| stage[c] + 1).max().unwrap_or(0);
        }
        let num_stages = stage.iter().copied().max().unwrap_or(0) + 1;
        Ok(Self {
            children,
            parents,
            topo,
            stage,
            num_stages,
        })
    }

    /// Number of vertices (coflows).
    pub fn num_vertices(&self) -> usize {
        self.children.len()
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Dependencies of `v`: the coflows that must complete before `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// The coflows that depend on `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn parents(&self, v: usize) -> &[usize] {
        &self.parents[v]
    }

    /// Vertices with no dependencies — the first coflows to run (stage 0).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .filter(|&v| self.children[v].is_empty())
            .collect()
    }

    /// Vertices no other coflow depends on — the job's outputs.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .filter(|&v| self.parents[v].is_empty())
            .collect()
    }

    /// A topological order of the vertices (every child precedes its
    /// parents).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// The stage (depth from leaves, 0-based) of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn stage_of(&self, v: usize) -> usize {
        self.stage[v]
    }

    /// Number of stages — the *depth* dimension of the job.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// All vertices in stage `s` (may be empty if `s >= num_stages`).
    pub fn vertices_in_stage(&self, s: usize) -> Vec<usize> {
        (0..self.num_vertices())
            .filter(|&v| self.stage[v] == s)
            .collect()
    }

    /// Whether `v` is in the job's final stage.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn is_final_stage(&self, v: usize) -> bool {
        self.stage[v] + 1 == self.num_stages
    }

    /// Computes the critical path: the leaf-to-root path maximizing the
    /// sum of per-vertex weights (the paper weights each vertex by its
    /// estimated coflow completion time `CCT ≈ L/r`). Returns the total
    /// weight and the path (child first, root last).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != num_vertices()`.
    pub fn critical_path(&self, weights: &[f64]) -> (f64, Vec<usize>) {
        assert_eq!(
            weights.len(),
            self.num_vertices(),
            "one weight per vertex required"
        );
        let n = self.num_vertices();
        let mut dist = vec![0.0f64; n];
        let mut best_child: Vec<Option<usize>> = vec![None; n];
        for &v in &self.topo {
            let mut base = 0.0;
            let mut pick = None;
            for &c in &self.children[v] {
                if dist[c] > base || pick.is_none() {
                    base = dist[c];
                    pick = Some(c);
                }
            }
            if self.children[v].is_empty() {
                pick = None;
                base = 0.0;
            }
            dist[v] = weights[v] + base;
            best_child[v] = pick;
        }
        let mut end = 0usize;
        for v in 0..n {
            if dist[v] > dist[end] {
                end = v;
            }
        }
        let mut path = vec![end];
        let mut cur = end;
        while let Some(c) = best_child[cur] {
            path.push(c);
            cur = c;
        }
        path.reverse();
        (dist[end], path)
    }

    /// The set of vertices lying on *any* maximal-weight critical path.
    /// Used by schedulers implementing Gurita's Rule 4 under full
    /// information.
    pub fn critical_vertices(&self, weights: &[f64]) -> Vec<usize> {
        assert_eq!(weights.len(), self.num_vertices());
        let n = self.num_vertices();
        // Longest path ending at v (inclusive).
        let mut down = vec![0.0f64; n];
        for &v in &self.topo {
            let base = self.children[v]
                .iter()
                .map(|&c| down[c])
                .fold(0.0, f64::max);
            down[v] = weights[v] + base;
        }
        // Longest path starting at v (inclusive).
        let mut up = vec![0.0f64; n];
        for &v in self.topo.iter().rev() {
            let base = self.parents[v].iter().map(|&p| up[p]).fold(0.0, f64::max);
            up[v] = weights[v] + base;
        }
        let total = (0..n).map(|v| down[v]).fold(0.0, f64::max);
        let eps = 1e-9 * total.max(1.0);
        (0..n)
            .filter(|&v| (down[v] + up[v] - weights[v] - total).abs() <= eps)
            .collect()
    }

    /// Builds the DAG for a catalog [`DagShape`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidShape`] for degenerate parameters
    /// (zero lengths/widths).
    pub fn from_shape(shape: DagShape) -> Result<Self, ModelError> {
        match shape {
            DagShape::Chain { len } => Self::chain(len),
            DagShape::Tree { depth, fan_in } => Self::tree(depth, fan_in),
            DagShape::WShape => Self::w_shape(),
            DagShape::InvertedV { width } => Self::inverted_v(width),
            DagShape::ParallelChains { chains, len } => Self::parallel_chains(chains, len),
            DagShape::MultiRoot { roots, width } => Self::multi_root(roots, width),
        }
    }

    /// A linear chain of `len` coflows: `0 → 1 → … → len-1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidShape`] if `len == 0`.
    pub fn chain(len: usize) -> Result<Self, ModelError> {
        if len == 0 {
            return Err(ModelError::InvalidShape {
                reason: "chain length must be at least 1",
            });
        }
        let edges: Vec<(usize, usize)> = (1..len).map(|v| (v - 1, v)).collect();
        Self::new(len, &edges)
    }

    /// A reduction tree with `depth` aggregation levels and `fan_in`
    /// children per parent. The root is the last vertex.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidShape`] if `depth == 0` or
    /// `fan_in == 0`, or if the vertex count would overflow.
    pub fn tree(depth: usize, fan_in: usize) -> Result<Self, ModelError> {
        if depth == 0 || fan_in == 0 {
            return Err(ModelError::InvalidShape {
                reason: "tree depth and fan-in must be at least 1",
            });
        }
        if fan_in.checked_pow(depth as u32).is_none() {
            return Err(ModelError::InvalidShape {
                reason: "tree too large",
            });
        }
        // Level l (0 = leaves) has fan_in^(depth - l) vertices.
        let mut level_sizes = Vec::with_capacity(depth + 1);
        for l in 0..=depth {
            level_sizes.push(fan_in.pow((depth - l) as u32));
        }
        let mut offsets = Vec::with_capacity(depth + 1);
        let mut total = 0;
        for &s in &level_sizes {
            offsets.push(total);
            total += s;
        }
        let mut edges = Vec::new();
        for l in 0..depth {
            for p in 0..level_sizes[l + 1] {
                for k in 0..fan_in {
                    let child = offsets[l] + p * fan_in + k;
                    let parent = offsets[l + 1] + p;
                    edges.push((child, parent));
                }
            }
        }
        Self::new(total, &edges)
    }

    /// The "W" shape: four leaves aggregating pairwise into two middle
    /// vertices, which join in one root (7 vertices, 3 stages).
    pub fn w_shape() -> Result<Self, ModelError> {
        // leaves 0..4, mids 4,5, root 6
        Self::new(7, &[(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)])
    }

    /// Inverted "V": `width` parallel leaves joined by a single root.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidShape`] if `width == 0`.
    pub fn inverted_v(width: usize) -> Result<Self, ModelError> {
        if width == 0 {
            return Err(ModelError::InvalidShape {
                reason: "inverted-V width must be at least 1",
            });
        }
        let edges: Vec<(usize, usize)> = (0..width).map(|v| (v, width)).collect();
        Self::new(width + 1, &edges)
    }

    /// `chains` parallel chains of `len` vertices, all feeding one root.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidShape`] if either parameter is 0.
    pub fn parallel_chains(chains: usize, len: usize) -> Result<Self, ModelError> {
        if chains == 0 || len == 0 {
            return Err(ModelError::InvalidShape {
                reason: "parallel chains require at least one chain of length 1",
            });
        }
        let root = chains * len;
        let mut edges = Vec::new();
        for c in 0..chains {
            let base = c * len;
            for i in 1..len {
                edges.push((base + i - 1, base + i));
            }
            edges.push((base + len - 1, root));
        }
        Self::new(root + 1, &edges)
    }

    /// `roots` output roots all depending on a shared layer of `width`
    /// leaves (a complex shape with multiple outputs).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidShape`] if either parameter is 0.
    pub fn multi_root(roots: usize, width: usize) -> Result<Self, ModelError> {
        if roots == 0 || width == 0 {
            return Err(ModelError::InvalidShape {
                reason: "multi-root shape requires at least one root and one leaf",
            });
        }
        let mut edges = Vec::new();
        for r in 0..roots {
            for l in 0..width {
                edges.push((l, width + r));
            }
        }
        Self::new(width + roots, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_cyclic() {
        assert_eq!(JobDag::new(0, &[]), Err(ModelError::EmptyDag));
        assert_eq!(
            JobDag::new(2, &[(0, 1), (1, 0)]),
            Err(ModelError::CyclicDag)
        );
        assert_eq!(JobDag::new(1, &[(0, 0)]), Err(ModelError::CyclicDag));
    }

    #[test]
    fn rejects_out_of_bounds() {
        assert_eq!(
            JobDag::new(2, &[(0, 2)]),
            Err(ModelError::VertexOutOfBounds { vertex: 2, len: 2 })
        );
    }

    #[test]
    fn chain_structure() {
        let d = JobDag::chain(4).unwrap();
        assert_eq!(d.num_vertices(), 4);
        assert_eq!(d.num_stages(), 4);
        assert_eq!(d.leaves(), vec![0]);
        assert_eq!(d.roots(), vec![3]);
        assert_eq!(d.stage_of(2), 2);
        assert!(d.is_final_stage(3));
        assert!(!d.is_final_stage(0));
    }

    #[test]
    fn tree_structure() {
        let d = JobDag::tree(2, 2).unwrap();
        // 4 leaves + 2 mids + 1 root
        assert_eq!(d.num_vertices(), 7);
        assert_eq!(d.num_stages(), 3);
        assert_eq!(d.leaves().len(), 4);
        assert_eq!(d.roots().len(), 1);
        assert_eq!(d.num_edges(), 6);
        let root = d.roots()[0];
        assert_eq!(d.children(root).len(), 2);
    }

    #[test]
    fn w_shape_structure() {
        let d = JobDag::w_shape().unwrap();
        assert_eq!(d.num_vertices(), 7);
        assert_eq!(d.leaves().len(), 4);
        assert_eq!(d.roots(), vec![6]);
        assert_eq!(d.num_stages(), 3);
    }

    #[test]
    fn inverted_v_structure() {
        let d = JobDag::inverted_v(5).unwrap();
        assert_eq!(d.num_vertices(), 6);
        assert_eq!(d.leaves().len(), 5);
        assert_eq!(d.roots(), vec![5]);
        assert_eq!(d.num_stages(), 2);
    }

    #[test]
    fn parallel_chains_structure() {
        let d = JobDag::parallel_chains(3, 2).unwrap();
        assert_eq!(d.num_vertices(), 7);
        assert_eq!(d.leaves().len(), 3);
        assert_eq!(d.roots(), vec![6]);
        assert_eq!(d.num_stages(), 3);
    }

    #[test]
    fn multi_root_structure() {
        let d = JobDag::multi_root(2, 3).unwrap();
        assert_eq!(d.num_vertices(), 5);
        assert_eq!(d.leaves().len(), 3);
        assert_eq!(d.roots().len(), 2);
        assert_eq!(d.num_stages(), 2);
    }

    #[test]
    fn shape_constructors_validate() {
        assert!(JobDag::chain(0).is_err());
        assert!(JobDag::tree(0, 2).is_err());
        assert!(JobDag::tree(2, 0).is_err());
        assert!(JobDag::inverted_v(0).is_err());
        assert!(JobDag::parallel_chains(0, 1).is_err());
        assert!(JobDag::multi_root(1, 0).is_err());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let d = JobDag::new(4, &[(0, 2), (1, 2), (2, 3)]).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in d.topo_order().iter().enumerate() {
                p[v] = i;
            }
            p
        };
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[2]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn critical_path_on_diamond() {
        //  0 -> 1 -> 3 and 0 -> 2 -> 3; vertex 2 heavier.
        let d = JobDag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let (w, path) = d.critical_path(&[1.0, 2.0, 5.0, 1.0]);
        assert_eq!(w, 7.0);
        assert_eq!(path, vec![0, 2, 3]);
    }

    #[test]
    fn critical_vertices_mark_all_tied_paths() {
        let d = JobDag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let cv = d.critical_vertices(&[1.0, 2.0, 2.0, 1.0]);
        // Both middle vertices tie, all four vertices are critical.
        assert_eq!(cv, vec![0, 1, 2, 3]);
        let cv2 = d.critical_vertices(&[1.0, 2.0, 5.0, 1.0]);
        assert_eq!(cv2, vec![0, 2, 3]);
    }

    #[test]
    fn critical_path_single_vertex() {
        let d = JobDag::new(1, &[]).unwrap();
        let (w, path) = d.critical_path(&[3.5]);
        assert_eq!(w, 3.5);
        assert_eq!(path, vec![0]);
    }

    #[test]
    fn from_shape_round_trip() {
        for shape in [
            DagShape::Chain { len: 3 },
            DagShape::Tree {
                depth: 2,
                fan_in: 3,
            },
            DagShape::WShape,
            DagShape::InvertedV { width: 4 },
            DagShape::ParallelChains { chains: 2, len: 3 },
            DagShape::MultiRoot { roots: 2, width: 2 },
        ] {
            let d = JobDag::from_shape(shape).unwrap();
            assert!(d.num_vertices() >= 1);
        }
    }

    #[test]
    fn stage_partition_covers_all_vertices() {
        let d = JobDag::w_shape().unwrap();
        let total: usize = (0..d.num_stages())
            .map(|s| d.vertices_in_stage(s).len())
            .sum();
        assert_eq!(total, d.num_vertices());
    }
}
