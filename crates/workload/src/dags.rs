//! DAG structure templates.
//!
//! The Facebook trace records coflows but not inter-coflow dependencies,
//! so the paper "utilize\[s\] industrial benchmark\[s\] … TPC-DS query-42
//! and Facebook Tao structure to generate DAG structure\[s\]", each DAG
//! vertex being a replication of a trace coflow. This module provides
//! those two templates plus the production shape mix reported by
//! Microsoft's Graphene study \[28\]: ~40% trees; "W", chain, inverted-V
//! and multi-root shapes; average depth 5, tails beyond 10.
//!
//! A [`DagTemplate`] couples the [`JobDag`] with per-vertex *byte
//! fractions* (how the job's total bytes split across coflows — scans are
//! heavy, final aggregates are light, on-and-off jobs alternate) and
//! *width scales* (fan-out hints — leaf shuffles are wide, roots narrow).

use crate::dist::{jittered_split, Discrete};
use gurita_model::{DagShape, JobDag};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which DAG family a workload draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StructureKind {
    /// Facebook TAO structure: wide, shallow fan-in trees (read-heavy
    /// cache-association pattern) — the paper's "FB-Tao".
    FbTao,
    /// TPC-DS query-42 star-schema query plan — the paper's "TPC-DS".
    TpcDs,
    /// The Graphene production mix (trees, chains, "W", inverted-V,
    /// parallel chains, multi-root).
    ProductionMix,
    /// Single-stage jobs (plain coflows) — the degenerate case every
    /// TBS scheduler was designed for; useful for sanity baselines.
    SingleStage,
}

/// A job-structure template: the DAG plus per-vertex byte and width
/// profiles.
#[derive(Debug, Clone)]
pub struct DagTemplate {
    /// The dependency DAG.
    pub dag: JobDag,
    /// Fraction of the job's total bytes carried by each vertex's
    /// coflow; positive, sums to 1.
    pub byte_fraction: Vec<f64>,
    /// Relative width multiplier per vertex (1.0 = the job's base
    /// width).
    pub width_scale: Vec<f64>,
}

impl DagTemplate {
    fn validate(self) -> Self {
        let n = self.dag.num_vertices();
        assert_eq!(self.byte_fraction.len(), n, "one byte fraction per vertex");
        assert_eq!(self.width_scale.len(), n, "one width scale per vertex");
        let sum: f64 = self.byte_fraction.iter().sum();
        debug_assert!((sum - 1.0).abs() < 1e-6, "byte fractions must sum to 1");
        self
    }
}

/// The TPC-DS query-42 plan as a coflow DAG.
///
/// Star-schema aggregation query: `store_sales` joins `date_dim`, the
/// result joins `item`, then aggregate and sort. Six shuffles:
///
/// ```text
///   scan_ss(0)  scan_dd(1)      scan_item(2)
///        \        /                 |
///        join1(3) ------------------+
///                 \                 |
///                  join2(4) --------+
///                     |
///                 agg+sort(5)
/// ```
///
/// Fact-table scans dominate the bytes; dimension scans and the final
/// aggregate are small — the "transmits more bytes in early stages"
/// profile TBS schedulers punish.
pub fn tpcds_query42() -> DagTemplate {
    let dag = JobDag::new(6, &[(0, 3), (1, 3), (3, 4), (2, 4), (4, 5)])
        .expect("static query-42 DAG is valid");
    DagTemplate {
        dag,
        byte_fraction: vec![0.55, 0.02, 0.03, 0.25, 0.12, 0.03],
        width_scale: vec![2.0, 0.5, 0.5, 1.0, 0.75, 0.25],
    }
    .validate()
}

/// A Facebook-TAO-style structure: `width` wide leaf coflows (the
/// read/association fan-out), aggregating pairwise through a middle tier
/// into a root — wide and shallow, with the bytes front-loaded in the
/// leaves.
///
/// # Panics
///
/// Panics unless `width >= 2`.
pub fn fb_tao(width: usize) -> DagTemplate {
    assert!(width >= 2, "TAO fan-in needs at least two leaves");
    let mids = 2usize;
    let n = width + mids + 1;
    let mut edges = Vec::new();
    for l in 0..width {
        edges.push((l, width + (l % mids)));
    }
    edges.push((width, n - 1));
    edges.push((width + 1, n - 1));
    let dag = JobDag::new(n, &edges).expect("static TAO DAG is valid");
    // Leaves carry 80% of the bytes, mids 15%, root 5%.
    let mut byte_fraction = vec![0.80 / width as f64; width];
    byte_fraction.extend(std::iter::repeat_n(0.15 / mids as f64, mids));
    byte_fraction.push(0.05);
    let mut width_scale = vec![1.5; width];
    width_scale.extend(std::iter::repeat_n(0.75, mids));
    width_scale.push(0.25);
    DagTemplate {
        dag,
        byte_fraction,
        width_scale,
    }
    .validate()
}

/// TPC-DS query-52 — a sibling star-schema plan (date_dim ⋈
/// store_sales ⋈ item, group-by, order-by) with one fewer join level
/// than query-42: both scans feed a single join, then aggregate+sort.
/// Included so the CD workload family has more than one plan shape.
pub fn tpcds_query52() -> DagTemplate {
    // scan_ss(0), scan_dd(1), scan_item(2) -> join(3) -> agg_sort(4)
    let dag =
        JobDag::new(5, &[(0, 3), (1, 3), (2, 3), (3, 4)]).expect("static query-52 DAG is valid");
    DagTemplate {
        dag,
        byte_fraction: vec![0.60, 0.03, 0.05, 0.27, 0.05],
        width_scale: vec![2.0, 0.5, 0.5, 1.0, 0.25],
    }
    .validate()
}

/// A generic star-join plan: one fact-table scan joined against
/// `dimensions` dimension scans through a chain of `dimensions` join
/// stages, then a final aggregate. Models the broader Cloudera SQL
/// workload family the paper's CD benchmark represents.
///
/// # Panics
///
/// Panics unless `dimensions >= 1`.
pub fn star_join(dimensions: usize) -> DagTemplate {
    assert!(dimensions >= 1, "a star join needs at least one dimension");
    // Vertices: fact scan (0), dim scans (1..=d), joins (d+1..=2d),
    // aggregate (2d+1).
    let d = dimensions;
    let n = 2 * d + 2;
    let mut edges = Vec::new();
    // First join consumes the fact scan and dim 1.
    edges.push((0, d + 1));
    edges.push((1, d + 1));
    // Each later join consumes the previous join and the next dim.
    for j in 1..d {
        edges.push((d + j, d + 1 + j));
        edges.push((1 + j, d + 1 + j));
    }
    edges.push((2 * d, n - 1));
    let dag = JobDag::new(n, &edges).expect("star-join DAG is valid");
    // Fact scan dominates; join outputs shrink geometrically.
    let mut byte_fraction = vec![0.0; n];
    byte_fraction[0] = 0.50;
    for i in 0..d {
        byte_fraction[1 + i] = 0.10 / d as f64; // dimension scans
    }
    let mut join_share = 0.35;
    let mut total_join = 0.0;
    for j in 0..d {
        byte_fraction[d + 1 + j] = join_share;
        total_join += join_share;
        join_share /= 2.0;
    }
    // Normalize joins into the 0.35 budget and give the rest to agg.
    for j in 0..d {
        byte_fraction[d + 1 + j] *= 0.35 / total_join;
    }
    byte_fraction[n - 1] = 0.05;
    let mut width_scale = vec![1.0; n];
    width_scale[0] = 2.0;
    for i in 0..d {
        width_scale[1 + i] = 0.5;
    }
    for j in 0..d {
        width_scale[d + 1 + j] = (1.0 - 0.15 * j as f64).max(0.3);
    }
    width_scale[n - 1] = 0.25;
    DagTemplate {
        dag,
        byte_fraction,
        width_scale,
    }
    .validate()
}

/// A linear ETL pipeline: `stages` sequential transforms with a heavy
/// ingest stage and progressively shrinking outputs — the chain-shaped
/// production job of the Graphene study.
///
/// # Panics
///
/// Panics unless `stages >= 1`.
pub fn etl_chain(stages: usize) -> DagTemplate {
    assert!(stages >= 1, "an ETL chain needs at least one stage");
    let dag = JobDag::chain(stages).expect("chain is valid");
    let mut raw: Vec<f64> = (0..stages).map(|s| 0.5f64.powi(s as i32)).collect();
    let total: f64 = raw.iter().sum();
    for b in &mut raw {
        *b /= total;
    }
    let width_scale: Vec<f64> = (0..stages)
        .map(|s| (1.5 - 0.2 * s as f64).max(0.3))
        .collect();
    DagTemplate {
        dag,
        byte_fraction: raw,
        width_scale,
    }
    .validate()
}

/// Samples a production-mix shape per the Graphene study: ~40% trees,
/// the remainder split across chains, "W" shapes, inverted-V, parallel
/// chains, and multi-root structures; average depth around 5 stages,
/// occasionally exceeding 10.
pub fn production_shape<R: Rng + ?Sized>(rng: &mut R) -> DagShape {
    // tree 40%, chain 15%, W 10%, inverted-V 10%, parallel chains 15%,
    // multi-root 10%.
    let pick = Discrete::new(&[0.40, 0.15, 0.10, 0.10, 0.15, 0.10]);
    match pick.sample(rng) {
        0 => DagShape::Tree {
            depth: rng.gen_range(2..=4),
            fan_in: rng.gen_range(2..=3),
        },
        1 => DagShape::Chain {
            // Depth-heavy: mean ≈ 5, tail to 12.
            len: 2 + (crate::dist::bounded_pareto(rng, 1.0, 10.0, 1.3) as usize),
        },
        2 => DagShape::WShape,
        3 => DagShape::InvertedV {
            width: rng.gen_range(2..=8),
        },
        4 => DagShape::ParallelChains {
            chains: rng.gen_range(2..=4),
            len: rng.gen_range(2..=5),
        },
        _ => DagShape::MultiRoot {
            roots: rng.gen_range(2..=3),
            width: rng.gen_range(2..=6),
        },
    }
}

/// Builds a template for an arbitrary shape with randomized byte
/// fractions: stage byte weights follow an "on-and-off" profile (each
/// stage is heavy or light), then bytes split jitter-evenly among the
/// stage's vertices.
pub fn template_for_shape<R: Rng + ?Sized>(rng: &mut R, shape: DagShape) -> DagTemplate {
    let dag = JobDag::from_shape(shape).expect("catalog shapes are valid");
    template_for_dag(rng, dag)
}

/// Builds a randomized on-and-off byte profile for an existing DAG.
pub fn template_for_dag<R: Rng + ?Sized>(rng: &mut R, dag: JobDag) -> DagTemplate {
    let stages = dag.num_stages();
    // On-and-off: each stage is "heavy" (weight 1) or "light"
    // (weight 0.1); at least one stage is heavy by construction.
    let mut stage_weight: Vec<f64> = (0..stages)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.1 })
        .collect();
    let heavy = rng.gen_range(0..stages);
    stage_weight[heavy] = 1.0;
    let total_w: f64 = (0..stages)
        .map(|s| stage_weight[s] * dag.vertices_in_stage(s).len().max(1) as f64)
        .sum();
    let mut byte_fraction = vec![0.0; dag.num_vertices()];
    for (s, &weight) in stage_weight.iter().enumerate() {
        let verts = dag.vertices_in_stage(s);
        if verts.is_empty() {
            continue;
        }
        let stage_total = weight * verts.len() as f64 / total_w;
        let split = jittered_split(rng, stage_total, verts.len(), 0.5);
        for (v, b) in verts.into_iter().zip(split) {
            byte_fraction[v] = b;
        }
    }
    // Widths shrink toward the roots (aggregation narrows data).
    let width_scale: Vec<f64> = (0..dag.num_vertices())
        .map(|v| {
            let s = dag.stage_of(v) as f64;
            (1.5 / (1.0 + 0.5 * s)).max(0.2)
        })
        .collect();
    DagTemplate {
        dag,
        byte_fraction,
        width_scale,
    }
    .validate()
}

/// Builds a template according to the structure family.
pub fn sample_template<R: Rng + ?Sized>(rng: &mut R, kind: StructureKind) -> DagTemplate {
    match kind {
        StructureKind::TpcDs => tpcds_query42(),
        StructureKind::FbTao => fb_tao(rng.gen_range(3..=8)),
        StructureKind::ProductionMix => {
            let shape = production_shape(rng);
            template_for_shape(rng, shape)
        }
        StructureKind::SingleStage => DagTemplate {
            dag: JobDag::chain(1).expect("single vertex chain"),
            byte_fraction: vec![1.0],
            width_scale: vec![1.0],
        }
        .validate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn query42_profile() {
        let t = tpcds_query42();
        assert_eq!(t.dag.num_vertices(), 6);
        assert_eq!(t.dag.num_stages(), 4);
        assert_eq!(t.dag.leaves(), vec![0, 1, 2]);
        assert_eq!(t.dag.roots(), vec![5]);
        let sum: f64 = t.byte_fraction.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Fact scan dominates; final stage is light (the TBS trap).
        assert!(t.byte_fraction[0] > 0.5);
        assert!(t.byte_fraction[5] < 0.05);
    }

    #[test]
    fn fb_tao_is_wide_and_shallow() {
        let t = fb_tao(6);
        assert_eq!(t.dag.num_vertices(), 9);
        assert_eq!(t.dag.num_stages(), 3);
        assert_eq!(t.dag.leaves().len(), 6);
        let leaf_bytes: f64 = (0..6).map(|v| t.byte_fraction[v]).sum();
        assert!(leaf_bytes > 0.7, "leaves must carry most bytes");
    }

    #[test]
    #[should_panic(expected = "two leaves")]
    fn fb_tao_rejects_degenerate_width() {
        let _ = fb_tao(1);
    }

    #[test]
    fn query52_is_one_join_shallower_than_query42() {
        let q52 = tpcds_query52();
        let q42 = tpcds_query42();
        assert_eq!(q52.dag.num_stages() + 1, q42.dag.num_stages());
        assert_eq!(q52.dag.leaves().len(), 3);
        let sum: f64 = q52.byte_fraction.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn star_join_scales_with_dimensions() {
        for d in 1..=4 {
            let t = star_join(d);
            assert_eq!(t.dag.num_vertices(), 2 * d + 2);
            assert_eq!(t.dag.leaves().len(), d + 1, "fact + d dims");
            assert_eq!(t.dag.roots().len(), 1);
            let sum: f64 = t.byte_fraction.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "d={d} sum {sum}");
            // Depth: d joins + agg + leaf layer.
            assert_eq!(t.dag.num_stages(), d + 2);
        }
    }

    #[test]
    fn etl_chain_front_loads_bytes() {
        let t = etl_chain(5);
        assert_eq!(t.dag.num_stages(), 5);
        for w in t.byte_fraction.windows(2) {
            assert!(w[0] > w[1], "bytes must shrink along the chain");
        }
        let sum: f64 = t.byte_fraction.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn star_join_rejects_zero_dims() {
        let _ = star_join(0);
    }

    #[test]
    fn production_mix_depth_distribution() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut depth_sum = 0usize;
        let mut trees = 0usize;
        let n = 2000;
        let mut max_depth = 0;
        for _ in 0..n {
            let shape = production_shape(&mut rng);
            if matches!(shape, DagShape::Tree { .. }) {
                trees += 1;
            }
            let dag = JobDag::from_shape(shape).unwrap();
            depth_sum += dag.num_stages();
            max_depth = max_depth.max(dag.num_stages());
        }
        let avg_depth = depth_sum as f64 / n as f64;
        assert!(
            (2.5..=6.0).contains(&avg_depth),
            "average depth should be near 5-ish, got {avg_depth}"
        );
        assert!(max_depth >= 8, "deep chains must occur, max {max_depth}");
        let tree_frac = trees as f64 / n as f64;
        assert!((tree_frac - 0.40).abs() < 0.05, "tree fraction {tree_frac}");
    }

    #[test]
    fn templates_are_internally_consistent() {
        let mut rng = StdRng::seed_from_u64(20);
        for kind in [
            StructureKind::FbTao,
            StructureKind::TpcDs,
            StructureKind::ProductionMix,
            StructureKind::SingleStage,
        ] {
            for _ in 0..50 {
                let t = sample_template(&mut rng, kind);
                assert_eq!(t.byte_fraction.len(), t.dag.num_vertices());
                assert_eq!(t.width_scale.len(), t.dag.num_vertices());
                let sum: f64 = t.byte_fraction.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "{kind:?} sum {sum}");
                assert!(t.byte_fraction.iter().all(|&b| b > 0.0));
                assert!(t.width_scale.iter().all(|&w| w > 0.0));
            }
        }
    }

    #[test]
    fn on_and_off_profiles_vary_across_stages() {
        let mut rng = StdRng::seed_from_u64(30);
        let mut saw_skew = false;
        for _ in 0..50 {
            let t = template_for_shape(&mut rng, DagShape::Chain { len: 6 });
            let max = t.byte_fraction.iter().copied().fold(0.0, f64::max);
            let min = t
                .byte_fraction
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            if max / min > 5.0 {
                saw_skew = true;
                break;
            }
        }
        assert!(saw_skew, "on-and-off stage skew should appear");
    }
}
