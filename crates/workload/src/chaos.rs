//! Seeded fault-schedule synthesis ("chaos" scenarios).
//!
//! Experiments that inject faults need the same reproducibility
//! guarantee as the workload itself: identical configuration and seed
//! must produce an identical [`FaultSchedule`]. [`ChaosGenerator`]
//! provides that — it browns out a random subset of hosts for a window
//! of the run and (optionally) hard-fails caller-chosen links for the
//! same window, restoring everything afterwards so runs always drain.
//!
//! # Example
//!
//! ```
//! use gurita_workload::chaos::{ChaosConfig, ChaosGenerator};
//!
//! let schedule = ChaosGenerator::new(
//!     ChaosConfig {
//!         num_hosts: 128,
//!         brownout_fraction: 0.25,
//!         severity: 0.2,
//!         start: 1.0,
//!         duration: 2.0,
//!         ..ChaosConfig::default()
//!     },
//!     7,
//! )
//! .generate();
//! // 32 hosts browned out + 32 restored.
//! assert_eq!(schedule.len(), 64);
//! ```

use gurita_model::HostId;
use gurita_sim::faults::{FaultEvent, FaultSchedule};
use gurita_sim::topology::LinkId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthesized chaos scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Number of hosts in the target fabric.
    pub num_hosts: usize,
    /// Fraction of hosts browned out during the fault window, in
    /// `[0, 1]`; the affected subset is drawn uniformly from the seed.
    pub brownout_fraction: f64,
    /// Capacity factor applied to browned-out hosts, in `(0, 1]`
    /// (`0.2` = the host keeps 20% of its NIC bandwidth).
    pub severity: f64,
    /// Start of the fault window (simulation seconds).
    pub start: f64,
    /// Length of the fault window; every fault is restored/recovered at
    /// `start + duration`.
    pub duration: f64,
    /// Links to hard-fail for the duration of the window (e.g. a core
    /// link picked off a flow's path). Empty by default.
    pub fail_links: Vec<LinkId>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            num_hosts: 128,
            brownout_fraction: 0.25,
            severity: 0.2,
            start: 1.0,
            duration: 2.0,
            fail_links: Vec::new(),
        }
    }
}

/// Deterministic, seeded fault-schedule generator.
#[derive(Debug)]
pub struct ChaosGenerator {
    config: ChaosConfig,
    rng: StdRng,
}

impl ChaosGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: ChaosConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Synthesizes the fault schedule: brown-outs and link failures at
    /// `start`, matching restores/recoveries at `start + duration`.
    ///
    /// # Panics
    ///
    /// Panics if `brownout_fraction` is outside `[0, 1]`. Other invalid
    /// parameters (severity, unknown links) are caught by
    /// [`FaultSchedule::validate`] when the schedule meets its fabric.
    pub fn generate(mut self) -> FaultSchedule {
        let cfg = &self.config;
        assert!(
            (0.0..=1.0).contains(&cfg.brownout_fraction),
            "brownout_fraction must be in [0, 1], got {}",
            cfg.brownout_fraction
        );
        let end = cfg.start + cfg.duration;
        let mut schedule = FaultSchedule::new();
        let num_browned = (cfg.num_hosts as f64 * cfg.brownout_fraction).round() as usize;
        for host in sample_hosts(&mut self.rng, cfg.num_hosts, num_browned) {
            schedule.push(
                cfg.start,
                FaultEvent::BrownoutHost {
                    host,
                    factor: cfg.severity,
                },
            );
            schedule.push(end, FaultEvent::RestoreHost { host });
        }
        for &link in &cfg.fail_links {
            schedule.push(cfg.start, FaultEvent::FailLink { link });
            schedule.push(end, FaultEvent::RecoverLink { link });
        }
        schedule
    }
}

/// Draws `count` distinct hosts uniformly (partial Fisher–Yates over the
/// host index range).
fn sample_hosts(rng: &mut StdRng, num_hosts: usize, count: usize) -> Vec<HostId> {
    let count = count.min(num_hosts);
    let mut pool: Vec<usize> = (0..num_hosts).collect();
    let mut picked = Vec::with_capacity(count);
    for i in 0..count {
        let j = rng.gen_range(i..num_hosts);
        pool.swap(i, j);
        picked.push(HostId(pool[i]));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cfg() -> ChaosConfig {
        ChaosConfig {
            num_hosts: 16,
            brownout_fraction: 0.5,
            severity: 0.3,
            start: 2.0,
            duration: 3.0,
            fail_links: vec![LinkId(1)],
        }
    }

    #[test]
    fn deterministic_per_seed_and_divergent_across_seeds() {
        let a = ChaosGenerator::new(cfg(), 9).generate();
        let b = ChaosGenerator::new(cfg(), 9).generate();
        let c = ChaosGenerator::new(cfg(), 10).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn every_fault_has_a_matching_restore() {
        let schedule = ChaosGenerator::new(cfg(), 4).generate();
        // 8 brownouts + 8 restores + 1 fail + 1 recover.
        assert_eq!(schedule.len(), 18);
        let (mut down, mut up) = (0, 0);
        for tf in schedule.events() {
            match tf.event {
                FaultEvent::BrownoutHost { factor, .. } => {
                    assert_eq!(factor, 0.3);
                    assert_eq!(tf.at, 2.0);
                    down += 1;
                }
                FaultEvent::RestoreHost { .. } | FaultEvent::RecoverLink { .. } => {
                    assert_eq!(tf.at, 5.0);
                    up += 1;
                }
                FaultEvent::FailLink { link } => {
                    assert_eq!(link, LinkId(1));
                    down += 1;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(down, up);
    }

    #[test]
    fn browned_hosts_are_distinct_and_in_range() {
        let schedule = ChaosGenerator::new(
            ChaosConfig {
                num_hosts: 8,
                brownout_fraction: 1.0,
                fail_links: vec![],
                ..cfg()
            },
            11,
        )
        .generate();
        let browned: HashSet<usize> = schedule
            .events()
            .iter()
            .filter_map(|tf| match tf.event {
                FaultEvent::BrownoutHost { host, .. } => Some(host.index()),
                _ => None,
            })
            .collect();
        assert_eq!(browned.len(), 8);
        assert!(browned.iter().all(|&h| h < 8));
    }

    #[test]
    fn zero_fraction_yields_only_link_faults() {
        let schedule = ChaosGenerator::new(
            ChaosConfig {
                brownout_fraction: 0.0,
                ..cfg()
            },
            1,
        )
        .generate();
        assert_eq!(schedule.len(), 2);
    }
}
