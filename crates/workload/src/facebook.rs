//! Facebook-trace coflow synthesizer.
//!
//! The paper replays a production coflow trace collected from 150 racks
//! (3 000 machines) of a Facebook datacenter. That trace is not
//! redistributable, so this module synthesizes coflows matching its
//! published shape (Varys \[4\] / Aalo \[5\] describe the trace):
//!
//! * coflow *widths* (sender/receiver counts) are heavy-tailed: most
//!   coflows are narrow (a handful of flows), a small fraction fan out to
//!   hundreds of ports;
//! * *flow sizes* are heavy-tailed across many decades: most flows are
//!   sub-megabyte "mice", while a few elephants carry most of the bytes;
//! * endpoints are *rack-aware*: senders of one coflow cluster on a rack
//!   subset (map tasks share machines), receivers spread across racks.
//!
//! A synthesized [`TraceCoflow`] carries relative shape only; the DAG
//! builder scales flow sizes so that job totals land in a target Table 1
//! category, exactly as the paper's generator replicates trace coflows
//! into DAG vertices.

use crate::dist::{bounded_pareto, log_uniform};
use gurita_model::{CoflowSpec, FlowSpec, HostId};
use rand::Rng;

/// Hosts per rack in the reference 150-rack / 3 000-machine deployment.
pub const HOSTS_PER_RACK: usize = 20;

/// A synthesized trace coflow: endpoints plus *relative* per-flow byte
/// weights (they sum to 1).
#[derive(Debug, Clone)]
pub struct TraceCoflow {
    /// (sender, receiver) pairs, one per flow.
    pub endpoints: Vec<(HostId, HostId)>,
    /// Relative flow sizes; positive, summing to 1.
    pub weights: Vec<f64>,
}

impl TraceCoflow {
    /// Number of flows (the coflow's width).
    pub fn width(&self) -> usize {
        self.endpoints.len()
    }

    /// Materializes the coflow with a concrete byte total.
    ///
    /// # Panics
    ///
    /// Panics unless `total_bytes > 0`.
    pub fn materialize(&self, total_bytes: f64) -> CoflowSpec {
        assert!(total_bytes > 0.0, "total bytes must be positive");
        CoflowSpec::new(
            self.endpoints
                .iter()
                .zip(&self.weights)
                .map(|(&(src, dst), &w)| FlowSpec::new(src, dst, (total_bytes * w).max(1.0)))
                .collect(),
        )
    }
}

/// Synthesizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FacebookConfig {
    /// Number of hosts endpoints are placed on.
    pub num_hosts: usize,
    /// Heavy-tail index for coflow width (smaller = heavier tail).
    pub width_alpha: f64,
    /// Maximum coflow width (clamped to `num_hosts`).
    pub max_width: usize,
    /// Heavy-tail index for relative flow sizes within a coflow.
    pub flow_alpha: f64,
}

impl Default for FacebookConfig {
    fn default() -> Self {
        Self {
            num_hosts: 3000,
            width_alpha: 1.1,
            max_width: 500,
            flow_alpha: 1.05,
        }
    }
}

/// Samples coflow shapes mimicking the Facebook trace.
#[derive(Debug, Clone)]
pub struct FacebookSampler {
    config: FacebookConfig,
}

impl FacebookSampler {
    /// Creates a sampler for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_hosts == 0`.
    pub fn new(config: FacebookConfig) -> Self {
        assert!(config.num_hosts > 0, "at least one host required");
        Self { config }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &FacebookConfig {
        &self.config
    }

    /// Samples a coflow width from the heavy-tailed width distribution.
    pub fn sample_width<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let cap = self.config.max_width.min(self.config.num_hosts).max(1);
        let w = bounded_pareto(rng, 1.0, cap as f64, self.config.width_alpha);
        (w.round() as usize).clamp(1, cap)
    }

    /// Samples one trace coflow: width, rack-aware endpoints, and
    /// relative flow weights.
    pub fn sample_coflow<R: Rng + ?Sized>(&self, rng: &mut R) -> TraceCoflow {
        let width = self.sample_width(rng);
        self.sample_coflow_with_width(rng, width)
    }

    /// Samples a trace coflow with a fixed width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn sample_coflow_with_width<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        width: usize,
    ) -> TraceCoflow {
        assert!(width > 0, "coflow width must be at least 1");
        let n = self.config.num_hosts;
        // Map tasks (senders) cluster: pick a home rack and spill to
        // neighbours; reduce tasks (receivers) spread uniformly.
        let racks = n.div_ceil(HOSTS_PER_RACK);
        let home_rack = rng.gen_range(0..racks);
        let mut endpoints = Vec::with_capacity(width);
        let mut weights = Vec::with_capacity(width);
        for _ in 0..width {
            let src_rack = if rng.gen_bool(0.7) {
                home_rack
            } else {
                rng.gen_range(0..racks)
            };
            let src = HostId((src_rack * HOSTS_PER_RACK + rng.gen_range(0..HOSTS_PER_RACK)) % n);
            let mut dst = HostId(rng.gen_range(0..n));
            // A flow between distinct machines (re-draw a handful of
            // times; same-host transfers are legal but rare in the trace).
            for _ in 0..4 {
                if dst != src {
                    break;
                }
                dst = HostId(rng.gen_range(0..n));
            }
            endpoints.push((src, dst));
            weights.push(bounded_pareto(rng, 1.0, 1e4, self.config.flow_alpha));
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        TraceCoflow { endpoints, weights }
    }

    /// Samples a standalone single-stage coflow byte total, heavy-tailed
    /// across the trace's range (100 KB … 100 GB, log-uniform so the tail
    /// is visited).
    pub fn sample_coflow_bytes<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        log_uniform(rng, 1e5, 1e11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(hosts: usize) -> FacebookSampler {
        FacebookSampler::new(FacebookConfig {
            num_hosts: hosts,
            ..FacebookConfig::default()
        })
    }

    #[test]
    fn widths_are_bounded_and_heavy_tailed() {
        let s = sampler(3000);
        let mut rng = StdRng::seed_from_u64(1);
        let widths: Vec<usize> = (0..4000).map(|_| s.sample_width(&mut rng)).collect();
        assert!(widths.iter().all(|&w| (1..=500).contains(&w)));
        let narrow = widths.iter().filter(|&&w| w <= 10).count();
        assert!(narrow > widths.len() / 2, "most coflows should be narrow");
        assert!(widths.iter().any(|&w| w > 50), "wide coflows must occur");
    }

    #[test]
    fn width_respects_host_count() {
        let s = sampler(4);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(s.sample_width(&mut rng) <= 4);
        }
    }

    #[test]
    fn coflow_weights_normalized() {
        let s = sampler(100);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = s.sample_coflow(&mut rng);
            assert_eq!(c.width(), c.weights.len());
            let sum: f64 = c.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(c.weights.iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn endpoints_in_range() {
        let s = sampler(60);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let c = s.sample_coflow(&mut rng);
            for &(src, dst) in &c.endpoints {
                assert!(src.index() < 60);
                assert!(dst.index() < 60);
            }
        }
    }

    #[test]
    fn senders_cluster_on_racks() {
        let s = sampler(3000);
        let mut rng = StdRng::seed_from_u64(5);
        let c = s.sample_coflow_with_width(&mut rng, 200);
        let mut rack_counts = std::collections::HashMap::new();
        for &(src, _) in &c.endpoints {
            *rack_counts
                .entry(src.index() / HOSTS_PER_RACK)
                .or_insert(0usize) += 1;
        }
        let max_rack = rack_counts.values().copied().max().unwrap();
        assert!(
            max_rack as f64 > 0.4 * 200.0,
            "home rack should dominate, got {max_rack}"
        );
    }

    #[test]
    fn materialize_scales_to_total() {
        let s = sampler(50);
        let mut rng = StdRng::seed_from_u64(6);
        let c = s.sample_coflow_with_width(&mut rng, 10);
        let spec = c.materialize(1e8);
        assert!((spec.total_bytes() - 1e8).abs() / 1e8 < 1e-3);
        assert_eq!(spec.width(), 10);
    }

    #[test]
    fn coflow_bytes_span_trace_range() {
        let s = sampler(100);
        let mut rng = StdRng::seed_from_u64(7);
        let sizes: Vec<f64> = (0..2000).map(|_| s.sample_coflow_bytes(&mut rng)).collect();
        assert!(sizes.iter().all(|&b| (1e5..=1e11).contains(&b)));
        assert!(sizes.iter().any(|&b| b < 1e7));
        assert!(sizes.iter().any(|&b| b > 1e10));
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = sampler(100);
        let a = s.sample_coflow(&mut StdRng::seed_from_u64(11));
        let b = s.sample_coflow(&mut StdRng::seed_from_u64(11));
        assert_eq!(a.endpoints, b.endpoints);
        assert_eq!(a.weights, b.weights);
    }
}
