//! Workload substrate for the Gurita reproduction.
//!
//! The paper evaluates on the Facebook 150-rack (3 000-machine) coflow
//! trace, shaped into multi-stage DAGs with the TPC-DS query-42 and
//! Facebook TAO structures, in both steady (trace-replay) and bursty
//! arrival regimes. The production trace is not redistributable, so this
//! crate provides a *statistical synthesizer* calibrated to the trace's
//! published shape (see `DESIGN.md` §2 for the substitution argument):
//!
//! * [`facebook`] — heavy-tailed coflow widths and flow sizes with
//!   rack-aware endpoint placement;
//! * [`dags`] — DAG templates: [`dags::tpcds_query42`], [`dags::fb_tao`],
//!   and the production shape mix of Microsoft's Graphene study
//!   (~40% trees, average depth 5, up to >10 stages);
//! * [`arrivals`] — Poisson and bursty (2 µs intra-burst) arrival
//!   processes;
//! * [`generator`] — the [`generator::JobGenerator`] tying it together
//!   into reproducible [`JobSpec`](gurita_model::JobSpec) batches;
//! * [`trace`] — import/export of generated workloads (JSON, plus the
//!   community `FB2010`-style coflow benchmark text format);
//! * [`chaos`] — seeded synthesis of
//!   [`FaultSchedule`](gurita_sim::faults::FaultSchedule)s (random host
//!   brown-outs plus chosen link failures) for fault-injection runs.
//!
//! All sampling is driven by a caller-provided seed; identical
//! configurations produce identical workloads.
//!
//! # Example
//!
//! ```
//! use gurita_workload::generator::{JobGenerator, WorkloadConfig};
//! use gurita_workload::dags::StructureKind;
//!
//! let config = WorkloadConfig {
//!     num_jobs: 20,
//!     num_hosts: 128,
//!     structure: StructureKind::FbTao,
//!     ..WorkloadConfig::default()
//! };
//! let jobs = JobGenerator::new(config, 42).generate();
//! assert_eq!(jobs.len(), 20);
//! assert!(jobs.iter().all(|j| j.num_stages() >= 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod chaos;
pub mod dags;
pub mod dist;
pub mod facebook;
pub mod generator;
pub mod source;
pub mod trace;
