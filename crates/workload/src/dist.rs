//! Sampling primitives used by the workload generators.
//!
//! Only `rand`'s uniform sources are assumed; the heavy-tailed and
//! normal-family samplers are implemented here (inverse-CDF for Pareto
//! and exponential, Box–Muller for lognormal) to keep the dependency set
//! minimal.

use rand::Rng;

/// Samples a bounded Pareto variate in `[lo, hi]` with tail index
/// `alpha` — the canonical heavy-tailed model for flow and coflow sizes.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `alpha > 0`.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, alpha: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(alpha > 0.0, "alpha must be positive");
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF of the bounded Pareto distribution.
    let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
    x.clamp(lo, hi)
}

/// Samples an exponential variate with the given `mean`.
///
/// # Panics
///
/// Panics unless `mean > 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples a lognormal variate with the given log-space mean `mu` and
/// log-space standard deviation `sigma` (Box–Muller).
///
/// # Panics
///
/// Panics unless `sigma >= 0`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Samples log-uniformly in `[lo, hi]`: each decade is equally likely,
/// which is how the seven Table 1 categories (6 MB → >1 TB) stay
/// populated without the tail dominating.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi`.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
    if lo == hi {
        return lo;
    }
    let x: f64 = rng.gen_range(lo.ln()..=hi.ln());
    x.exp()
}

/// A discrete distribution over `0..weights.len()` with the given
/// (unnormalized) weights.
#[derive(Debug, Clone)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Builds the distribution from unnormalized weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "at least one weight required");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Self { cumulative }
    }

    /// Samples an index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no outcomes (never true: `new`
    /// rejects empty weight lists).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Splits `total` into `parts` positive shares whose relative sizes are
/// drawn from a symmetric Dirichlet-like jitter around equality:
/// each share is proportional to `1 + jitter * u_i` with `u_i` uniform in
/// `[0, 1)`. `jitter = 0` gives exact equality.
///
/// # Panics
///
/// Panics unless `parts >= 1`, `total > 0`, and `jitter >= 0`.
pub fn jittered_split<R: Rng + ?Sized>(
    rng: &mut R,
    total: f64,
    parts: usize,
    jitter: f64,
) -> Vec<f64> {
    assert!(parts >= 1, "at least one part");
    assert!(total > 0.0, "total must be positive");
    assert!(jitter >= 0.0, "jitter must be non-negative");
    let raw: Vec<f64> = (0..parts)
        .map(|_| 1.0 + jitter * rng.gen_range(0.0..1.0))
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|r| total * r / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn bounded_pareto_stays_in_range_and_skews_low() {
        let mut r = rng();
        let samples: Vec<f64> = (0..5000)
            .map(|_| bounded_pareto(&mut r, 1.0, 1000.0, 1.2))
            .collect();
        assert!(samples.iter().all(|&x| (1.0..=1000.0).contains(&x)));
        let below_10 = samples.iter().filter(|&&x| x < 10.0).count();
        assert!(
            below_10 > samples.len() / 2,
            "heavy tail should put most mass near the floor, got {below_10}"
        );
        assert!(samples.iter().any(|&x| x > 100.0), "tail must be reachable");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn lognormal_is_positive_and_spans_decades() {
        let mut r = rng();
        let samples: Vec<f64> = (0..5000).map(|_| lognormal(&mut r, 0.0, 2.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0, f64::max);
        assert!(max / min > 100.0, "sigma=2 should span decades");
    }

    #[test]
    fn log_uniform_covers_decades_evenly() {
        let mut r = rng();
        let n = 30_000;
        let mut per_decade = [0usize; 3];
        for _ in 0..n {
            let x = log_uniform(&mut r, 1.0, 1000.0);
            per_decade[(x.log10().floor() as usize).min(2)] += 1;
        }
        for &c in &per_decade {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.05, "decade fraction {frac}");
        }
    }

    #[test]
    fn log_uniform_degenerate_range() {
        let mut r = rng();
        assert_eq!(log_uniform(&mut r, 5.0, 5.0), 5.0);
    }

    #[test]
    fn discrete_matches_weights() {
        let mut r = rng();
        let d = Discrete::new(&[1.0, 0.0, 3.0]);
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "got {frac0}");
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn discrete_rejects_all_zero() {
        let _ = Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    fn jittered_split_conserves_total() {
        let mut r = rng();
        for jitter in [0.0, 0.5, 4.0] {
            let parts = jittered_split(&mut r, 100.0, 7, jitter);
            assert_eq!(parts.len(), 7);
            assert!((parts.iter().sum::<f64>() - 100.0).abs() < 1e-9);
            assert!(parts.iter().all(|&p| p > 0.0));
        }
        let equal = jittered_split(&mut r, 10.0, 4, 0.0);
        for p in equal {
            assert!((p - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..10)
                .map(|_| bounded_pareto(&mut r, 1.0, 100.0, 1.1))
                .collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..10)
                .map(|_| bounded_pareto(&mut r, 1.0, 100.0, 1.1))
                .collect()
        };
        assert_eq!(a, b);
    }
}
