//! Job arrival processes.
//!
//! Two regimes from the paper's evaluation:
//!
//! * steady trace replay — Poisson arrivals at a configurable mean
//!   inter-arrival gap;
//! * bursty — "jobs arrive within 2 microseconds intervals" in batches,
//!   with long idle gaps between batches (the Benson et al. IMC'10
//!   on/off pattern the paper cites).

use crate::dist::exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An arrival process generating monotone non-decreasing timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals with the given mean inter-arrival gap (seconds).
    Poisson {
        /// Mean gap between consecutive arrivals.
        mean_gap: f64,
    },
    /// Batches of `burst_size` jobs separated by `intra_gap` seconds
    /// within a burst (the paper uses 2 µs) and exponential gaps of mean
    /// `inter_gap` between bursts.
    Bursty {
        /// Jobs per burst.
        burst_size: usize,
        /// Gap between jobs inside a burst.
        intra_gap: f64,
        /// Mean gap between bursts.
        inter_gap: f64,
    },
    /// All jobs arrive at time zero (offline / batch analysis).
    Simultaneous,
}

impl ArrivalProcess {
    /// Generates `n` arrival timestamps starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics if gap parameters are not positive (where required) or
    /// `burst_size == 0`.
    pub fn timestamps<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                assert!(mean_gap > 0.0, "mean gap must be positive");
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        t += exponential(rng, mean_gap);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                burst_size,
                intra_gap,
                inter_gap,
            } => {
                assert!(burst_size > 0, "burst size must be at least 1");
                assert!(intra_gap >= 0.0, "intra gap must be non-negative");
                assert!(inter_gap > 0.0, "inter gap must be positive");
                let mut out = Vec::with_capacity(n);
                let mut t = 0.0;
                while out.len() < n {
                    for i in 0..burst_size {
                        if out.len() >= n {
                            break;
                        }
                        out.push(t + i as f64 * intra_gap);
                    }
                    t += burst_size as f64 * intra_gap + exponential(rng, inter_gap);
                }
                out
            }
            ArrivalProcess::Simultaneous => vec![0.0; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::units::MICROS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_is_monotone_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let ts = ArrivalProcess::Poisson { mean_gap: 0.5 }.timestamps(&mut rng, 10_000);
        assert!(ts.windows(2).all(|w| w[1] >= w[0]));
        let mean_gap = ts.last().unwrap() / ts.len() as f64;
        assert!((mean_gap - 0.5).abs() < 0.05, "gap {mean_gap}");
    }

    #[test]
    fn bursty_packs_jobs_tightly() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess::Bursty {
            burst_size: 10,
            intra_gap: 2.0 * MICROS,
            inter_gap: 1.0,
        };
        let ts = p.timestamps(&mut rng, 100);
        assert_eq!(ts.len(), 100);
        assert!(ts.windows(2).all(|w| w[1] >= w[0]));
        // Within a burst, gaps are exactly 2 µs.
        for b in 0..10 {
            for i in 1..10 {
                let gap = ts[b * 10 + i] - ts[b * 10 + i - 1];
                assert!((gap - 2.0 * MICROS).abs() < 1e-12, "gap {gap}");
            }
        }
        // Between bursts, gaps are macroscopic.
        let inter = ts[10] - ts[9];
        assert!(inter > 1e-3, "inter-burst gap {inter}");
    }

    #[test]
    fn simultaneous_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let ts = ArrivalProcess::Simultaneous.timestamps(&mut rng, 5);
        assert_eq!(ts, vec![0.0; 5]);
    }

    #[test]
    fn partial_burst_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = ArrivalProcess::Bursty {
            burst_size: 7,
            intra_gap: 1e-6,
            inter_gap: 0.5,
        };
        assert_eq!(p.timestamps(&mut rng, 10).len(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_zero_gap() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ArrivalProcess::Poisson { mean_gap: 0.0 }.timestamps(&mut rng, 1);
    }
}
