//! Workload generation CLI: synthesizes a seeded workload and writes it
//! as JSON (lossless) or in the FB coflow-benchmark text format.
//!
//! ```sh
//! cargo run --release -p gurita-workload --bin tracegen -- \
//!     --jobs 200 --hosts 128 --seed 7 --structure tpcds \
//!     --format json --out trace.json
//! ```

use gurita_workload::arrivals::ArrivalProcess;
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use gurita_workload::trace;

struct Options {
    jobs: usize,
    hosts: usize,
    seed: u64,
    structure: StructureKind,
    bursty: bool,
    format: Format,
    out: Option<String>,
}

#[derive(PartialEq)]
enum Format {
    Json,
    FbText,
}

fn parse() -> Result<Options, String> {
    let mut opts = Options {
        jobs: 100,
        hosts: 128,
        seed: 42,
        structure: StructureKind::ProductionMix,
        bursty: false,
        format: Format::Json,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match arg.as_str() {
            "--jobs" => {
                opts.jobs = next("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs".to_string())?
            }
            "--hosts" => {
                opts.hosts = next("--hosts")?
                    .parse()
                    .map_err(|_| "bad --hosts".to_string())?
            }
            "--seed" => {
                opts.seed = next("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--structure" => {
                opts.structure = match next("--structure")?.as_str() {
                    "fbtao" => StructureKind::FbTao,
                    "tpcds" => StructureKind::TpcDs,
                    "mix" => StructureKind::ProductionMix,
                    "single" => StructureKind::SingleStage,
                    other => return Err(format!("unknown structure `{other}`")),
                }
            }
            "--bursty" => opts.bursty = true,
            "--format" => {
                opts.format = match next("--format")?.as_str() {
                    "json" => Format::Json,
                    "fbtext" => Format::FbText,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--out" => opts.out = Some(next("--out")?),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if opts.jobs == 0 || opts.hosts == 0 {
        return Err("--jobs and --hosts must be positive".into());
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: tracegen [--jobs N] [--hosts N] [--seed S] \
     [--structure fbtao|tpcds|mix|single] [--bursty] \
     [--format json|fbtext] [--out FILE]"
        .to_owned()
}

fn main() {
    let opts = match parse() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut config = WorkloadConfig {
        num_jobs: opts.jobs,
        num_hosts: opts.hosts,
        structure: opts.structure,
        ..WorkloadConfig::default()
    };
    if opts.bursty {
        config.arrivals = ArrivalProcess::Bursty {
            burst_size: 25,
            intra_gap: 2e-6,
            inter_gap: 4.0,
        };
    }
    let jobs = JobGenerator::new(config, opts.seed).generate();
    let payload = match opts.format {
        Format::Json => match trace::to_json(&jobs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serialization failed: {e}");
                std::process::exit(1);
            }
        },
        Format::FbText => trace::to_fb_text(&jobs),
    };
    match opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, payload) {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote {} jobs ({} coflows) to {path}",
                jobs.len(),
                jobs.iter().map(|j| j.coflows().len()).sum::<usize>()
            );
        }
        None => println!("{payload}"),
    }
}
