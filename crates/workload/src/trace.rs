//! Workload import/export.
//!
//! Two formats:
//!
//! * **JSON** — lossless round-trip of [`JobSpec`] batches (our native
//!   format for pinning a generated workload to disk so that every
//!   scheduler replays byte-identical input);
//! * **FB benchmark text** — the community coflow-benchmark format of the
//!   published Facebook trace (`FB2010-1Hr-150-0.txt`): a header line
//!   `<num_ports> <num_coflows>` followed by one line per coflow:
//!   `<id> <arrival_ms> <num_mappers> <m1 ...> <num_reducers>
//!   <r1:size_mb ...>`. Multi-stage jobs flatten to one record per
//!   coflow; import produces single-stage jobs (the format carries no
//!   dependencies — that is exactly why the paper grafts DAG templates
//!   onto it).

use gurita_model::{units, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl Error for ParseTraceError {}

/// Serializes jobs to JSON.
///
/// # Errors
///
/// Returns an error if serialization fails (it cannot for well-formed
/// jobs; the `Result` is forwarded from `serde_json`).
pub fn to_json(jobs: &[JobSpec]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(jobs)
}

/// Deserializes jobs from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns an error if the input is not a valid job array.
pub fn from_json(s: &str) -> Result<Vec<JobSpec>, serde_json::Error> {
    serde_json::from_str(s)
}

/// Exports jobs in the FB benchmark text format, one record per coflow
/// (the format is single-stage: DAG structure is not representable and
/// is dropped, as documented at module level).
pub fn to_fb_text(jobs: &[JobSpec]) -> String {
    let mut lines = Vec::new();
    let mut max_port = 0usize;
    let mut records = 0usize;
    for job in jobs {
        for (v, cf) in job.coflows().iter().enumerate() {
            if cf.flows().is_empty() {
                continue;
            }
            records += 1;
            let arrival_ms = (job.arrival() * 1e3).round() as u64;
            let mappers: Vec<usize> = {
                let mut m: Vec<usize> = cf.senders().iter().map(|h| h.index()).collect();
                m.sort_unstable();
                m
            };
            // Aggregate per-receiver byte totals, as the format requires.
            let mut reducers: BTreeMap<usize, f64> = BTreeMap::new();
            for f in cf.flows() {
                *reducers.entry(f.dst.index()).or_insert(0.0) += f.bytes;
            }
            for &p in mappers.iter().chain(reducers.keys()) {
                max_port = max_port.max(p + 1);
            }
            let mut line = format!(
                "{}-{} {} {}",
                job.id().index(),
                v,
                arrival_ms,
                mappers.len()
            );
            for m in &mappers {
                line.push_str(&format!(" {m}"));
            }
            line.push_str(&format!(" {}", reducers.len()));
            for (r, bytes) in &reducers {
                line.push_str(&format!(" {}:{:.3}", r, bytes / units::MB));
            }
            lines.push(line);
        }
    }
    let mut out = format!("{max_port} {records}\n");
    out.push_str(&lines.join("\n"));
    if !lines.is_empty() {
        out.push('\n');
    }
    out
}

/// Imports an FB benchmark text trace as single-stage jobs. Each record
/// becomes one job whose single coflow has one flow per
/// (first-mapper → reducer) pair sized by the reducer's byte count —
/// the standard reading of the format, where per-mapper splits are not
/// recorded.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input.
pub fn from_fb_text(s: &str) -> Result<Vec<JobSpec>, ParseTraceError> {
    let mut lines = s.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseTraceError {
        line: 1,
        reason: "empty trace".into(),
    })?;
    let mut head_it = header.split_whitespace();
    let _num_ports: usize = parse_field(&mut head_it, 1, "num_ports")?;
    let num_coflows: usize = parse_field(&mut head_it, 1, "num_coflows")?;
    let mut jobs = Vec::with_capacity(num_coflows);
    for (idx, (lineno0, line)) in lines.enumerate() {
        let lineno = lineno0 + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let _id = it.next().ok_or_else(|| ParseTraceError {
            line: lineno,
            reason: "missing coflow id".into(),
        })?;
        let arrival_ms: f64 = parse_field(&mut it, lineno, "arrival")?;
        let num_mappers: usize = parse_field(&mut it, lineno, "num_mappers")?;
        let mut mappers = Vec::with_capacity(num_mappers);
        for _ in 0..num_mappers {
            mappers.push(parse_field::<usize>(&mut it, lineno, "mapper")?);
        }
        if mappers.is_empty() {
            return Err(ParseTraceError {
                line: lineno,
                reason: "coflow has no mappers".into(),
            });
        }
        let num_reducers: usize = parse_field(&mut it, lineno, "num_reducers")?;
        let mut flows = Vec::with_capacity(num_reducers);
        for _ in 0..num_reducers {
            let tok = it.next().ok_or_else(|| ParseTraceError {
                line: lineno,
                reason: "missing reducer".into(),
            })?;
            let (port, mb) = tok.split_once(':').ok_or_else(|| ParseTraceError {
                line: lineno,
                reason: format!("reducer token `{tok}` is not port:MB"),
            })?;
            let port: usize = port.parse().map_err(|_| ParseTraceError {
                line: lineno,
                reason: format!("bad reducer port `{port}`"),
            })?;
            let mb: f64 = mb.parse().map_err(|_| ParseTraceError {
                line: lineno,
                reason: format!("bad reducer size `{mb}`"),
            })?;
            if mb <= 0.0 {
                continue;
            }
            flows.push(FlowSpec::new(
                HostId(mappers[0]),
                HostId(port),
                mb * units::MB,
            ));
        }
        if flows.is_empty() {
            continue;
        }
        let job = JobSpec::new(
            idx,
            arrival_ms * units::MILLIS,
            vec![CoflowSpec::new(flows)],
            JobDag::chain(1).expect("single vertex"),
        )
        .expect("one coflow, one vertex");
        jobs.push(job);
    }
    Ok(jobs)
}

fn parse_field<T: std::str::FromStr>(
    it: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, ParseTraceError> {
    let tok = it.next().ok_or_else(|| ParseTraceError {
        line,
        reason: format!("missing field `{what}`"),
    })?;
    tok.parse().map_err(|_| ParseTraceError {
        line,
        reason: format!("bad {what}: `{tok}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{JobGenerator, WorkloadConfig};

    fn sample_jobs() -> Vec<JobSpec> {
        JobGenerator::new(
            WorkloadConfig {
                num_jobs: 8,
                num_hosts: 64,
                ..WorkloadConfig::default()
            },
            3,
        )
        .generate()
    }

    #[test]
    fn json_round_trip_is_faithful() {
        // Structure round-trips exactly; float values round-trip to
        // within one ULP (the JSON float formatter may differ in the
        // last decimal digit).
        let jobs = sample_jobs();
        let json = to_json(&jobs).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(jobs.len(), back.len());
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
        for (a, b) in jobs.iter().zip(&back) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.dag(), b.dag());
            assert!(close(a.arrival(), b.arrival()));
            assert_eq!(a.coflows().len(), b.coflows().len());
            for (ca, cb) in a.coflows().iter().zip(b.coflows()) {
                assert_eq!(ca.width(), cb.width());
                for (fa, fb) in ca.flows().iter().zip(cb.flows()) {
                    assert_eq!(fa.src, fb.src);
                    assert_eq!(fa.dst, fb.dst);
                    assert!(close(fa.bytes, fb.bytes));
                }
            }
        }
    }

    #[test]
    fn fb_text_header_counts_records() {
        let jobs = sample_jobs();
        let text = to_fb_text(&jobs);
        let header = text.lines().next().unwrap();
        let mut it = header.split_whitespace();
        let ports: usize = it.next().unwrap().parse().unwrap();
        let records: usize = it.next().unwrap().parse().unwrap();
        assert!(ports <= 64);
        let expected: usize = jobs.iter().map(|j| j.coflows().len()).sum();
        assert_eq!(records, expected);
        assert_eq!(text.lines().count(), records + 1);
    }

    #[test]
    fn fb_text_round_trip_preserves_reducer_bytes() {
        let jobs = vec![JobSpec::new(
            0,
            1.5,
            vec![CoflowSpec::new(vec![
                FlowSpec::new(HostId(0), HostId(5), 10.0 * units::MB),
                FlowSpec::new(HostId(1), HostId(5), 2.0 * units::MB),
                FlowSpec::new(HostId(1), HostId(6), 4.0 * units::MB),
            ])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()];
        let text = to_fb_text(&jobs);
        let back = from_fb_text(&text).unwrap();
        assert_eq!(back.len(), 1);
        let cf = &back[0].coflows()[0];
        // Per-reducer aggregation: 12 MB to host 5, 4 MB to host 6.
        assert_eq!(cf.width(), 2);
        let total = cf.total_bytes();
        assert!((total - 16.0 * units::MB).abs() < 1e4, "total {total}");
        assert!((back[0].arrival() - 1.5).abs() < 1e-3);
    }

    #[test]
    fn malformed_traces_are_rejected_with_line_numbers() {
        assert_eq!(from_fb_text("").unwrap_err().line, 1);
        let bad_reducer = "10 1\n0 0 1 3 1 nonsense\n";
        let err = from_fb_text(bad_reducer).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let missing = "10 1\n0 0 2 3\n";
        assert_eq!(from_fb_text(missing).unwrap_err().line, 2);
    }

    #[test]
    fn zero_byte_reducers_are_skipped() {
        let text = "10 1\n0 0 1 0 2 1:0.0 2:5.0\n";
        let jobs = from_fb_text(text).unwrap();
        assert_eq!(jobs[0].coflows()[0].width(), 1);
    }
}
