//! Streaming job sources: iterator-of-arrivals feeding the online
//! engine.
//!
//! The offline harness materializes a whole workload up front
//! (`Vec<JobSpec>`) and hands it to `Simulation::run`. Service mode
//! inverts that: a [`JobSource`] yields jobs one at a time in arrival
//! order, and [`run_streamed`] pumps them into a steppable
//! [`Engine`] as the virtual clock reaches each arrival — at any moment
//! the engine holds at most one not-yet-arrived spec, so the paper's
//! 10k-job bursty trace no longer has to live in memory.
//!
//! Streaming is free of observable effects: [`run_streamed`] over
//! [`JobGenerator::stream`](crate::generator::JobGenerator::stream)
//! produces a [`RunResult`](gurita_sim::stats::RunResult) bit-for-bit
//! identical to the offline run of
//! [`JobGenerator::generate`](crate::generator::JobGenerator::generate)
//! (pinned by tests here and the cross-scheduler property suite).

use gurita_model::JobSpec;
use gurita_sim::runtime::{Engine, StepOutcome};
use gurita_sim::topology::Fabric;
use gurita_sim::SimError;

#[allow(unused_imports)] // doc links
use gurita_sim::runtime::SimConfig;

/// A stream of jobs in non-decreasing arrival order.
///
/// Implemented by every `Iterator<Item = JobSpec>` via the blanket
/// impl, so a materialized `Vec<JobSpec>` plugs in with `.into_iter()`
/// and the lazy
/// [`JobStream`](crate::generator::JobStream) plugs in directly. The
/// trait exists (rather than using `Iterator` bounds everywhere) so
/// daemon-side code can hold a `Box<dyn JobSource>` without naming the
/// concrete iterator type.
pub trait JobSource {
    /// The next job to admit, or `None` when the source is exhausted.
    /// Arrivals must be non-decreasing.
    fn next_job(&mut self) -> Option<JobSpec>;

    /// Bounds on the number of jobs remaining, `(lower, upper)`;
    /// `upper` is `None` when unknown (e.g. an unbounded live source).
    fn jobs_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

impl<I: Iterator<Item = JobSpec>> JobSource for I {
    fn next_job(&mut self) -> Option<JobSpec> {
        self.next()
    }

    fn jobs_hint(&self) -> (usize, Option<usize>) {
        self.size_hint()
    }
}

/// Pumps `source` through an online engine to completion: each job is
/// submitted, then the engine runs up to that job's arrival before the
/// next spec is pulled — the engine never holds more than one
/// not-yet-arrived spec, and specs of completed jobs are dropped by the
/// engine, so peak memory tracks the *active* job set rather than the
/// trace length.
///
/// The caller constructs the engine ([`Engine::online`]) and finalizes
/// it ([`Engine::finish`]) — so telemetry, fault schedules, and
/// mid-pump inspection all compose. The popped event sequence is
/// identical to seeding every job up front, hence bit-for-bit equal to
/// the offline `Simulation::run` of the materialized workload.
///
/// # Errors
///
/// Whatever the engine's stepping returns — see
/// [`Engine::submit_job`] and [`Engine::step`]. On error the engine is
/// left at the failure point (finishable for a partial result).
pub fn run_streamed<F: Fabric>(
    engine: &mut Engine<'_, F>,
    source: &mut dyn JobSource,
) -> Result<(), SimError> {
    while let Some(job) = source.next_job() {
        let arrival = job.arrival();
        engine.submit_job(job)?;
        engine.run_until(arrival)?;
    }
    match engine.run_to_drained()? {
        StepOutcome::Drained => Ok(()),
        // Unreachable in practice: with every source job submitted, the
        // queue only runs dry once all of them completed.
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::dags::StructureKind;
    use crate::generator::{JobGenerator, WorkloadConfig};
    use gurita_model::units::MB;
    use gurita_sim::control::Centralized;
    use gurita_sim::faults::FaultSchedule;
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::sched::FifoScheduler;
    use gurita_sim::topology::BigSwitch;

    fn config(n: usize) -> WorkloadConfig {
        WorkloadConfig {
            num_jobs: n,
            num_hosts: 32,
            structure: StructureKind::ProductionMix,
            arrivals: ArrivalProcess::Bursty {
                burst_size: 5,
                intra_gap: 2e-6,
                inter_gap: 0.5,
            },
            // Mice-heavy mix: the default weights include multi-TB
            // category-VII jobs, which would dominate the suite's
            // wall-clock for no extra coverage here.
            category_weights: [0.6, 0.3, 0.1, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn stream_yields_exactly_what_generate_materializes() {
        let eager = JobGenerator::new(config(30), 11).generate();
        let mut stream = JobGenerator::new(config(30), 11).stream();
        let mut lazy = Vec::new();
        // Pull through the trait object path the daemon would use.
        let source: &mut dyn JobSource = &mut stream;
        assert_eq!(source.jobs_hint(), (30, Some(30)));
        while let Some(j) = source.next_job() {
            lazy.push(j);
        }
        assert_eq!(eager.len(), lazy.len());
        for (a, b) in eager.iter().zip(&lazy) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.arrival(), b.arrival());
            assert_eq!(a.total_bytes(), b.total_bytes());
            assert_eq!(a.num_flows(), b.num_flows());
        }
    }

    #[test]
    fn streamed_run_is_bit_for_bit_offline() {
        let fabric = BigSwitch::new(32, 1250.0 * MB); // 10 Gbit/s NICs
        let sim_config = SimConfig::default();

        let jobs = JobGenerator::new(config(20), 7).generate();
        let mut sched = FifoScheduler::new(1);
        let offline = Simulation::new(fabric.clone(), sim_config.clone())
            .try_run(jobs, &mut sched)
            .unwrap();

        let mut sched = FifoScheduler::new(1);
        let mut plane = Centralized::new(&mut sched);
        let mut engine =
            Engine::online(&fabric, &sim_config, &mut plane, &FaultSchedule::new()).unwrap();
        let mut stream = JobGenerator::new(config(20), 7).stream();
        run_streamed(&mut engine, &mut stream).unwrap();
        let streamed = engine.finish();

        assert_eq!(offline, streamed, "streamed pump must be bit-for-bit");
    }

    #[test]
    fn vec_sources_plug_in_via_into_iter() {
        let jobs = JobGenerator::new(config(5), 3).generate();
        let mut source = jobs.clone().into_iter();
        let mut n = 0;
        while let Some(j) = JobSource::next_job(&mut source) {
            assert_eq!(j.id(), jobs[n].id());
            n += 1;
        }
        assert_eq!(n, 5);
    }
}
