//! End-to-end job generation.
//!
//! [`JobGenerator`] assembles a reproducible workload: each job draws a
//! Table 1 size category, a total byte volume log-uniform within the
//! category's range, a DAG template for the configured structure family,
//! and per-vertex coflows replicated from the Facebook-trace synthesizer
//! (endpoints + heavy-tailed intra-coflow flow sizes), exactly mirroring
//! the paper's generator where "each DAG structure is made up of coflows
//! that are exact replications of jobs taken from the original trace".

use crate::arrivals::ArrivalProcess;
use crate::dags::{sample_template, StructureKind};
use crate::dist::{log_uniform, Discrete};
use crate::facebook::{FacebookConfig, FacebookSampler};
use gurita_model::{units, JobSpec, SizeCategory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Number of hosts endpoints are placed on (the fabric size).
    pub num_hosts: usize,
    /// DAG structure family.
    pub structure: StructureKind,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Relative population of the seven Table 1 categories. The default
    /// mirrors the trace's small-job dominance while keeping every
    /// category populated.
    pub category_weights: [f64; 7],
    /// Facebook synthesizer knobs (its `num_hosts` is overridden by
    /// [`WorkloadConfig::num_hosts`]).
    pub facebook: FacebookConfig,
    /// Hard cap on any single coflow's width (protects tiny fabrics).
    pub max_coflow_width: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_jobs: 100,
            num_hosts: 128,
            structure: StructureKind::ProductionMix,
            arrivals: ArrivalProcess::Poisson { mean_gap: 0.05 },
            // Mirrors the production trace's strong small-job dominance
            // (the paper's Table 1 spans 6 MB to >1 TB, but the job
            // *population* is concentrated in categories I-II; the byte
            // volume is concentrated in the tail).
            category_weights: [0.50, 0.26, 0.13, 0.04, 0.045, 0.02, 0.005],
            facebook: FacebookConfig::default(),
            max_coflow_width: 200,
        }
    }
}

/// Byte range a category's jobs are drawn from (log-uniformly).
/// Category VII is open-ended in Table 1; we cap it at 3 TB.
fn category_range(cat: SizeCategory) -> (f64, f64) {
    let hi = cat.upper_bound();
    match cat {
        SizeCategory::I => (6.0 * units::MB, hi),
        SizeCategory::II => (81.0 * units::MB, hi),
        SizeCategory::III => (801.0 * units::MB, hi),
        SizeCategory::IV => (8.001 * units::GB, hi),
        SizeCategory::V => (10.001 * units::GB, hi),
        SizeCategory::VI => (100.001 * units::GB, hi),
        SizeCategory::VII => (1.0001 * units::TB, 3.0 * units::TB),
    }
}

/// Deterministic, seeded job generator.
///
/// # Example
///
/// ```
/// use gurita_workload::generator::{JobGenerator, WorkloadConfig};
/// let jobs_a = JobGenerator::new(WorkloadConfig::default(), 7).generate();
/// let jobs_b = JobGenerator::new(WorkloadConfig::default(), 7).generate();
/// assert_eq!(jobs_a.len(), jobs_b.len());
/// assert_eq!(jobs_a[0].total_bytes(), jobs_b[0].total_bytes());
/// ```
#[derive(Debug)]
pub struct JobGenerator {
    config: WorkloadConfig,
    rng: StdRng,
}

impl JobGenerator {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_hosts == 0` or `num_jobs == 0` is combined with a
    /// degenerate configuration elsewhere (validated lazily by the
    /// underlying samplers).
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        assert!(config.num_hosts > 0, "need at least one host");
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates the workload. Job ids are `0..num_jobs` in arrival
    /// order.
    ///
    /// Sugar for collecting [`JobGenerator::stream`]; prefer the stream
    /// when feeding an online engine — it materializes one
    /// [`JobSpec`] at a time instead of the whole batch.
    pub fn generate(self) -> Vec<JobSpec> {
        self.stream().collect()
    }

    /// Converts the generator into a lazy [`JobStream`] yielding jobs
    /// one at a time in arrival order.
    ///
    /// Only the arrival timestamps are precomputed (8 bytes per job —
    /// the arrival process draws them in one batch, which is what keeps
    /// the RNG stream, and therefore every sampled job, bit-identical
    /// to [`JobGenerator::generate`]). The heavy part of a workload —
    /// per-vertex coflows with hundreds of flow endpoints — is sampled
    /// on demand, so a 10k-job trace never has to live in memory.
    pub fn stream(mut self) -> JobStream {
        let sampler = FacebookSampler::new(FacebookConfig {
            num_hosts: self.config.num_hosts,
            ..self.config.facebook.clone()
        });
        let cats = Discrete::new(&self.config.category_weights);
        let arrivals = self
            .config
            .arrivals
            .timestamps(&mut self.rng, self.config.num_jobs);
        JobStream {
            config: self.config,
            rng: self.rng,
            sampler,
            cats,
            arrivals,
            next: 0,
        }
    }
}

/// A lazily-sampled workload: yields [`JobSpec`]s one at a time, in
/// arrival order, bit-identical to what [`JobGenerator::generate`]
/// would have materialized eagerly (same seed, same RNG draw order).
/// Created by [`JobGenerator::stream`].
#[derive(Debug)]
pub struct JobStream {
    config: WorkloadConfig,
    rng: StdRng,
    sampler: FacebookSampler,
    cats: Discrete,
    arrivals: Vec<f64>,
    next: usize,
}

impl Iterator for JobStream {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        let id = self.next;
        let arrival = *self.arrivals.get(id)?;
        self.next += 1;
        let cat = SizeCategory::ALL[self.cats.sample(&mut self.rng)];
        let (lo, hi) = category_range(cat);
        let total_bytes = log_uniform(&mut self.rng, lo, hi);
        let template = sample_template(&mut self.rng, self.config.structure);
        // Wider jobs for bigger volumes: base width grows gently with
        // size so elephant jobs fan out like the trace's wide coflows.
        let size_factor = (total_bytes / (100.0 * units::MB)).powf(0.22).max(1.0);
        let base_width = (self.sampler.sample_width(&mut self.rng) as f64 * size_factor)
            .round()
            .max(1.0) as usize;
        let mut specs = vec![None; template.dag.num_vertices()];
        for (v, spec) in specs.iter_mut().enumerate() {
            let width = ((base_width as f64 * template.width_scale[v]).round() as usize).clamp(
                1,
                self.config.max_coflow_width.min(self.config.num_hosts * 4),
            );
            let shape = self.sampler.sample_coflow_with_width(&mut self.rng, width);
            let bytes = (total_bytes * template.byte_fraction[v]).max(1.0);
            *spec = Some(shape.materialize(bytes));
        }
        let coflows: Vec<_> = specs.into_iter().map(|s| s.expect("filled")).collect();
        Some(
            JobSpec::new(id, arrival, coflows, template.dag)
                .expect("template DAG matches coflow count"),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.arrivals.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for JobStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::units::MB;
    use std::collections::HashSet;

    fn gen(structure: StructureKind, n: usize, seed: u64) -> Vec<JobSpec> {
        JobGenerator::new(
            WorkloadConfig {
                num_jobs: n,
                num_hosts: 128,
                structure,
                ..WorkloadConfig::default()
            },
            seed,
        )
        .generate()
    }

    #[test]
    fn generates_requested_count_with_sequential_ids() {
        let jobs = gen(StructureKind::ProductionMix, 50, 1);
        assert_eq!(jobs.len(), 50);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id().index(), i);
        }
    }

    #[test]
    fn arrivals_are_monotone() {
        let jobs = gen(StructureKind::FbTao, 100, 2);
        for w in jobs.windows(2) {
            assert!(w[1].arrival() >= w[0].arrival());
        }
    }

    #[test]
    fn category_mix_covers_spectrum() {
        let jobs = gen(StructureKind::ProductionMix, 400, 3);
        let cats: HashSet<SizeCategory> = jobs.iter().map(|j| j.category()).collect();
        assert!(cats.len() >= 6, "most categories populated, got {cats:?}");
        // Small jobs dominate like the trace.
        let small = jobs
            .iter()
            .filter(|j| j.category() <= SizeCategory::II)
            .count();
        assert!(small > jobs.len() / 2);
    }

    #[test]
    fn job_totals_respect_category_bounds() {
        let jobs = gen(StructureKind::TpcDs, 200, 4);
        for j in &jobs {
            // Totals must be within a few per-mille of the sampled
            // category range (materialization rounds tiny flows up to 1
            // byte, and fractions are exact otherwise).
            assert!(
                j.total_bytes() >= 5.9 * MB,
                "job too small: {}",
                j.total_bytes()
            );
        }
    }

    #[test]
    fn endpoints_fit_fabric() {
        let jobs = gen(StructureKind::FbTao, 60, 5);
        for j in &jobs {
            for c in j.coflows() {
                for f in c.flows() {
                    assert!(f.src.index() < 128);
                    assert!(f.dst.index() < 128);
                }
            }
        }
    }

    #[test]
    fn tpcds_jobs_have_query42_shape() {
        let jobs = gen(StructureKind::TpcDs, 10, 6);
        for j in &jobs {
            assert_eq!(j.num_stages(), 4);
            assert_eq!(j.coflows().len(), 6);
            // Early stages carry more bytes than the final stage.
            assert!(j.stage_bytes(0) > j.stage_bytes(3));
        }
    }

    #[test]
    fn deterministic_per_seed_and_divergent_across_seeds() {
        let a = gen(StructureKind::ProductionMix, 20, 7);
        let b = gen(StructureKind::ProductionMix, 20, 7);
        let c = gen(StructureKind::ProductionMix, 20, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_bytes(), y.total_bytes());
            assert_eq!(x.arrival(), y.arrival());
        }
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.total_bytes() != y.total_bytes()));
    }

    #[test]
    fn width_cap_is_enforced() {
        let jobs = JobGenerator::new(
            WorkloadConfig {
                num_jobs: 30,
                num_hosts: 16,
                max_coflow_width: 10,
                structure: StructureKind::FbTao,
                ..WorkloadConfig::default()
            },
            9,
        )
        .generate();
        for j in &jobs {
            for c in j.coflows() {
                assert!(c.width() <= 10);
            }
        }
    }

    #[test]
    fn single_stage_structure_is_flat() {
        let jobs = gen(StructureKind::SingleStage, 15, 10);
        for j in &jobs {
            assert_eq!(j.num_stages(), 1);
            assert_eq!(j.coflows().len(), 1);
        }
    }
}
