//! Release-mode smoke test for the 48-pod large-fabric fast path.
//!
//! Runs a small bursty FB-Tao workload on the full 27,648-host fat-tree
//! under Gurita and checks the run drains, the path arena was actually
//! exercised, and the calendar event queue matches the binary heap
//! bit-for-bit at this scale.
//!
//! `#[ignore]`d by default: the run takes a few seconds in release mode
//! and much longer under `cargo test`'s default debug profile. CI runs
//! it with `cargo test --release -- --ignored` in a time-boxed job.

use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::FatTree;
use gurita_workload::dags::StructureKind;

#[test]
#[ignore = "release-mode 48-pod smoke; run with --ignored"]
fn large_fabric_smoke() {
    let scenario = Scenario::bursty(StructureKind::FbTao, 8, 48, 7);
    let jobs = scenario.jobs();
    let expected_jobs = jobs.len();
    let run = |force_heap: bool, threads: usize| {
        let fabric = FatTree::new(scenario.pods).expect("valid pods");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: scenario.tick_interval,
                force_binary_heap_events: force_heap,
                threads,
                ..SimConfig::default()
            },
        );
        let mut sched = SchedulerKind::Gurita.build();
        sim.run(jobs.clone(), sched.as_mut())
    };
    let result = run(false, 1);
    assert_eq!(result.jobs.len(), expected_jobs, "all jobs must complete");
    assert!(result.makespan > 0.0);
    assert!(result.events > 0);
    assert!(
        result.path_arena_unique > 0,
        "routes must be interned through the arena"
    );
    assert!(result.path_arena_interns >= result.path_arena_unique as u64);
    assert!((0.0..=1.0).contains(&result.path_arena_hit_rate));
    assert!(
        result.path_arena_storage_bytes > 0,
        "interned routes must account for their backing storage"
    );
    let heap_result = run(true, 1);
    assert!(
        result == heap_result,
        "calendar queue must match the binary heap bit-for-bit at 48 pods"
    );
    let par_result = run(false, 0);
    assert!(
        result == par_result,
        "parallel component recomputation must match serial bit-for-bit at 48 pods"
    );
}
