//! Result rendering: fixed-width text tables (matching the paper's
//! figure semantics) and JSON for downstream plotting.

use crate::metrics::ImprovementRow;
use gurita_model::SizeCategory;
use serde::Serialize;

/// Renders an improvement table: one row per compared scheduler, one
/// column per Table 1 category plus the overall factor. Values are the
/// paper's improvement factors (>1 ⇒ Gurita faster); `-` marks empty
/// categories.
pub fn render_improvement_table(
    title: &str,
    rows: &[ImprovementRow],
    populations: &[usize; 7],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:<12} {:>8}", "scheduler", "overall"));
    for cat in SizeCategory::ALL {
        out.push_str(&format!(" {:>7}", cat.label()));
    }
    out.push('\n');
    out.push_str(&format!("{:<12} {:>8}", "(jobs)", ""));
    for &n in populations {
        out.push_str(&format!(" {n:>7}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<12} {:>8.2}", row.scheduler, row.overall));
        for cell in &row.per_category {
            match cell {
                Some(v) => out.push_str(&format!(" {v:>7.2}")),
                None => out.push_str(&format!(" {:>7}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a simple two-column key/value block.
pub fn render_kv(title: &str, pairs: &[(&str, String)]) -> String {
    let mut out = format!("# {title}\n");
    let width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in pairs {
        out.push_str(&format!("{k:<width$}  {v}\n"));
    }
    out
}

/// Serializes any result structure to pretty JSON.
///
/// # Panics
///
/// Panics if serialization fails (cannot happen for the harness' result
/// types, which contain only finite numbers and strings).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("result types serialize cleanly")
}

/// Writes a report file under `results/`, creating the directory.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_results_file(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let rows = vec![ImprovementRow {
            scheduler: "PFS".into(),
            overall: 2.0,
            per_category: [Some(8.5), Some(3.0), None, None, Some(1.2), None, None],
        }];
        let s = render_improvement_table("Figure 6a", &rows, &[10, 5, 0, 0, 2, 0, 0]);
        assert!(s.contains("Figure 6a"));
        assert!(s.contains("PFS"));
        assert!(s.contains("8.50"));
        assert!(s.contains('-'));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn kv_renders_aligned() {
        let s = render_kv(
            "Motivation",
            &[("fig2 tbs", "6.25".into()), ("x", "1".into())],
        );
        assert!(s.contains("fig2 tbs  6.25"));
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![ImprovementRow {
            scheduler: "Aalo".into(),
            overall: 1.05,
            per_category: [None; 7],
        }];
        let js = to_json(&rows);
        assert!(js.contains("Aalo"));
    }
}
