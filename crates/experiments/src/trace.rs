//! Telemetry capture driver behind `--trace-out` (see [`crate::args`]).
//!
//! Captures the paper's §V starvation argument as a pair of instrumented
//! runs on a byte-identical workload: Gurita under plain SPQ (low-priority
//! coflows starve behind elephants) versus full Gurita with WRR
//! mitigation. Each run streams lifecycle events to a JSON Lines file and
//! a Chrome `trace_event` file that <https://ui.perfetto.dev> loads
//! directly, so the starvation intervals are visible as slices on the
//! `starvation` track.

use crate::figures::FigureOptions;
use crate::roster::SchedulerKind;
use crate::scenario::Scenario;
use gurita_sim::stats::RunResult;
use gurita_sim::telemetry::{ChromeTraceSink, JsonlSink, TelemetrySink, TraceRecord};
use gurita_workload::dags::StructureKind;
use std::path::PathBuf;

/// Streams one run's records into both export formats. Concrete (not
/// [`gurita_sim::telemetry::MultiSink`]) so `finish` can surface each
/// file sink's held IO error after the run.
#[derive(Debug)]
struct FilePair {
    jsonl: JsonlSink,
    chrome: ChromeTraceSink,
}

impl TelemetrySink for FilePair {
    fn record(&mut self, rec: &TraceRecord) {
        self.jsonl.record(rec);
        self.chrome.record(rec);
    }
    fn flush(&mut self) {
        self.jsonl.flush();
        self.chrome.flush();
    }
}

/// One captured run: where its exports landed and its (telemetry-armed,
/// bit-for-bit unchanged) result.
#[derive(Debug)]
pub struct Capture {
    /// Scheduler label (file-name component).
    pub scheduler: String,
    /// JSON Lines event log.
    pub events_path: PathBuf,
    /// Chrome `trace_event` file (Perfetto-loadable).
    pub trace_path: PathBuf,
    /// Lifecycle + epoch records written to the JSONL file.
    pub records: u64,
    /// The run's result, including the starvation metrics.
    pub result: RunResult,
}

/// Runs `kind` over `scenario` with telemetry armed, writing
/// `{prefix}.{label}.events.jsonl` and `{prefix}.{label}.trace.json`.
///
/// # Errors
///
/// Any file-creation or write error from either export.
pub fn capture(scenario: &Scenario, kind: SchedulerKind, prefix: &str) -> std::io::Result<Capture> {
    let label = kind.label();
    let events_path = PathBuf::from(format!("{prefix}.{label}.events.jsonl"));
    let trace_path = PathBuf::from(format!("{prefix}.{label}.trace.json"));
    if let Some(dir) = events_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut sink = FilePair {
        jsonl: JsonlSink::create(&events_path)?,
        chrome: ChromeTraceSink::new(&trace_path),
    };
    let result = scenario.run_traced(kind, &mut sink);
    let records = sink.jsonl.records();
    sink.jsonl.finish()?;
    sink.chrome.finish()?;
    Ok(Capture {
        scheduler: label.to_owned(),
        events_path,
        trace_path,
        records,
        result,
    })
}

/// The default capture workload: a small trace-driven FB-Tao scenario —
/// large enough to exhibit SPQ starvation, small enough that the trace
/// files stay in the tens of megabytes.
pub fn capture_scenario(opts: &FigureOptions) -> Scenario {
    // Cap the workload so `--full` sweeps don't produce gigabyte traces.
    let jobs = opts.jobs.min(200);
    Scenario::trace_driven(StructureKind::FbTao, jobs, opts.seed)
}

/// Captures the SPQ-vs-WRR starvation pair ([`SchedulerKind::GuritaSpq`]
/// and [`SchedulerKind::Gurita`]) on the byte-identical workload.
///
/// # Errors
///
/// Any export IO error (see [`capture`]).
pub fn capture_starvation_pair(
    opts: &FigureOptions,
    prefix: &str,
) -> std::io::Result<Vec<Capture>> {
    let scenario = capture_scenario(opts);
    let mut out = Vec::with_capacity(2);
    for kind in [SchedulerKind::GuritaSpq, SchedulerKind::Gurita] {
        out.push(capture(&scenario, kind, prefix)?);
    }
    Ok(out)
}

/// Binary epilogue: if `--trace-out` was given, capture the starvation
/// pair and print where the exports landed (plus each run's starvation
/// totals, which is the headline the trace visualizes). IO errors are
/// reported to stderr, not propagated — a failed trace capture must not
/// fail the experiment that rode along with it.
pub fn maybe_capture(opts: &FigureOptions) {
    let Some(prefix) = opts.trace_out.as_deref() else {
        return;
    };
    match capture_starvation_pair(opts, prefix) {
        Ok(captures) => {
            for c in &captures {
                println!(
                    "trace[{}]: {} records -> {} + {} (starvation: total {:.3}s, max {:.3}s)",
                    c.scheduler,
                    c.records,
                    c.events_path.display(),
                    c.trace_path.display(),
                    c.result.total_starvation(),
                    c.result.max_starvation(),
                );
            }
        }
        Err(e) => eprintln!("trace capture failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigureOptions {
        FigureOptions {
            jobs: 4,
            seed: 11,
            ..FigureOptions::default()
        }
    }

    #[test]
    fn capture_writes_both_exports_and_preserves_results() {
        let dir = std::env::temp_dir().join("gurita_trace_capture_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("t").to_string_lossy().into_owned();
        let captures = capture_starvation_pair(&tiny(), &prefix).unwrap();
        assert_eq!(captures.len(), 2);
        assert_eq!(captures[0].scheduler, "Gurita-SPQ");
        assert_eq!(captures[1].scheduler, "Gurita");
        for c in &captures {
            assert!(c.records > 0, "{}: empty trace", c.scheduler);
            let jsonl = std::fs::read_to_string(&c.events_path).unwrap();
            assert_eq!(jsonl.lines().count() as u64, c.records);
            let trace = std::fs::read_to_string(&c.trace_path).unwrap();
            assert!(trace.starts_with("{\"traceEvents\":["));
            // The traced result matches an untraced replay bit-for-bit.
            let kind = if c.scheduler == "Gurita" {
                SchedulerKind::Gurita
            } else {
                SchedulerKind::GuritaSpq
            };
            let untraced = capture_scenario(&tiny()).run(kind);
            assert_eq!(c.result, untraced, "{}: traced run diverged", c.scheduler);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
