//! One driver per paper artifact (Figures 5–8, plus ablations).
//!
//! Every driver replays a deterministic workload under the relevant
//! scheduler set and reduces the results to the paper's improvement
//! factors. Scale knobs default to sizes that complete in minutes on a
//! laptop core; `full_scale` selects the paper's parameters (48-pod
//! fat-tree, 10 000 jobs for Figure 7) — expect hours.

use crate::metrics::{category_populations, improvement_table, ImprovementRow};
use crate::roster::SchedulerKind;
use crate::scenario::Scenario;
use gurita_sim::stats::RunResult;
use gurita_workload::dags::StructureKind;
use serde::{Deserialize, Serialize};

/// Common experiment knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureOptions {
    /// Number of jobs per scenario.
    pub jobs: usize,
    /// Workload seed.
    pub seed: u64,
    /// Use the paper's full scale where applicable (Figure 7: 48 pods /
    /// 10 000 jobs).
    pub full_scale: bool,
    /// Worker threads for independent scenarios (`0` = one per core).
    /// Scenarios are deterministic and written into ordered slots, so
    /// this only affects wall-clock time, never the results.
    #[serde(default)]
    pub par: usize,
    /// Intra-run engine worker threads (`--threads N`; `0` = one per
    /// core). Fans each recompute epoch's disjoint components across a
    /// pool inside a single simulation — bit-for-bit identical results
    /// at every setting (see `gurita_sim::runtime::SimConfig::threads`).
    /// Deserialization of configs written before this knob defaults to
    /// serial.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Arm the telemetry layer during runs (`--telemetry`). Results are
    /// bit-for-bit unaffected; implied by `trace_out`.
    #[serde(default)]
    pub telemetry: bool,
    /// Capture an instrumented SPQ-vs-WRR trace pair to
    /// `{prefix}.{scheduler}.events.jsonl` /
    /// `{prefix}.{scheduler}.trace.json` (`--trace-out PREFIX`); see
    /// [`crate::trace::capture_starvation_pair`].
    #[serde(default)]
    pub trace_out: Option<String>,
    /// Also run the control-plane chaos sweep (`--control-faults`):
    /// lossy coordination channels, agent crashes, and coordinator
    /// partitions at escalating severities (see
    /// [`crate::sweeps::control_chaos_sweep`]).
    #[serde(default)]
    pub control_faults: bool,
}

impl Default for FigureOptions {
    fn default() -> Self {
        Self {
            jobs: 80,
            seed: 42,
            full_scale: false,
            par: 1,
            telemetry: false,
            trace_out: None,
            control_faults: false,
            threads: 1,
        }
    }
}

/// Serde default for [`FigureOptions::threads`]: serial, matching both
/// [`FigureOptions::default`] and `SimConfig::default`.
fn default_threads() -> usize {
    1
}

/// One scenario's comparison: improvement rows against Gurita plus the
/// per-category job populations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioComparison {
    /// Scenario label (e.g. `FB-t`, `CD-b`).
    pub name: String,
    /// Gurita's average JCT in seconds (the reference).
    pub gurita_avg_jct: f64,
    /// Improvement rows for each compared scheduler.
    pub rows: Vec<ImprovementRow>,
    /// Jobs per Table 1 category.
    pub populations: [usize; 7],
}

fn compare(name: &str, scenario: &Scenario, kinds: &[SchedulerKind]) -> ScenarioComparison {
    let results = scenario.run_all(kinds);
    let (reference, compared) = results.split_first().expect("at least the reference runs");
    ScenarioComparison {
        name: name.to_owned(),
        gurita_avg_jct: reference.avg_jct(),
        rows: improvement_table(reference, compared),
        populations: category_populations(reference),
    }
}

/// Runs independent scenario comparisons across up to `opts.par` worker
/// threads (see [`crate::par::par_run`]); results come back in input
/// order, so output is independent of the parallelism level. Each
/// scenario additionally inherits `opts.threads` for the engine's
/// intra-run pool — the two levels compose (e.g. `--par 2 --threads 2`
/// on a 4-core host).
fn compare_many(
    opts: &FigureOptions,
    mut cells: Vec<(&str, Scenario)>,
    kinds: &[SchedulerKind],
) -> Vec<ScenarioComparison> {
    for (_, scenario) in &mut cells {
        scenario.threads = opts.threads;
    }
    crate::par::par_run(opts.par, cells.len(), |i| {
        let (name, scenario) = &cells[i];
        compare(name, scenario, kinds)
    })
}

/// Figure 5: average improvement of Gurita over {Baraat, PFS, Stream,
/// Aalo} in four scenarios — trace-driven and bursty, each with the
/// FB-Tao and TPC-DS (Cloudera) structures.
pub fn fig5(opts: &FigureOptions) -> Vec<ScenarioComparison> {
    compare_many(
        opts,
        vec![
            (
                "FB-t",
                Scenario::trace_driven(StructureKind::FbTao, opts.jobs, opts.seed),
            ),
            (
                "CD-t",
                Scenario::trace_driven(StructureKind::TpcDs, opts.jobs, opts.seed + 1),
            ),
            (
                "FB-b",
                Scenario::bursty(StructureKind::FbTao, opts.jobs, 8, opts.seed + 2),
            ),
            (
                "CD-b",
                Scenario::bursty(StructureKind::TpcDs, opts.jobs, 8, opts.seed + 3),
            ),
        ],
        &SchedulerKind::PAPER_SET,
    )
}

/// Figure 6: per-category improvement, trace-driven 8-pod fabric —
/// (a) FB-Tao, (b) TPC-DS.
pub fn fig6(opts: &FigureOptions) -> Vec<ScenarioComparison> {
    compare_many(
        opts,
        vec![
            (
                "fig6a/FB-Tao",
                Scenario::trace_driven(StructureKind::FbTao, opts.jobs, opts.seed),
            ),
            (
                "fig6b/TPC-DS",
                Scenario::trace_driven(StructureKind::TpcDs, opts.jobs, opts.seed + 1),
            ),
        ],
        &SchedulerKind::PAPER_SET,
    )
}

/// Figure 7: per-category improvement under bursty arrivals in a
/// large-scale fat-tree. Paper scale (48 pods, 10 000 jobs) behind
/// `full_scale`; the default uses 12 pods and `4 × jobs` to produce the
/// same congestion regime at laptop cost.
pub fn fig7(opts: &FigureOptions) -> Vec<ScenarioComparison> {
    let (pods, jobs) = if opts.full_scale {
        (48, 10_000)
    } else {
        (12, opts.jobs * 4)
    };
    compare_many(
        opts,
        vec![
            (
                "fig7a/FB-Tao",
                Scenario::bursty(StructureKind::FbTao, jobs, pods, opts.seed),
            ),
            (
                "fig7b/TPC-DS",
                Scenario::bursty(StructureKind::TpcDs, jobs, pods, opts.seed + 1),
            ),
        ],
        &SchedulerKind::PAPER_SET,
    )
}

/// Figure 8: Gurita vs the idealized GuritaPlus, per category, on the
/// 8-pod trace scenarios. Rows report
/// `avg JCT(GuritaPlus) / avg JCT(Gurita)` — at or slightly below 1
/// when the oracle is (marginally) faster.
pub fn fig8(opts: &FigureOptions) -> Vec<ScenarioComparison> {
    compare_many(
        opts,
        vec![
            (
                "fig8a/FB-Tao",
                Scenario::trace_driven(StructureKind::FbTao, opts.jobs, opts.seed),
            ),
            (
                "fig8b/TPC-DS",
                Scenario::trace_driven(StructureKind::TpcDs, opts.jobs, opts.seed + 1),
            ),
        ],
        &[SchedulerKind::Gurita, SchedulerKind::GuritaPlus],
    )
}

/// Ablation study (DESIGN.md E8): full Gurita against variants with one
/// design element disabled, plus the clairvoyant Varys-SEBF reference.
pub fn ablation(opts: &FigureOptions) -> ScenarioComparison {
    let kinds = [
        SchedulerKind::Gurita,
        SchedulerKind::GuritaSpq,
        SchedulerKind::GuritaNoOmega,
        SchedulerKind::GuritaNoKappa,
        SchedulerKind::GuritaNoCriticalPath,
        SchedulerKind::VarysSebf,
    ];
    let mut scenario = Scenario::trace_driven(StructureKind::ProductionMix, opts.jobs, opts.seed);
    scenario.threads = opts.threads;
    compare("ablation/ProductionMix", &scenario, &kinds)
}

/// Raw per-scheduler results for a scenario (used by benches and the
/// scheduler-shootout example).
pub fn raw_runs(
    structure: StructureKind,
    opts: &FigureOptions,
    kinds: &[SchedulerKind],
) -> Vec<RunResult> {
    let mut scenario = Scenario::trace_driven(structure, opts.jobs, opts.seed);
    scenario.threads = opts.threads;
    scenario.run_all(kinds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigureOptions {
        FigureOptions {
            jobs: 6,
            seed: 7,
            ..FigureOptions::default()
        }
    }

    #[test]
    fn fig5_produces_four_scenarios() {
        let r = fig5(&tiny());
        assert_eq!(r.len(), 4);
        for sc in &r {
            assert_eq!(sc.rows.len(), 4, "{}", sc.name);
            assert!(sc.gurita_avg_jct > 0.0);
            assert_eq!(sc.populations.iter().sum::<usize>(), 6);
        }
        assert_eq!(r[0].name, "FB-t");
        assert_eq!(r[3].name, "CD-b");
    }

    #[test]
    fn fig8_compares_against_the_oracle() {
        let r = fig8(&tiny());
        assert_eq!(r.len(), 2);
        for sc in &r {
            assert_eq!(sc.rows.len(), 1);
            assert_eq!(sc.rows[0].scheduler, "GuritaPlus");
            assert!(sc.rows[0].overall > 0.0);
        }
    }

    #[test]
    fn ablation_covers_all_variants() {
        let r = ablation(&tiny());
        assert_eq!(r.rows.len(), 5);
        let names: Vec<&str> = r.rows.iter().map(|x| x.scheduler.as_str()).collect();
        assert!(names.contains(&"Gurita-SPQ"));
        assert!(names.contains(&"Varys-SEBF"));
    }
}
