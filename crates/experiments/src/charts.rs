//! ASCII bar charts for console reports.
//!
//! The paper's figures are grouped bar charts of improvement factors;
//! the figure binaries render a textual equivalent so the shape is
//! visible without plotting tools (the JSON output feeds real plots).

use crate::metrics::ImprovementRow;
use gurita_model::SizeCategory;

const BAR_WIDTH: usize = 40;

/// Renders one horizontal bar: `label |█████▌    | value`.
fn bar(label: &str, value: f64, scale_max: f64, out: &mut String) {
    let frac = (value / scale_max).clamp(0.0, 1.0);
    let cells = (frac * BAR_WIDTH as f64).round() as usize;
    out.push_str(&format!(
        "{label:<14} |{}{}| {value:>6.2}\n",
        "#".repeat(cells),
        " ".repeat(BAR_WIDTH - cells),
    ));
}

/// Renders the overall improvement factors of one scenario as a bar
/// chart (the Figure 5 visual). A `1.0` reference line value is always
/// included in the scale so parity is visible.
pub fn overall_chart(title: &str, rows: &[ImprovementRow]) -> String {
    let mut out = format!("## {title}\n");
    let max = rows
        .iter()
        .map(|r| r.overall)
        .fold(1.0f64, f64::max)
        .max(1e-9);
    for row in rows {
        bar(&row.scheduler, row.overall, max, &mut out);
    }
    out.push_str(&format!(
        "{:<14} (bar scale: 0 .. {max:.2}; 1.0 = parity with Gurita)\n",
        ""
    ));
    out
}

/// Renders one scheduler's per-category improvements as a bar chart
/// (the Figure 6/7 visual); empty categories are skipped.
pub fn category_chart(title: &str, row: &ImprovementRow) -> String {
    let mut out = format!("## {title} — vs {}\n", row.scheduler);
    let max = row
        .per_category
        .iter()
        .flatten()
        .fold(1.0f64, |m, &v| m.max(v))
        .max(1e-9);
    for cat in SizeCategory::ALL {
        if let Some(v) = row.per_category[cat.index()] {
            bar(cat.label(), v, max, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, overall: f64) -> ImprovementRow {
        ImprovementRow {
            scheduler: name.into(),
            overall,
            per_category: [Some(2.0), Some(1.0), None, None, None, None, Some(0.5)],
        }
    }

    #[test]
    fn overall_chart_scales_to_max() {
        let chart = overall_chart("Figure 5 FB-t", &[row("PFS", 2.0), row("Aalo", 1.0)]);
        assert!(chart.contains("Figure 5 FB-t"));
        assert!(chart.contains("PFS"));
        // The max row is a full-width bar.
        let full = "#".repeat(BAR_WIDTH);
        assert!(chart.contains(&full), "{chart}");
        assert!(chart.contains("parity"));
    }

    #[test]
    fn category_chart_skips_empty_bins() {
        let chart = category_chart("Figure 6a", &row("Stream", 1.5));
        assert!(chart.contains("I "));
        assert!(chart.contains("VII"));
        assert!(!chart.contains("III"), "empty category rendered: {chart}");
    }

    #[test]
    fn bars_are_fixed_width() {
        let mut s = String::new();
        bar("x", 0.5, 1.0, &mut s);
        let inside = s.split('|').nth(1).unwrap();
        assert_eq!(inside.len(), BAR_WIDTH);
    }
}
