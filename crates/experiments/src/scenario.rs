//! Scenario plumbing: fabric + workload + scheduler replay.
//!
//! A [`Scenario`] pins a fat-tree size, a workload configuration, and a
//! seed; [`Scenario::run_all`] replays the *byte-identical* workload
//! under every requested scheduler so that differences in the results
//! are attributable to scheduling alone.

use crate::roster::SchedulerKind;
use gurita_model::JobSpec;
use gurita_sim::faults::{ControlFaults, FaultSchedule};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::stats::RunResult;
use gurita_sim::telemetry::{TelemetryConfig, TelemetrySink};
use gurita_sim::topology::FatTree;
use gurita_workload::arrivals::ArrivalProcess;
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use parking_lot::Mutex;

/// One evaluation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Fat-tree pod count (8 for the trace scenarios, 48 for the paper's
    /// large-scale bursty run).
    pub pods: usize,
    /// Workload parameters (structure, arrivals, category mix…).
    pub workload: WorkloadConfig,
    /// Workload seed.
    pub seed: u64,
    /// Scheduler update interval δ.
    pub tick_interval: f64,
    /// Decision-propagation latency for decentralized kinds (see
    /// [`SimConfig::control_latency`]). Ignored by centralized planes.
    pub control_latency: f64,
    /// Optional control-plane fault profile (lossy channels, agent
    /// crashes, coordinator partitions — see
    /// [`gurita_sim::faults::ControlFaults`]). `None` runs the fault-free
    /// control plane.
    pub control_faults: Option<ControlFaults>,
    /// Intra-run worker threads for the engine's rate recomputation
    /// (see [`SimConfig::threads`]): `1` = serial (the default), `0` =
    /// one per available core. Results are bit-for-bit identical at
    /// every setting.
    pub threads: usize,
}

impl Scenario {
    /// A trace-driven scenario on the 8-pod fabric (Figures 5–6): steady
    /// Poisson arrivals of `num_jobs` jobs shaped by `structure`.
    pub fn trace_driven(structure: StructureKind, num_jobs: usize, seed: u64) -> Self {
        let pods = 8;
        let hosts = pods * pods * pods / 4;
        Self {
            name: format!("trace/{structure:?}"),
            pods,
            workload: WorkloadConfig {
                num_jobs,
                num_hosts: hosts,
                structure,
                arrivals: ArrivalProcess::Poisson { mean_gap: 0.02 },
                ..WorkloadConfig::default()
            },
            seed,
            tick_interval: 10e-3,
            control_latency: 0.0,
            control_faults: None,
            threads: 1,
        }
    }

    /// A bursty scenario (Figure 5's `-b` columns and Figure 7): jobs
    /// arrive in batches with 2 µs intra-burst gaps on a fabric of
    /// `pods` pods.
    pub fn bursty(structure: StructureKind, num_jobs: usize, pods: usize, seed: u64) -> Self {
        let hosts = pods * pods * pods / 4;
        Self {
            name: format!("burst/{structure:?}/k{pods}"),
            pods,
            workload: WorkloadConfig {
                num_jobs,
                num_hosts: hosts,
                structure,
                arrivals: ArrivalProcess::Bursty {
                    burst_size: 25,
                    intra_gap: 2e-6,
                    inter_gap: 4.0,
                },
                ..WorkloadConfig::default()
            },
            seed,
            tick_interval: 10e-3,
            control_latency: 0.0,
            control_faults: None,
            threads: 1,
        }
    }

    /// Generates the scenario's workload (deterministic per seed).
    pub fn jobs(&self) -> Vec<JobSpec> {
        JobGenerator::new(self.workload.clone(), self.seed).generate()
    }

    /// Runs one scheduler over the scenario's workload.
    ///
    /// # Panics
    ///
    /// Panics if the fabric cannot be built or the simulation fails (see
    /// [`Simulation::run`]).
    pub fn run(&self, kind: SchedulerKind) -> RunResult {
        let jobs = self.jobs();
        self.run_with_jobs(kind, jobs, &FaultSchedule::new())
    }

    /// Runs one scheduler over the scenario's workload while injecting
    /// `faults` at their scheduled times (see
    /// [`gurita_sim::faults`] for the fault model).
    ///
    /// # Panics
    ///
    /// Panics if the fabric cannot be built or the simulation fails —
    /// including on an invalid fault schedule (see
    /// [`Simulation::run_with_faults`]).
    pub fn run_with_faults(&self, kind: SchedulerKind, faults: &FaultSchedule) -> RunResult {
        let jobs = self.jobs();
        self.run_with_jobs(kind, jobs, faults)
    }

    fn run_with_jobs(
        &self,
        kind: SchedulerKind,
        jobs: Vec<JobSpec>,
        faults: &FaultSchedule,
    ) -> RunResult {
        let fabric = FatTree::new(self.pods).expect("valid pod count");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: self.tick_interval,
                control_latency: self.control_latency,
                control_faults: self.control_faults.clone(),
                threads: self.threads,
                ..SimConfig::default()
            },
        );
        let mut plane = kind.build_plane();
        let mut result = sim.run_control_with_faults(jobs, plane.as_mut(), faults);
        result.scheduler = kind.label().to_owned();
        result
    }

    /// Runs one scheduler with the telemetry layer armed, streaming
    /// every [`gurita_sim::telemetry::TraceRecord`] into `sink`. The
    /// returned [`RunResult`] is bit-for-bit what [`Scenario::run`]
    /// produces — telemetry never perturbs scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the fabric cannot be built or the simulation fails (see
    /// [`Simulation::run`]).
    pub fn run_traced(&self, kind: SchedulerKind, sink: &mut dyn TelemetrySink) -> RunResult {
        let fabric = FatTree::new(self.pods).expect("valid pod count");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: self.tick_interval,
                control_latency: self.control_latency,
                control_faults: self.control_faults.clone(),
                threads: self.threads,
                telemetry: Some(TelemetryConfig::default()),
                ..SimConfig::default()
            },
        );
        let mut plane = kind.build_plane();
        let mut result = sim
            .try_run_control_with_faults_traced(
                self.jobs(),
                plane.as_mut(),
                &FaultSchedule::new(),
                sink,
            )
            .expect("simulation failed; see SimError for details");
        result.scheduler = kind.label().to_owned();
        result
    }

    /// Replays the byte-identical workload under every scheduler,
    /// returning results in `kinds` order. Runs are spread across
    /// threads (scoped; results collected through a mutex) — on a
    /// single-core host this degrades gracefully to sequential
    /// execution.
    pub fn run_all(&self, kinds: &[SchedulerKind]) -> Vec<RunResult> {
        self.run_all_with_faults(kinds, &FaultSchedule::new())
    }

    /// [`Scenario::run_all`] with a fault schedule injected into every
    /// run, so scheduler comparisons under faults stay byte-identical
    /// on both the workload and the fault script.
    pub fn run_all_with_faults(
        &self,
        kinds: &[SchedulerKind],
        faults: &FaultSchedule,
    ) -> Vec<RunResult> {
        let jobs = self.jobs();
        let slots: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; kinds.len()]);
        crossbeam::scope(|scope| {
            for (i, &kind) in kinds.iter().enumerate() {
                let jobs = jobs.clone();
                let slots = &slots;
                scope.spawn(move |_| {
                    let result = self.run_with_jobs(kind, jobs, faults);
                    slots.lock()[i] = Some(result);
                });
            }
        })
        .expect("scenario worker panicked");
        slots
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every scheduler produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(structure: StructureKind) -> Scenario {
        let mut s = Scenario::trace_driven(structure, 12, 5);
        s.workload.category_weights = [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0];
        s
    }

    #[test]
    fn workload_is_deterministic() {
        let s = tiny(StructureKind::FbTao);
        let a = s.jobs();
        let b = s.jobs();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_bytes(), y.total_bytes());
        }
    }

    #[test]
    fn run_all_completes_every_job_for_every_scheduler() {
        let s = tiny(StructureKind::TpcDs);
        let results = s.run_all(&[SchedulerKind::Pfs, SchedulerKind::Gurita]);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(
                r.jobs.len(),
                12,
                "{} completed {}",
                r.scheduler,
                r.jobs.len()
            );
        }
        assert_eq!(results[0].scheduler, "PFS");
        assert_eq!(results[1].scheduler, "Gurita");
    }

    #[test]
    fn bursty_scenario_generates_bursts() {
        let s = Scenario::bursty(StructureKind::FbTao, 30, 4, 2);
        let jobs = s.jobs();
        // First burst: tightly packed arrivals.
        let gap = jobs[1].arrival() - jobs[0].arrival();
        assert!(gap <= 2.1e-6, "intra-burst gap {gap}");
    }
}
