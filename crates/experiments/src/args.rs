//! Minimal command-line parsing shared by the figure binaries.
//!
//! Supported flags: `--jobs N` (workload size), `--seed N`, `--full`
//! (paper scale), `--par N` (worker threads for independent
//! scenarios/sweep points; `0` = one per core, the default),
//! `--threads N` (intra-run engine worker threads per simulation; `0` =
//! one per core, default `1` = serial; results are bit-for-bit
//! identical at every setting),
//! `--telemetry` (arm the instrumentation layer; results are bit-for-bit
//! unaffected), and `--trace-out PREFIX` (capture an instrumented
//! SPQ-vs-WRR trace pair to `PREFIX.*.events.jsonl` /
//! `PREFIX.*.trace.json`; implies `--telemetry`), and `--control-faults`
//! (also run the control-plane chaos sweep — lossy coordination
//! channels, agent crashes, coordinator partitions). Unknown flags abort
//! with a usage message — the binaries are reproduction drivers, not
//! general tools.

use crate::figures::FigureOptions;

/// Parses figure options from raw arguments (excluding the program
/// name).
///
/// # Errors
///
/// Returns a usage string on malformed input.
pub fn parse(args: &[String]) -> Result<FigureOptions, String> {
    let mut opts = FigureOptions {
        // CLI runs default to one worker per core; library callers (and
        // tests) get the sequential `FigureOptions::default()`.
        par: 0,
        ..FigureOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--full" => opts.full_scale = true,
            "--par" => {
                let v = it.next().ok_or("--par requires a value")?;
                opts.par = v.parse().map_err(|_| format!("bad --par value `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a value")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value `{v}`"))?;
            }
            "--telemetry" => opts.telemetry = true,
            "--control-faults" => opts.control_faults = true,
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out requires a value")?;
                if v.is_empty() {
                    return Err("--trace-out requires a non-empty prefix".into());
                }
                opts.trace_out = Some(v.clone());
                opts.telemetry = true;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

/// The usage string.
pub fn usage() -> String {
    "usage: <figure> [--jobs N] [--seed N] [--full] [--par N] [--threads N] \
     [--telemetry] [--trace-out PREFIX] [--control-faults]"
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.jobs, 80);
        assert_eq!(o.par, 0, "CLI default is auto parallelism");
        let o = parse(&v(&["--jobs", "5", "--seed", "9", "--full", "--par", "2"])).unwrap();
        assert_eq!(o.jobs, 5);
        assert_eq!(o.seed, 9);
        assert!(o.full_scale);
        assert_eq!(o.par, 2);
        assert!(!o.telemetry);
        assert_eq!(o.trace_out, None);
    }

    #[test]
    fn threads_flag() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.threads, 1, "intra-run default is serial");
        let o = parse(&v(&["--threads", "4"])).unwrap();
        assert_eq!(o.threads, 4);
        let o = parse(&v(&["--threads", "0"])).unwrap();
        assert_eq!(o.threads, 0, "0 = auto-detect, resolved in the engine");
        assert!(parse(&v(&["--threads"])).is_err());
        assert!(parse(&v(&["--threads", "x"])).is_err());
    }

    #[test]
    fn control_faults_flag() {
        let o = parse(&[]).unwrap();
        assert!(!o.control_faults);
        let o = parse(&v(&["--control-faults"])).unwrap();
        assert!(o.control_faults);
    }

    #[test]
    fn telemetry_flags() {
        let o = parse(&v(&["--telemetry"])).unwrap();
        assert!(o.telemetry);
        assert_eq!(o.trace_out, None);
        let o = parse(&v(&["--trace-out", "results/trace"])).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("results/trace"));
        assert!(o.telemetry, "--trace-out implies --telemetry");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&["--jobs"])).is_err());
        assert!(parse(&v(&["--jobs", "x"])).is_err());
        assert!(parse(&v(&["--jobs", "0"])).is_err());
        assert!(parse(&v(&["--par", "x"])).is_err());
        assert!(parse(&v(&["--trace-out"])).is_err());
        assert!(parse(&v(&["--trace-out", ""])).is_err());
        assert!(parse(&v(&["--wat"])).is_err());
    }
}
