//! The paper's analytic motivation examples (Figures 2 and 4).
//!
//! Both examples are unit-rate, port-contention schedules small enough
//! to evaluate exactly. We model them with a deterministic preemptive
//! list scheduler: each job is a chain of (port, units) stages; at every
//! instant each port serves the highest-priority ready stage
//! exclusively; priority is either **total bytes sent** (TBS — smaller
//! job first, the SJF-style rule of Varys/Aalo-lineage schedulers) or
//! **per-stage bytes** (smaller current stage first, the stage-aware
//! rule Gurita motivates).
//!
//! *Figure 4* (blocking): job A has three 2-unit coflows occupying three
//! ports; jobs B, C, D each hold one 3-unit coflow on one of those
//! ports. Prioritizing A (it is "smaller" per coflow) yields an average
//! JCT of 4.25; prioritizing the jobs it blocks yields 3.50 — exactly
//! the paper's numbers, reproduced by [`figure4`].
//!
//! *Figure 2* (multi-stage): job A sends 10, 1, 1, 1 units in four
//! stages on four ports; single-stage jobs B, C, D (2 units each) arrive
//! just as A's later stages reach their ports. Under TBS, B, C, D
//! preempt A's one-unit stages and A's JCT is 19 (average 6.25). Under
//! per-stage priority A's tiny stages go first. The paper quotes an
//! average of 5.5 assuming each of B, C, D is delayed by one unit; in a
//! consistent single-timeline replay only B overlaps A (C and D arrive
//! after A's stages have cleared their ports), giving 5.0 — the
//! qualitative claim (stage-aware < TBS) is what [`figure2`] checks and
//! `EXPERIMENTS.md` records the discrepancy.

/// Priority rule of the analytic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityRule {
    /// Smaller total job bytes first (stage-agnostic).
    TotalBytes,
    /// Smaller current-stage bytes first (stage-aware).
    PerStageBytes,
}

/// One analytic job: arrival time plus a chain of (port, units) stages.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticJob {
    /// Arrival time in unit-time.
    pub arrival: f64,
    /// Sequential stages: `(port, units)`.
    pub stages: Vec<(usize, f64)>,
}

impl AnalyticJob {
    /// Total units across all stages.
    pub fn total_units(&self) -> f64 {
        self.stages.iter().map(|s| s.1).sum()
    }
}

/// Result of one analytic schedule: per-job completion times.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticResult {
    /// Per-job JCTs (completion − arrival), in job order.
    pub jcts: Vec<f64>,
}

impl AnalyticResult {
    /// Average JCT.
    pub fn avg_jct(&self) -> f64 {
        self.jcts.iter().sum::<f64>() / self.jcts.len() as f64
    }
}

const STEP_EPS: f64 = 1e-9;

/// Runs the deterministic preemptive list schedule.
///
/// At every instant, each port serves the single highest-priority ready
/// stage (preemptively); ties break by job index. Time advances to the
/// next stage completion. Unit processing rate.
///
/// # Panics
///
/// Panics if `jobs` is empty or a stage has non-positive units.
pub fn simulate(jobs: &[AnalyticJob], rule: PriorityRule) -> AnalyticResult {
    assert!(!jobs.is_empty(), "at least one job required");
    for j in jobs {
        for &(_, u) in &j.stages {
            assert!(u > 0.0, "stage units must be positive");
        }
    }
    #[derive(Debug)]
    struct JobState {
        stage: usize,
        remaining: f64,
        done_at: Option<f64>,
    }
    let mut state: Vec<JobState> = jobs
        .iter()
        .map(|j| JobState {
            stage: 0,
            remaining: j.stages[0].1,
            done_at: None,
        })
        .collect();
    let mut now = 0.0f64;
    let active = |s: &JobState| s.done_at.is_none();
    for _ in 0..100_000 {
        if state.iter().all(|s| !active(s)) {
            break;
        }
        // Ready jobs: arrived and unfinished.
        let mut per_port_winner: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (ji, j) in jobs.iter().enumerate() {
            if !active(&state[ji]) || j.arrival > now + STEP_EPS {
                continue;
            }
            let port = j.stages[state[ji].stage].0;
            let priority = |ji: usize| -> f64 {
                match rule {
                    PriorityRule::TotalBytes => jobs[ji].total_units(),
                    PriorityRule::PerStageBytes => jobs[ji].stages[state[ji].stage].1,
                }
            };
            match per_port_winner.entry(port) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(ji);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let cur = *o.get();
                    if priority(ji) < priority(cur) - STEP_EPS {
                        o.insert(ji);
                    }
                }
            }
        }
        // Next event: earliest winner completion or next arrival.
        let mut dt = f64::INFINITY;
        for &ji in per_port_winner.values() {
            dt = dt.min(state[ji].remaining);
        }
        for (ji, j) in jobs.iter().enumerate() {
            if active(&state[ji]) && j.arrival > now + STEP_EPS {
                dt = dt.min(j.arrival - now);
            }
        }
        assert!(
            dt.is_finite(),
            "schedule stalled: no runnable stage and no pending arrival"
        );
        now += dt;
        for &ji in per_port_winner.values() {
            let s = &mut state[ji];
            s.remaining -= dt;
            if s.remaining <= STEP_EPS {
                s.stage += 1;
                if s.stage == jobs[ji].stages.len() {
                    s.done_at = Some(now);
                    s.remaining = 0.0;
                } else {
                    s.remaining = jobs[ji].stages[s.stage].1;
                }
            }
        }
    }
    AnalyticResult {
        jcts: state
            .iter()
            .zip(jobs)
            .map(|(s, j)| s.done_at.expect("all jobs complete") - j.arrival)
            .collect(),
    }
}

/// The Figure 2 multi-stage example: returns
/// `(avg JCT under TBS, avg JCT under per-stage priority)`.
pub fn figure2() -> (f64, f64) {
    // Job A: stages (p0,10) (p1,1) (p2,1) (p3,1); B, C, D: 2 units on
    // p1/p2/p3, arriving as A's corresponding stage becomes ready under
    // the TBS schedule (t = 10, 13, 16).
    let jobs = vec![
        AnalyticJob {
            arrival: 0.0,
            stages: vec![(0, 10.0), (1, 1.0), (2, 1.0), (3, 1.0)],
        },
        AnalyticJob {
            arrival: 10.0,
            stages: vec![(1, 2.0)],
        },
        AnalyticJob {
            arrival: 13.0,
            stages: vec![(2, 2.0)],
        },
        AnalyticJob {
            arrival: 16.0,
            stages: vec![(3, 2.0)],
        },
    ];
    (
        simulate(&jobs, PriorityRule::TotalBytes).avg_jct(),
        simulate(&jobs, PriorityRule::PerStageBytes).avg_jct(),
    )
}

/// The Figure 4 blocking example: returns
/// `(avg JCT with A prioritized, avg JCT with B/C/D prioritized)` —
/// the paper's 4.25 vs 3.50.
pub fn figure4() -> (f64, f64) {
    // Job A: three 2-unit coflows on ports 0, 1, 2 — modeled as three
    // parallel single-stage sub-jobs whose completion is the max; jobs
    // B, C, D: one 3-unit coflow on ports 0, 1, 2 respectively.
    // The schedule is symmetric per port: on each port, either A's
    // 2-unit coflow goes first (scenario 1) or the 3-unit one does
    // (scenario 2).
    let scenario = |a_first: bool| -> f64 {
        let (a_cct, other_cct) = if a_first {
            (2.0, 2.0 + 3.0)
        } else {
            (3.0 + 2.0, 3.0)
        };
        // A's JCT is the max over its three coflows (identical by
        // symmetry); B, C, D share the other completion time.
        (a_cct + 3.0 * other_cct) / 4.0
    };
    (scenario(true), scenario(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_matches_paper_exactly() {
        let (a_first, blocked_first) = figure4();
        assert!((a_first - 4.25).abs() < 1e-12);
        assert!((blocked_first - 3.50).abs() < 1e-12);
    }

    #[test]
    fn figure2_tbs_average_matches_paper() {
        let (tbs, _) = figure2();
        assert!((tbs - 6.25).abs() < 1e-9, "TBS avg {tbs}");
    }

    #[test]
    fn figure2_stage_aware_beats_tbs() {
        let (tbs, stage_aware) = figure2();
        // The paper quotes 5.5 under its per-job accounting; the
        // consistent replay yields 5.0. Either way the ordering holds.
        assert!(
            stage_aware < tbs,
            "stage-aware {stage_aware} must beat TBS {tbs}"
        );
        assert!(
            (stage_aware - 5.0).abs() < 1e-9,
            "stage-aware avg {stage_aware}"
        );
    }

    #[test]
    fn simulate_single_job_is_its_length() {
        let jobs = vec![AnalyticJob {
            arrival: 1.0,
            stages: vec![(0, 2.0), (1, 3.0)],
        }];
        let r = simulate(&jobs, PriorityRule::TotalBytes);
        assert!((r.jcts[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn preemption_switches_to_smaller_stage() {
        // Long job running; short job arrives mid-flight and preempts
        // under both rules (it is smaller in total and per stage).
        let jobs = vec![
            AnalyticJob {
                arrival: 0.0,
                stages: vec![(0, 10.0)],
            },
            AnalyticJob {
                arrival: 2.0,
                stages: vec![(0, 1.0)],
            },
        ];
        for rule in [PriorityRule::TotalBytes, PriorityRule::PerStageBytes] {
            let r = simulate(&jobs, rule);
            assert!((r.jcts[1] - 1.0).abs() < 1e-12, "short preempts: {:?}", r);
            assert!((r.jcts[0] - 11.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_stage() {
        let jobs = vec![AnalyticJob {
            arrival: 0.0,
            stages: vec![(0, 0.0)],
        }];
        let _ = simulate(&jobs, PriorityRule::TotalBytes);
    }
}
