//! Experiment harness reproducing every table and figure of the Gurita
//! paper (ICDCS 2019).
//!
//! * [`motivation`] — the analytic Figure 2 / Figure 4 examples;
//! * [`roster`] — the scheduler roster (Gurita, GuritaPlus, PFS, Baraat,
//!   Stream, Aalo, and the Varys-SEBF extension) with evaluation-tuned
//!   parameters;
//! * [`scenario`] — fabric + workload + replay plumbing: every scheduler
//!   replays a byte-identical workload;
//! * [`metrics`] — improvement factors and per-category breakdowns
//!   (Table 1 bins);
//! * [`figures`] — one driver per paper artifact: [`figures::fig5`],
//!   [`figures::fig6`], [`figures::fig7`], [`figures::fig8`], plus the
//!   [`figures::ablation`] study of Gurita's design choices;
//! * [`sweeps`] — sensitivity sweeps (queue count, thresholds, update
//!   interval, HR latency, fault injection);
//! * [`trace`] — telemetry capture behind `--trace-out`: instrumented
//!   SPQ-vs-WRR runs exported as JSONL events plus a Perfetto-loadable
//!   Chrome trace;
//! * [`report`] — plain-text/markdown/JSON rendering of results.
//!
//! Binaries `fig5`…`fig8`, `motivation`, and `ablation` regenerate the
//! corresponding artifacts from the command line; see `EXPERIMENTS.md`
//! for recorded paper-vs-measured comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod charts;
pub mod figures;
pub mod metrics;
pub mod motivation;
pub mod par;
pub mod report;
pub mod roster;
pub mod scenario;
pub mod sweeps;
pub mod trace;
