//! Sensitivity sweeps over Gurita's design parameters.
//!
//! The paper fixes δ (the receiver→HR update interval), uses 4 priority
//! queues "sufficient to provide satisfactory outcomes", spaces
//! thresholds exponentially "as recommended by \[Aalo\]", and defers
//! threshold learning to future work. These sweeps quantify each choice:
//!
//! * [`queue_count_sweep`] — 1…8 priority queues;
//! * [`threshold_sweep`] — the exponential ladder's base and factor;
//! * [`delta_sweep`] — the update interval δ;
//! * [`latency_sweep`] — head-receiver decision propagation latency;
//! * [`control_latency_sweep`] — decentralized control-plane staleness
//!   (the `*Local` schemes acting on delayed priority tables);
//! * [`control_chaos_sweep`] — control-plane fault tolerance (lossy
//!   channels, agent crashes, coordinator partitions at escalating
//!   severities);
//! * [`fault_sweep`] — degraded-fabric robustness (fraction of host
//!   NICs browned out).

use crate::roster::SchedulerKind;
use crate::scenario::Scenario;
use gurita::scheduler::{GuritaConfig, GuritaScheduler};
use gurita_model::HostId;
use gurita_sim::faults::{AgentCrash, ControlFaults, DegradedFabric, PartitionWindow};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::FatTree;
use gurita_workload::dags::StructureKind;
use serde::{Deserialize, Serialize};

/// One sweep point: a parameter value and the measured average JCT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Human-readable parameter setting.
    pub setting: String,
    /// Average JCT in seconds under Gurita at this setting.
    pub avg_jct: f64,
}

/// A named sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Which parameter was swept.
    pub parameter: String,
    /// The measured points, in sweep order.
    pub points: Vec<SweepPoint>,
}

fn run_gurita_with(scenario: &Scenario, config: GuritaConfig) -> f64 {
    let jobs = scenario.jobs();
    let fabric = FatTree::new(scenario.pods).expect("valid pods");
    let mut sim = Simulation::new(
        fabric,
        SimConfig {
            tick_interval: scenario.tick_interval,
            threads: scenario.threads,
            ..SimConfig::default()
        },
    );
    let mut sched = GuritaScheduler::new(config);
    sim.run(jobs, &mut sched).avg_jct()
}

fn base_config() -> GuritaConfig {
    GuritaConfig {
        num_queues: 4,
        threshold_base: 1.0e7,
        threshold_factor: 30.0,
        ..GuritaConfig::default()
    }
}

fn scenario(jobs: usize, seed: u64, threads: usize) -> Scenario {
    let mut sc = Scenario::trace_driven(StructureKind::FbTao, jobs, seed);
    sc.threads = threads;
    sc
}

/// Sweeps the number of priority queues (the paper: 4 suffices; today's
/// switches support 8). `par` caps the worker threads used for the
/// independent points (`0` = one per core).
/// `threads` sets each run's intra-run engine pool width (`0` = one
/// per core); results are bit-for-bit identical at every setting.
pub fn queue_count_sweep(jobs: usize, seed: u64, par: usize, threads: usize) -> SweepResult {
    let sc = scenario(jobs, seed, threads);
    let qs = [1usize, 2, 4, 8];
    let points = crate::par::par_run(par, qs.len(), |i| {
        let q = qs[i];
        SweepPoint {
            setting: format!("{q} queues"),
            avg_jct: run_gurita_with(
                &sc,
                GuritaConfig {
                    num_queues: q,
                    ..base_config()
                },
            ),
        }
    });
    SweepResult {
        parameter: "priority queues".into(),
        points,
    }
}

/// Sweeps the exponential threshold ladder's spacing factor.
/// `threads` sets each run's intra-run engine pool width (`0` = one
/// per core); results are bit-for-bit identical at every setting.
pub fn threshold_sweep(jobs: usize, seed: u64, par: usize, threads: usize) -> SweepResult {
    let sc = scenario(jobs, seed, threads);
    let factors = [3.0f64, 10.0, 30.0, 100.0];
    let points = crate::par::par_run(par, factors.len(), |i| SweepPoint {
        setting: format!("factor {}", factors[i]),
        avg_jct: run_gurita_with(
            &sc,
            GuritaConfig {
                threshold_factor: factors[i],
                ..base_config()
            },
        ),
    });
    SweepResult {
        parameter: "threshold spacing factor".into(),
        points,
    }
}

/// Sweeps the δ update interval (ticks).
/// `threads` sets each run's intra-run engine pool width (`0` = one
/// per core); results are bit-for-bit identical at every setting.
pub fn delta_sweep(jobs: usize, seed: u64, par: usize, threads: usize) -> SweepResult {
    let deltas = [2e-3f64, 10e-3, 50e-3, 200e-3];
    let points = crate::par::par_run(par, deltas.len(), |i| {
        let delta = deltas[i];
        let mut sc = scenario(jobs, seed, threads);
        sc.tick_interval = delta;
        SweepPoint {
            setting: format!("delta {:.0}ms", delta * 1e3),
            avg_jct: run_gurita_with(&sc, base_config()),
        }
    });
    SweepResult {
        parameter: "update interval".into(),
        points,
    }
}

/// Sweeps the head-receiver decision propagation latency.
/// `threads` sets each run's intra-run engine pool width (`0` = one
/// per core); results are bit-for-bit identical at every setting.
pub fn latency_sweep(jobs: usize, seed: u64, par: usize, threads: usize) -> SweepResult {
    let sc = scenario(jobs, seed, threads);
    let latencies = [0.0f64, 5e-3, 20e-3, 100e-3];
    let points = crate::par::par_run(par, latencies.len(), |i| SweepPoint {
        setting: format!("latency {:.0}ms", latencies[i] * 1e3),
        avg_jct: run_gurita_with(
            &sc,
            GuritaConfig {
                decision_latency: latencies[i],
                ..base_config()
            },
        ),
    });
    SweepResult {
        parameter: "HR decision latency".into(),
        points,
    }
}

/// Sweeps the decentralized control plane's decision-propagation
/// latency (see [`SimConfig::control_latency`]) for the `*Local`
/// schemes: at each latency, hosts tag flows from a priority table that
/// is `latency` seconds stale. Returns `(gurita_local, aalo_local)`
/// results over the byte-identical workload; the `latency × scheme`
/// grid runs on up to `par` worker threads. The first point of each
/// result is latency 0 — the pinned-identical-to-centralized baseline —
/// so per-latency slowdowns can be read off directly.
/// `threads` sets each run's intra-run engine pool width (`0` = one
/// per core); results are bit-for-bit identical at every setting.
pub fn control_latency_sweep(
    jobs: usize,
    seed: u64,
    par: usize,
    threads: usize,
) -> (SweepResult, SweepResult) {
    let latencies = [0.0f64, 1e-3, 10e-3];
    let kinds = [SchedulerKind::GuritaLocal, SchedulerKind::AaloLocal];
    let cells = crate::par::par_run(par, latencies.len() * kinds.len(), |cell| {
        let latency = latencies[cell / kinds.len()];
        let kind = kinds[cell % kinds.len()];
        let mut sc = scenario(jobs, seed, threads);
        sc.control_latency = latency;
        SweepPoint {
            setting: format!("control latency {:.0}ms", latency * 1e3),
            avg_jct: sc.run(kind).avg_jct(),
        }
    });
    let mut gurita_points = Vec::new();
    let mut aalo_points = Vec::new();
    for (i, p) in cells.into_iter().enumerate() {
        if i % kinds.len() == 0 {
            gurita_points.push(p);
        } else {
            aalo_points.push(p);
        }
    }
    (
        SweepResult {
            parameter: "control latency (Gurita@local)".into(),
            points: gurita_points,
        },
        SweepResult {
            parameter: "control latency (Aalo@local)".into(),
            points: aalo_points,
        },
    )
}

/// Builds the escalating control-chaos ladder swept by
/// [`control_chaos_sweep`]: a fault-free baseline, a lossy channel, and
/// full chaos (heavier loss plus an agent crash/restart and a
/// coordinator partition window). Severities are deterministic in
/// `seed` so the sweep replays bit-for-bit.
fn chaos_ladder(seed: u64) -> Vec<(&'static str, Option<ControlFaults>)> {
    vec![
        ("no faults", None),
        (
            "lossy 10%",
            Some(ControlFaults {
                drop_prob: 0.10,
                duplicate_prob: 0.05,
                reorder_prob: 0.05,
                reorder_delay: 2e-3,
                seed,
                staleness_bound: 0.25,
                ..ControlFaults::default()
            }),
        ),
        (
            "chaos 30% + crash + partition",
            Some(ControlFaults {
                drop_prob: 0.30,
                duplicate_prob: 0.10,
                reorder_prob: 0.10,
                reorder_delay: 5e-3,
                seed,
                staleness_bound: 0.25,
                crashes: vec![AgentCrash {
                    host: HostId(7),
                    at: 0.05,
                    restart_after: Some(0.2),
                }],
                partitions: vec![PartitionWindow {
                    start: 0.3,
                    duration: 0.1,
                }],
                ..ControlFaults::default()
            }),
        ),
    ]
}

/// Stresses the decentralized control plane's fault tolerance: each
/// `*Local` scheme replays the byte-identical workload at 1 ms control
/// latency under the escalating chaos ladder (fault-free → lossy →
/// crash + partition). Returns `(gurita_local, aalo_local)` results;
/// the `severity × scheme` grid runs on up to `par` worker threads. The
/// first point of each result is the fault-free baseline, so per-severity
/// slowdowns can be read off directly.
/// `threads` sets each run's intra-run engine pool width (`0` = one
/// per core); results are bit-for-bit identical at every setting.
pub fn control_chaos_sweep(
    jobs: usize,
    seed: u64,
    par: usize,
    threads: usize,
) -> (SweepResult, SweepResult) {
    let ladder = chaos_ladder(seed);
    let kinds = [SchedulerKind::GuritaLocal, SchedulerKind::AaloLocal];
    let cells = crate::par::par_run(par, ladder.len() * kinds.len(), |cell| {
        let (label, profile) = &ladder[cell / kinds.len()];
        let kind = kinds[cell % kinds.len()];
        let mut sc = scenario(jobs, seed, threads);
        sc.control_latency = 1e-3;
        sc.control_faults = profile.clone();
        SweepPoint {
            setting: (*label).to_owned(),
            avg_jct: sc.run(kind).avg_jct(),
        }
    });
    let mut gurita_points = Vec::new();
    let mut aalo_points = Vec::new();
    for (i, p) in cells.into_iter().enumerate() {
        if i % kinds.len() == 0 {
            gurita_points.push(p);
        } else {
            aalo_points.push(p);
        }
    }
    (
        SweepResult {
            parameter: "control chaos (Gurita@local)".into(),
            points: gurita_points,
        },
        SweepResult {
            parameter: "control chaos (Aalo@local)".into(),
            points: aalo_points,
        },
    )
}

/// Degrades a growing fraction of host NICs to 30% capacity and
/// measures Gurita's (and PFS's) average JCT — the fault-robustness
/// sweep. Returns `(gurita, pfs)` results over the same faults. The
/// `fraction × scheduler` grid runs on up to `par` worker threads.
/// `threads` sets each run's intra-run engine pool width (`0` = one
/// per core); results are bit-for-bit identical at every setting.
pub fn fault_sweep(
    jobs: usize,
    seed: u64,
    par: usize,
    threads: usize,
) -> (SweepResult, SweepResult) {
    let sc = scenario(jobs, seed, threads);
    let jobs_vec = sc.jobs();
    let fracs = [0.0f64, 0.05, 0.15, 0.30];
    let kinds = [SchedulerKind::Gurita, SchedulerKind::Pfs];
    let cells = crate::par::par_run(par, fracs.len() * kinds.len(), |cell| {
        let frac = fracs[cell / kinds.len()];
        let kind = kinds[cell % kinds.len()];
        let fabric = FatTree::new(sc.pods).expect("valid pods");
        let n = 128;
        let degraded =
            (0..((n as f64 * frac) as usize)).fold(DegradedFabric::new(fabric), |f, i| {
                // Spread brown-outs deterministically across racks.
                f.with_degraded_host(HostId((i * 37) % n), 0.3)
            });
        let mut sim = Simulation::new(
            degraded,
            SimConfig {
                tick_interval: sc.tick_interval,
                threads: sc.threads,
                ..SimConfig::default()
            },
        );
        let mut sched = kind.build();
        let avg = sim.run(jobs_vec.clone(), sched.as_mut()).avg_jct();
        SweepPoint {
            setting: format!("{:.0}% hosts browned out", frac * 100.0),
            avg_jct: avg,
        }
    });
    let mut gurita_points = Vec::new();
    let mut pfs_points = Vec::new();
    for (i, p) in cells.into_iter().enumerate() {
        if i % kinds.len() == 0 {
            gurita_points.push(p);
        } else {
            pfs_points.push(p);
        }
    }
    (
        SweepResult {
            parameter: "faults (Gurita)".into(),
            points: gurita_points,
        },
        SweepResult {
            parameter: "faults (PFS)".into(),
            points: pfs_points,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_ordered_points() {
        let r = queue_count_sweep(6, 3, 1, 1);
        assert_eq!(r.points.len(), 4);
        assert!(r.points.iter().all(|p| p.avg_jct > 0.0));
        assert_eq!(r.points[0].setting, "1 queues");
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let seq = queue_count_sweep(5, 11, 1, 1);
        let par = queue_count_sweep(5, 11, 4, 1);
        assert_eq!(seq, par, "parallelism must not change results");
    }

    #[test]
    fn threaded_sweep_matches_serial() {
        let serial = queue_count_sweep(5, 11, 1, 1);
        let threaded = queue_count_sweep(5, 11, 1, 2);
        assert_eq!(
            serial, threaded,
            "intra-run threads must not change results"
        );
    }

    #[test]
    fn control_latency_sweep_covers_both_local_schemes() {
        let (g, a) = control_latency_sweep(5, 7, 0, 1);
        for r in [&g, &a] {
            assert_eq!(r.points.len(), 3);
            assert_eq!(r.points[0].setting, "control latency 0ms");
            assert!(r.points.iter().all(|p| p.avg_jct > 0.0));
        }
    }

    #[test]
    fn control_chaos_sweep_covers_the_ladder() {
        let (g, a) = control_chaos_sweep(5, 7, 0, 1);
        for r in [&g, &a] {
            assert_eq!(r.points.len(), 3);
            assert_eq!(r.points[0].setting, "no faults");
            assert!(r.points.iter().all(|p| p.avg_jct > 0.0));
        }
        // The chaos ladder is allowed to cost something, but the run
        // must stay bounded: a wholesale collapse indicates the retry /
        // degradation machinery is broken.
        let base = g.points[0].avg_jct;
        let worst = g.points.last().unwrap().avg_jct;
        assert!(
            worst <= base * 10.0,
            "chaos slowdown unbounded: {base} -> {worst}"
        );
    }

    #[test]
    fn fault_sweep_degrades_gracefully() {
        let (g, p) = fault_sweep(6, 4, 0, 1);
        assert_eq!(g.points.len(), 4);
        assert_eq!(p.points.len(), 4);
        // More faults must not make the network faster.
        assert!(
            g.points.last().unwrap().avg_jct >= g.points[0].avg_jct * 0.8,
            "faults should not speed things up: {:?}",
            g.points
        );
    }
}
