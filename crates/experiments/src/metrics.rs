//! Comparison metrics.
//!
//! The paper's primary metric is the **improvement factor**
//!
//! ```text
//! improvement = avg JCT of compared scheme / avg JCT of Gurita
//! ```
//!
//! "If the improvement is greater (smaller) than one, Gurita is faster
//! (slower)." Per-category variants bin jobs by Table 1 first.

use gurita_model::SizeCategory;
use gurita_sim::stats::RunResult;
use serde::{Deserialize, Serialize};

/// Improvement of `reference` (Gurita) over one compared scheduler,
/// overall and per size category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImprovementRow {
    /// Label of the compared scheduler.
    pub scheduler: String,
    /// Overall improvement factor (>1 ⇒ reference faster).
    pub overall: f64,
    /// Per-category improvement; `None` where the category is empty.
    pub per_category: [Option<f64>; 7],
}

/// The improvement factor; `NaN`-free: an empty or zero reference
/// average yields 1.0 (no claim).
pub fn improvement_factor(compared_avg_jct: f64, reference_avg_jct: f64) -> f64 {
    if reference_avg_jct > 0.0 && compared_avg_jct.is_finite() {
        compared_avg_jct / reference_avg_jct
    } else {
        1.0
    }
}

/// Builds improvement rows for every compared run against the reference
/// run (conventionally Gurita).
///
/// # Panics
///
/// Panics if any compared run completed a different set of jobs than
/// the reference (the scenario plumbing replays identical workloads, so
/// a mismatch indicates a harness bug).
pub fn improvement_table(reference: &RunResult, compared: &[RunResult]) -> Vec<ImprovementRow> {
    for run in compared {
        assert_eq!(
            run.jobs.len(),
            reference.jobs.len(),
            "{} completed {} jobs but the reference completed {}",
            run.scheduler,
            run.jobs.len(),
            reference.jobs.len()
        );
    }
    compared
        .iter()
        .map(|run| {
            let mut per_category = [None; 7];
            for cat in SizeCategory::ALL {
                if let (Some(a), Some(b)) = (run.avg_jct_in(cat), reference.avg_jct_in(cat)) {
                    per_category[cat.index()] = Some(improvement_factor(a, b));
                }
            }
            ImprovementRow {
                scheduler: run.scheduler.clone(),
                overall: improvement_factor(run.avg_jct(), reference.avg_jct()),
                per_category,
            }
        })
        .collect()
}

/// An empirical CDF of job completion times: `points[i] = (jct,
/// fraction of jobs completing within jct)`, sampled at every job.
pub fn jct_cdf(run: &RunResult) -> Vec<(f64, f64)> {
    let mut jcts: Vec<f64> = run.jobs.iter().map(|j| j.jct).collect();
    jcts.sort_by(|a, b| a.partial_cmp(b).expect("JCTs are finite"));
    let n = jcts.len() as f64;
    jcts.into_iter()
        .enumerate()
        .map(|(i, j)| (j, (i + 1) as f64 / n))
        .collect()
}

/// Count of reference jobs per size category (populates the "n=" column
/// of reports).
pub fn category_populations(reference: &RunResult) -> [usize; 7] {
    let mut counts = [0usize; 7];
    for j in &reference.jobs {
        counts[j.category().index()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::units::MB;
    use gurita_model::JobId;
    use gurita_sim::stats::JobResult;

    fn run(name: &str, jcts: &[(f64, f64)]) -> RunResult {
        RunResult {
            scheduler: name.into(),
            jobs: jcts
                .iter()
                .enumerate()
                .map(|(i, &(jct, bytes))| JobResult {
                    id: JobId(i),
                    arrival: 0.0,
                    completed_at: jct,
                    jct,
                    total_bytes: bytes,
                    num_stages: 1,
                    fault_reroutes: 0,
                    fault_parks: 0,
                })
                .collect(),
            ..RunResult::default()
        }
    }

    #[test]
    fn factor_semantics() {
        assert_eq!(improvement_factor(2.0, 1.0), 2.0); // Gurita 2x faster
        assert_eq!(improvement_factor(0.5, 1.0), 0.5); // Gurita slower
        assert_eq!(improvement_factor(1.0, 0.0), 1.0); // degenerate
    }

    #[test]
    fn table_computes_overall_and_categories() {
        let gurita = run("Gurita", &[(1.0, 10.0 * MB), (2.0, 500.0 * MB)]);
        let pfs = run("PFS", &[(2.0, 10.0 * MB), (6.0, 500.0 * MB)]);
        let rows = improvement_table(&gurita, &[pfs]);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.scheduler, "PFS");
        assert!((row.overall - (8.0 / 3.0)).abs() < 1e-12);
        assert_eq!(row.per_category[0], Some(2.0)); // category I
        assert_eq!(row.per_category[1], Some(3.0)); // category II
        assert_eq!(row.per_category[6], None); // empty category
    }

    #[test]
    #[should_panic(expected = "completed")]
    fn mismatched_runs_are_rejected() {
        let a = run("Gurita", &[(1.0, MB)]);
        let b = run("PFS", &[(1.0, MB), (2.0, MB)]);
        let _ = improvement_table(&a, &[b]);
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let r = run("x", &[(3.0, MB), (1.0, MB), (2.0, MB)]);
        let cdf = jct_cdf(&r);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn populations() {
        let r = run("x", &[(1.0, 10.0 * MB), (1.0, 20.0 * MB), (1.0, 2.0e12)]);
        let pop = category_populations(&r);
        assert_eq!(pop[0], 2);
        assert_eq!(pop[6], 1);
        assert_eq!(pop.iter().sum::<usize>(), 3);
    }
}
