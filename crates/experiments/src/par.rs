//! Scoped-thread fan-out for embarrassingly parallel experiment cells.
//!
//! Sweep points, chaos cells, and figure scenarios are independent
//! simulations over deterministic workloads, so running them
//! concurrently changes wall-clock time and nothing else: results are
//! written into per-index slots, preserving the sequential order
//! regardless of scheduling. Built on `std::thread::scope` — no
//! thread-pool dependency.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a `--par` setting: `0` means "one worker per available
/// core", anything else is taken literally.
///
/// Delegates to [`gurita_sim::pool::effective_threads`] so the harness's
/// inter-run fan-out and the engine's intra-run fan-out
/// (`SimConfig::threads`) share one auto-detection rule and can never
/// disagree about what "auto" means.
pub fn effective_par(par: usize) -> usize {
    gurita_sim::pool::effective_threads(par)
}

/// Runs `f(0..n)` across at most `par` worker threads (`0` = auto) and
/// returns the results in index order. With one worker (or one item)
/// this degrades to a plain sequential loop on the calling thread.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_run<R, F>(par: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = effective_par(par).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                slots.lock()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every cell produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = par_run(4, 32, |i| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = par_run(1, 9, |i| format!("cell-{i}"));
        let par = par_run(3, 9, |i| format!("cell-{i}"));
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_run(4, 0, |i| i).is_empty());
        assert_eq!(par_run(0, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn auto_par_resolves_to_at_least_one() {
        assert!(effective_par(0) >= 1);
        assert_eq!(effective_par(3), 3);
    }

    #[test]
    fn par_shares_the_engine_auto_detection_rule() {
        // `--par 0` and `SimConfig { threads: 0 }` must resolve
        // identically — the two layers share one rule by construction.
        assert_eq!(
            effective_par(0),
            gurita_sim::pool::effective_threads(0),
            "harness and engine disagree about what `auto` means"
        );
    }

    #[test]
    fn oversubscribed_par_is_literal_and_correct() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(effective_par(cores + 16), cores + 16, "no clamping");
        // More workers than items: the fan-out caps at the item count
        // and still returns every result in index order.
        let out = par_run(cores + 16, 5, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }
}
