//! The scheduler roster used across all experiments.

use gurita::local::GuritaAgent;
use gurita::plus::GuritaPlus;
use gurita::rules::{Rule, RuleSet};
use gurita::scheduler::{GuritaConfig, GuritaScheduler};
use gurita_baselines::aalo::{Aalo, AaloAgent, AaloConfig};
use gurita_baselines::baraat::{Baraat, BaraatConfig};
use gurita_baselines::pfs::PerFlowFairSharing;
use gurita_baselines::sebf::VarysSebf;
use gurita_baselines::stream::{Stream, StreamConfig};
use gurita_sim::control::{Centralized, ControlPlane, Decentralized, HostAgent};
use gurita_sim::sched::Scheduler;
use serde::{Deserialize, Serialize};

/// A scheduler selectable in experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Gurita (decentralized LBEF with starvation mitigation).
    Gurita,
    /// Gurita with plain SPQ (no WRR starvation mitigation) — ablation.
    GuritaSpq,
    /// Gurita without the final-stage rule (ω ≡ 1) — ablation.
    GuritaNoOmega,
    /// Gurita without the κ size adjustment — ablation.
    GuritaNoKappa,
    /// Gurita without the critical-path discount — ablation.
    GuritaNoCriticalPath,
    /// GuritaPlus (exact per-stage in-flight bytes, Figure 8 oracle).
    GuritaPlus,
    /// Per-flow fair sharing (the baseline).
    Pfs,
    /// Baraat FIFO-LM.
    Baraat,
    /// Stream (TBS-based decentralized).
    Stream,
    /// Aalo (centralized D-CLAS with instantaneous global view).
    Aalo,
    /// Varys SEBF (clairvoyant extension baseline).
    VarysSebf,
    /// Gurita under the decentralized control plane (per-host agents,
    /// stale views after `control_latency`).
    GuritaLocal,
    /// Aalo under the decentralized control plane — D-CLAS from
    /// observed bytes only, no oracle.
    AaloLocal,
}

impl SchedulerKind {
    /// The paper's Figure 5–7 comparison set, Gurita first.
    pub const PAPER_SET: [SchedulerKind; 5] = [
        SchedulerKind::Gurita,
        SchedulerKind::Baraat,
        SchedulerKind::Pfs,
        SchedulerKind::Stream,
        SchedulerKind::Aalo,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Gurita => "Gurita",
            SchedulerKind::GuritaSpq => "Gurita-SPQ",
            SchedulerKind::GuritaNoOmega => "Gurita-noOmega",
            SchedulerKind::GuritaNoKappa => "Gurita-noKappa",
            SchedulerKind::GuritaNoCriticalPath => "Gurita-noCP",
            SchedulerKind::GuritaPlus => "GuritaPlus",
            SchedulerKind::Pfs => "PFS",
            SchedulerKind::Baraat => "Baraat",
            SchedulerKind::Stream => "Stream",
            SchedulerKind::Aalo => "Aalo",
            SchedulerKind::VarysSebf => "Varys-SEBF",
            SchedulerKind::GuritaLocal => "Gurita@local",
            SchedulerKind::AaloLocal => "Aalo@local",
        }
    }

    /// Whether the kind runs under the decentralized control plane
    /// (per-host agents, denying oracle, staleness-aware propagation).
    pub fn is_decentralized(self) -> bool {
        matches!(self, SchedulerKind::GuritaLocal | SchedulerKind::AaloLocal)
    }

    /// Builds the scheduler with evaluation-tuned parameters: 4 priority
    /// queues for the threshold schemes (the paper's setting), Aalo's
    /// recommended exponential spacing, and a Ψ ladder for Gurita chosen
    /// so its first demotion corresponds to the same 10 MB scale.
    ///
    /// # Panics
    ///
    /// Panics for the `*Local` kinds — they have no cluster-wide
    /// `Scheduler` form; use [`SchedulerKind::build_plane`].
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Gurita => Box::new(GuritaScheduler::new(gurita_config())),
            SchedulerKind::GuritaSpq => Box::new(GuritaScheduler::new(GuritaConfig {
                starvation_mitigation: false,
                ..gurita_config()
            })),
            SchedulerKind::GuritaNoOmega => {
                Box::new(GuritaScheduler::new(ablated(Rule::FinalStageFirst)))
            }
            SchedulerKind::GuritaNoKappa => {
                Box::new(GuritaScheduler::new(ablated(Rule::SmallStagesFirst)))
            }
            SchedulerKind::GuritaNoCriticalPath => {
                Box::new(GuritaScheduler::new(ablated(Rule::CriticalPathFirst)))
            }
            SchedulerKind::GuritaPlus => Box::new(GuritaPlus::new(gurita_config())),
            SchedulerKind::Pfs => Box::new(PerFlowFairSharing::new()),
            SchedulerKind::Baraat => Box::new(Baraat::new(BaraatConfig::default())),
            SchedulerKind::Stream => Box::new(Stream::new(StreamConfig::default())),
            SchedulerKind::Aalo => Box::new(Aalo::new(AaloConfig::default())),
            SchedulerKind::VarysSebf => Box::new(VarysSebf::new(8)),
            SchedulerKind::GuritaLocal | SchedulerKind::AaloLocal => panic!(
                "{} is a decentralized scheme: use build_plane()",
                self.label()
            ),
        }
    }

    /// Builds the control plane for this kind: the `*Local` kinds get a
    /// [`Decentralized`] plane minting one host agent per sender host
    /// (same evaluation-tuned parameters as their centralized twins);
    /// everything else is wrapped in the bit-for-bit [`Centralized`]
    /// adapter around [`SchedulerKind::build`].
    pub fn build_plane(self) -> Box<dyn ControlPlane> {
        match self {
            SchedulerKind::GuritaLocal => Box::new(Decentralized::new(|| {
                Box::new(GuritaAgent::new(gurita_config())) as Box<dyn HostAgent>
            })),
            SchedulerKind::AaloLocal => Box::new(Decentralized::new(|| {
                Box::new(AaloAgent::new(AaloConfig::default())) as Box<dyn HostAgent>
            })),
            _ => Box::new(Centralized::new(self.build())),
        }
    }
}

/// Gurita's evaluation configuration: Ψ thresholds spanning the mice-to-
/// elephant range of the trace (Ψ ≈ bytes × flows, so 1e7 ≈ a 10 MB
/// single-flow stage or a 1 MB ten-flow stage).
fn gurita_config() -> GuritaConfig {
    GuritaConfig {
        num_queues: 4,
        threshold_base: 1.0e7,
        threshold_factor: 30.0,
        ..GuritaConfig::default()
    }
}

fn ablated(rule: Rule) -> GuritaConfig {
    let mut cfg = gurita_config();
    cfg.blocking.rules = RuleSet::all().without(rule);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        for kind in [
            SchedulerKind::Gurita,
            SchedulerKind::GuritaSpq,
            SchedulerKind::GuritaNoOmega,
            SchedulerKind::GuritaNoKappa,
            SchedulerKind::GuritaNoCriticalPath,
            SchedulerKind::GuritaPlus,
            SchedulerKind::Pfs,
            SchedulerKind::Baraat,
            SchedulerKind::Stream,
            SchedulerKind::Aalo,
            SchedulerKind::VarysSebf,
        ] {
            let s = kind.build();
            assert!(!s.name().is_empty());
            assert!(s.num_queues() >= 1);
            assert!(!kind.label().is_empty());
            assert!(!kind.is_decentralized());
        }
    }

    #[test]
    fn every_kind_builds_a_plane() {
        for kind in [
            SchedulerKind::Gurita,
            SchedulerKind::GuritaSpq,
            SchedulerKind::GuritaNoOmega,
            SchedulerKind::GuritaNoKappa,
            SchedulerKind::GuritaNoCriticalPath,
            SchedulerKind::GuritaPlus,
            SchedulerKind::Pfs,
            SchedulerKind::Baraat,
            SchedulerKind::Stream,
            SchedulerKind::Aalo,
            SchedulerKind::VarysSebf,
            SchedulerKind::GuritaLocal,
            SchedulerKind::AaloLocal,
        ] {
            let p = kind.build_plane();
            assert!(!p.name().is_empty());
            assert!(p.num_queues() >= 1);
            assert_eq!(p.needs_local_views(), kind.is_decentralized());
        }
    }

    #[test]
    #[should_panic(expected = "decentralized scheme")]
    fn local_kinds_have_no_cluster_wide_scheduler() {
        let _ = SchedulerKind::GuritaLocal.build();
    }

    /// The runtime hands `queue_policy` an `Observation::default()`
    /// (building a real one per recomputation would cost `O(flows)`),
    /// so the `Scheduler` trait contract requires the returned policy
    /// to be derived from `assign`-time state only. Drive two identical
    /// instances of every in-tree scheduler through the same `assign`,
    /// then ask one for its policy with an empty observation and the
    /// other with a populated one: the answers must match.
    #[test]
    fn queue_policy_ignores_the_observation() {
        use gurita_model::{
            CoflowId, CoflowSpec, FlowId, FlowSpec, HostId, JobDag, JobId, JobSpec,
        };
        use gurita_sim::sched::{CoflowObs, FlowObs, JobObs, Observation, Oracle};
        use std::collections::HashMap;

        let job = JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(1),
                1.0e6,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let jobs: HashMap<JobId, JobSpec> = [(JobId(0), job)].into_iter().collect();
        let remaining = |_: FlowId| Some(5.0e5);
        let flow_size = |_: FlowId| Some(1.0e6);
        let oracle = Oracle::new(&jobs, &remaining, &flow_size);
        let populated = Observation {
            now: 1.0,
            coflows: vec![CoflowObs {
                id: CoflowId(0),
                job: JobId(0),
                dag_vertex: 0,
                dag_stage: 0,
                activated_at: 0.0,
                open_flows: 1,
                bytes_received: 5.0e5,
                max_flow_bytes_received: 5.0e5,
                flows: vec![FlowObs {
                    id: FlowId(0),
                    bytes_received: 5.0e5,
                    open: true,
                }],
            }],
            jobs: vec![JobObs {
                id: JobId(0),
                arrival: 0.0,
                completed_coflows: 0,
                completed_stages: 0,
                completed_bytes: 0.0,
                bytes_received: 5.0e5,
                active_coflows: vec![0],
            }],
        };

        for kind in [
            SchedulerKind::Gurita,
            SchedulerKind::GuritaSpq,
            SchedulerKind::GuritaNoOmega,
            SchedulerKind::GuritaNoKappa,
            SchedulerKind::GuritaNoCriticalPath,
            SchedulerKind::GuritaPlus,
            SchedulerKind::Pfs,
            SchedulerKind::Baraat,
            SchedulerKind::Stream,
            SchedulerKind::Aalo,
            SchedulerKind::VarysSebf,
        ] {
            let mut a = kind.build();
            let mut b = kind.build();
            assert_eq!(
                a.assign(&populated, &oracle),
                b.assign(&populated, &oracle),
                "{}: assign must be deterministic for this test to be meaningful",
                kind.label()
            );
            assert_eq!(
                a.queue_policy(&Observation::default()),
                b.queue_policy(&populated),
                "{}: queue_policy read the observation",
                kind.label()
            );
        }
    }

    #[test]
    fn paper_set_has_gurita_first() {
        assert_eq!(SchedulerKind::PAPER_SET[0], SchedulerKind::Gurita);
        assert_eq!(SchedulerKind::PAPER_SET.len(), 5);
    }
}
