//! Chaos sweep: JCT inflation under mid-run fabric faults.
//!
//! Sweeps brownout severity × outage duration (25% of hosts browned out,
//! plus one hard-failed core-facing link that later recovers) across
//! `SchedulerKind::PAPER_SET`, on the byte-identical workload and fault
//! script per cell. Reports each scheduler's JCT inflation relative to
//! its own healthy run, so the table isolates fault resilience from
//! baseline scheduling quality.
//!
//! With `--control-faults`, additionally runs the control-plane chaos
//! sweep (lossy coordination channels, agent crashes, coordinator
//! partitions; see `gurita_experiments::sweeps::control_chaos_sweep`)
//! and writes `results/control_chaos.json`.

use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_experiments::{args, report};
use gurita_sim::topology::Fabric;
use gurita_workload::chaos::{ChaosConfig, ChaosGenerator};
use gurita_workload::dags::StructureKind;
use serde::Serialize;

/// One sweep cell: a (severity, duration) pair and every scheduler's
/// inflation under it.
#[derive(Debug, Serialize)]
struct ChaosCell {
    severity: f64,
    duration: f64,
    faults: usize,
    /// `(scheduler label, healthy avg JCT, faulted avg JCT, inflation)`.
    rows: Vec<(String, f64, f64, f64)>,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match args::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut scenario = Scenario::trace_driven(StructureKind::FbTao, opts.jobs, opts.seed);
    // Light tail so the sweep finishes quickly at reproduction scale;
    // mice/elephant contrast is preserved.
    scenario.workload.category_weights = [0.40, 0.25, 0.15, 0.08, 0.12, 0.0, 0.0];
    scenario.threads = opts.threads;
    let num_hosts = scenario.workload.num_hosts;

    // A core-facing link on some cross-fabric path: hard-failed for the
    // outage window to exercise rerouting on top of the brownout.
    let fabric = gurita_sim::topology::FatTree::new(scenario.pods).expect("valid pod count");
    let sample_path = fabric
        .path(
            gurita_model::HostId(0),
            gurita_model::HostId(num_hosts - 1),
            0,
        )
        .expect("hosts exist");
    let core_link = sample_path[sample_path.len() / 2];

    let healthy = scenario.run_all(&SchedulerKind::PAPER_SET);

    let severities = [0.5, 0.2, 0.05];
    let durations = [1.0, 4.0];
    // Each (severity, duration) cell replays the byte-identical workload
    // and fault script, so the grid is embarrassingly parallel.
    let cells =
        gurita_experiments::par::par_run(opts.par, severities.len() * durations.len(), |cell| {
            let severity = severities[cell / durations.len()];
            let duration = durations[cell % durations.len()];
            let schedule = ChaosGenerator::new(
                ChaosConfig {
                    num_hosts,
                    brownout_fraction: 0.25,
                    severity,
                    start: 0.5,
                    duration,
                    fail_links: vec![core_link],
                },
                opts.seed,
            )
            .generate();
            let faulted = scenario.run_all_with_faults(&SchedulerKind::PAPER_SET, &schedule);
            let rows = healthy
                .iter()
                .zip(&faulted)
                .map(|(h, f)| {
                    (
                        f.scheduler.clone(),
                        h.avg_jct(),
                        f.avg_jct(),
                        f.avg_jct() / h.avg_jct(),
                    )
                })
                .collect();
            ChaosCell {
                severity,
                duration,
                faults: schedule.len(),
                rows,
            }
        });

    for cell in &cells {
        let pairs: Vec<(&str, String)> = cell
            .rows
            .iter()
            .map(|(name, h, f, infl)| {
                (
                    name.as_str(),
                    format!("{h:.3}s -> {f:.3}s avg JCT ({infl:.2}x inflation)"),
                )
            })
            .collect();
        println!(
            "{}",
            report::render_kv(
                &format!(
                    "Chaos: severity {:.2} (hosts keep {:.0}% NIC), outage {:.0}s, {} fault events",
                    cell.severity,
                    cell.severity * 100.0,
                    cell.duration,
                    cell.faults
                ),
                &pairs
            )
        );
    }
    match report::write_results_file("chaos.json", &report::to_json(&cells)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }

    if opts.control_faults {
        let (gurita, aalo) = gurita_experiments::sweeps::control_chaos_sweep(
            opts.jobs,
            opts.seed,
            opts.par,
            opts.threads,
        );
        for sweep in [&gurita, &aalo] {
            let pairs: Vec<(&str, String)> = sweep
                .points
                .iter()
                .map(|p| (p.setting.as_str(), format!("{:.3}s avg JCT", p.avg_jct)))
                .collect();
            println!("{}", report::render_kv(&sweep.parameter, &pairs));
        }
        match report::write_results_file("control_chaos.json", &report::to_json(&(&gurita, &aalo)))
        {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write results file: {e}"),
        }
    }
    gurita_experiments::trace::maybe_capture(&opts);
}
