//! Ad-hoc comparison tool: replays one scenario under the *entire*
//! scheduler roster (paper set + Gurita variants + the Varys-SEBF
//! extension) and prints the improvement table.
//!
//! ```sh
//! cargo run --release -p gurita-experiments --bin compare -- \
//!     [--jobs N] [--seed S] [--burst] [--structure fbtao|tpcds|mix]
//! ```

use gurita_experiments::metrics::{category_populations, improvement_table};
use gurita_experiments::report::render_improvement_table;
use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_workload::dags::StructureKind;

fn main() {
    let mut jobs = 60usize;
    let mut seed = 42u64;
    let mut burst = false;
    let mut structure = StructureKind::FbTao;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => jobs = it.next().and_then(|v| v.parse().ok()).unwrap_or(jobs),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--burst" => burst = true,
            "--structure" => {
                structure = match it.next().map(String::as_str) {
                    Some("tpcds") => StructureKind::TpcDs,
                    Some("mix") => StructureKind::ProductionMix,
                    _ => StructureKind::FbTao,
                }
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let scenario = if burst {
        Scenario::bursty(structure, jobs, 8, seed)
    } else {
        Scenario::trace_driven(structure, jobs, seed)
    };
    let kinds = [
        SchedulerKind::Gurita,
        SchedulerKind::GuritaSpq,
        SchedulerKind::GuritaPlus,
        SchedulerKind::Baraat,
        SchedulerKind::Pfs,
        SchedulerKind::Stream,
        SchedulerKind::Aalo,
        SchedulerKind::VarysSebf,
    ];
    let results = scenario.run_all(&kinds);
    let (reference, compared) = results.split_first().expect("roster non-empty");
    println!(
        "{}",
        render_improvement_table(
            &format!(
                "{} — {} jobs, seed {} (Gurita avg JCT {:.3}s; >1 = Gurita faster)",
                scenario.name,
                jobs,
                seed,
                reference.avg_jct()
            ),
            &improvement_table(reference, compared),
            &category_populations(reference),
        )
    );
}
