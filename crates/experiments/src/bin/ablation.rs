//! Ablation study: full Gurita against single-rule-disabled variants
//! and the clairvoyant Varys-SEBF reference (DESIGN.md experiment E8).

use gurita_experiments::{args, figures, report};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match args::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let sc = figures::ablation(&opts);
    println!(
        "{}",
        report::render_improvement_table(
            &format!(
                "Ablation — {} (Gurita avg JCT {:.3}s; factors >1 mean full Gurita is faster)",
                sc.name, sc.gurita_avg_jct
            ),
            &sc.rows,
            &sc.populations
        )
    );
    match report::write_results_file("ablation.json", &report::to_json(&sc)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    gurita_experiments::trace::maybe_capture(&opts);
}
