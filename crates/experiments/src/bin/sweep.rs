//! Sensitivity sweeps over Gurita's design parameters (queue count,
//! threshold spacing, update interval δ, HR decision latency, and
//! fault-injection robustness).

use gurita_experiments::{args, report, sweeps};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match args::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut all = vec![
        sweeps::queue_count_sweep(opts.jobs, opts.seed, opts.par),
        sweeps::threshold_sweep(opts.jobs, opts.seed, opts.par),
        sweeps::delta_sweep(opts.jobs, opts.seed, opts.par),
        sweeps::latency_sweep(opts.jobs, opts.seed, opts.par),
    ];
    let (faults_gurita, faults_pfs) = sweeps::fault_sweep(opts.jobs, opts.seed, opts.par);
    all.push(faults_gurita);
    all.push(faults_pfs);
    for sweep in &all {
        let pairs: Vec<(&str, String)> = sweep
            .points
            .iter()
            .map(|p| (p.setting.as_str(), format!("{:.3}s avg JCT", p.avg_jct)))
            .collect();
        println!(
            "{}",
            report::render_kv(&format!("Sweep: {}", sweep.parameter), &pairs)
        );
    }
    match report::write_results_file("sweeps.json", &report::to_json(&all)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
