//! Sensitivity sweeps over Gurita's design parameters (queue count,
//! threshold spacing, update interval δ, HR decision latency,
//! decentralized control-plane staleness, and fault-injection
//! robustness).

use gurita_experiments::sweeps::SweepResult;
use gurita_experiments::{args, report, sweeps};

/// Per-latency slowdown table: each point relative to the sweep's first
/// point (latency 0, the pinned centralized-identical baseline).
fn render_slowdowns(sweep: &SweepResult) -> String {
    let base = sweep.points.first().map_or(f64::NAN, |p| p.avg_jct);
    let pairs: Vec<(&str, String)> = sweep
        .points
        .iter()
        .map(|p| {
            (
                p.setting.as_str(),
                format!(
                    "{:.3}s avg JCT ({:.3}x vs latency 0)",
                    p.avg_jct,
                    p.avg_jct / base
                ),
            )
        })
        .collect();
    report::render_kv(&format!("Slowdown: {}", sweep.parameter), &pairs)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match args::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut all = vec![
        sweeps::queue_count_sweep(opts.jobs, opts.seed, opts.par, opts.threads),
        sweeps::threshold_sweep(opts.jobs, opts.seed, opts.par, opts.threads),
        sweeps::delta_sweep(opts.jobs, opts.seed, opts.par, opts.threads),
        sweeps::latency_sweep(opts.jobs, opts.seed, opts.par, opts.threads),
    ];
    let (faults_gurita, faults_pfs) =
        sweeps::fault_sweep(opts.jobs, opts.seed, opts.par, opts.threads);
    all.push(faults_gurita);
    all.push(faults_pfs);
    let (ctl_gurita, ctl_aalo) =
        sweeps::control_latency_sweep(opts.jobs, opts.seed, opts.par, opts.threads);
    println!("{}", render_slowdowns(&ctl_gurita));
    println!("{}", render_slowdowns(&ctl_aalo));
    all.push(ctl_gurita);
    all.push(ctl_aalo);
    for sweep in &all {
        let pairs: Vec<(&str, String)> = sweep
            .points
            .iter()
            .map(|p| (p.setting.as_str(), format!("{:.3}s avg JCT", p.avg_jct)))
            .collect();
        println!(
            "{}",
            report::render_kv(&format!("Sweep: {}", sweep.parameter), &pairs)
        );
    }
    match report::write_results_file("sweeps.json", &report::to_json(&all)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    gurita_experiments::trace::maybe_capture(&opts);
}
