//! Reproduces the analytic motivation examples (Figures 2 and 4).

use gurita_experiments::{motivation, report};

fn main() {
    let (fig2_tbs, fig2_stage) = motivation::figure2();
    let (fig4_a_first, fig4_blocked_first) = motivation::figure4();
    let out = report::render_kv(
        "Motivation examples",
        &[
            (
                "fig2 avg JCT, TBS priority",
                format!("{fig2_tbs:.2} (paper: 6.25)"),
            ),
            (
                "fig2 avg JCT, per-stage priority",
                format!("{fig2_stage:.2} (paper: 5.50; consistent replay: 5.00)"),
            ),
            (
                "fig4 avg JCT, blocking job first",
                format!("{fig4_a_first:.2} (paper: 4.25)"),
            ),
            (
                "fig4 avg JCT, blocked jobs first",
                format!("{fig4_blocked_first:.2} (paper: 3.50)"),
            ),
        ],
    );
    println!("{out}");
    match report::write_results_file("motivation.txt", &out) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
