//! Regenerates Figure 7; see `gurita_experiments::figures` for the
//! scenario definitions.

use gurita_experiments::{args, charts, figures, report};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match args::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let results = figures::fig7(&opts);
    for sc in &results {
        println!(
            "{}",
            report::render_improvement_table(
                &format!(
                    "Figure 7 — {} (Gurita avg JCT {:.3}s)",
                    sc.name, sc.gurita_avg_jct
                ),
                &sc.rows,
                &sc.populations
            )
        );
    }
    for sc in &results {
        println!("{}", charts::overall_chart(&sc.name, &sc.rows));
    }
    match report::write_results_file("fig7.json", &report::to_json(&results)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    gurita_experiments::trace::maybe_capture(&opts);
}
