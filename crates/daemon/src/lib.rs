//! Service mode: the `guritad` scheduling daemon and its `gctl` client.
//!
//! The offline harness answers "what would this trace have done"; this
//! crate turns the same engine into a long-running *service* that
//! accepts work it has never seen. It exists because the PR-8 refactor
//! made [`Engine`](gurita_sim::runtime::Engine) steppable and openly
//! admitting: `submit_job` seeds the dirty-component set exactly like a
//! t=0 arrival, so online admission reuses the incremental-recompute
//! path unchanged and an online run is bit-for-bit identical to the
//! offline run of the same workload.
//!
//! Layering, bottom up:
//!
//! - [`protocol`] — line-delimited JSON over a Unix socket: `submit`
//!   (job DAG + `depends_on` names), `status`, `queue`, `cancel`,
//!   `stats`, `metrics`, `ping`, `drain`, `shutdown`.
//! - [`registry`] — the dependency gate: named jobs are **held** until
//!   every parent completes, then released into the engine;
//!   cancellation cascades through held descendants.
//! - [`server`] — [`serve`](server::serve) owns the engine on the sim
//!   thread, translates socket lines into commands over an mpsc
//!   channel, and paces virtual time against the wall clock
//!   (`pace` simulated seconds per wall second, `0` = as fast as
//!   possible).
//! - [`client`] — typed [`Client`](client::Client) wrapper used by
//!   `gctl`, the online-arrivals driver, and the integration tests.
//! - [`metrics_http`] — optional Prometheus scrape endpoint
//!   (`--metrics-addr`): a minimal HTTP/1.1 listener that snapshots
//!   the shared `gurita-metrics` registry the engine's
//!   [`MetricsSink`](gurita_sim::metrics::MetricsSink) records into.
//!
//! Binaries: `guritad` (the daemon), `gctl` (submit/status/queue
//! /cancel/stats/metrics/top/drain from the shell, including a
//! `gqueue -t`-style dependency tree and a polling `top` view), and
//! `online_arrivals` (E13: drives a generated bursty trace through a
//! daemon end-to-end).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod metrics_http;
pub mod protocol;
pub mod registry;
pub mod server;
