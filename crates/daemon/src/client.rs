//! Typed client for the guritad socket, used by `gctl`, the
//! online-arrivals experiment driver, and the integration tests.

use crate::protocol::{read_line, write_line, DaemonStats, JobView, Request, Response};
use gurita_model::JobSpec;
use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// One connection to a running daemon. Requests are answered in order
/// on the same stream, so a `Client` is also a cheap synchronization
/// point: `submit` returning means the daemon has registered the job.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    /// Connects to the daemon socket at `path`.
    ///
    /// # Errors
    ///
    /// Connection failures (daemon not running, wrong path).
    pub fn connect(path: &Path) -> io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects, retrying for up to `timeout` while the socket does not
    /// exist yet — the standard way to wait for a freshly spawned
    /// daemon to finish binding.
    ///
    /// # Errors
    ///
    /// The last connection error once `timeout` elapses.
    pub fn connect_with_retry(path: &Path, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// I/O failures, or `UnexpectedEof` if the daemon closed mid-request.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_line(&mut self.writer, req)?;
        read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }

    /// Lifts a protocol-level failure (`ok: false`) into `io::Error` so
    /// callers get one error channel.
    fn expect_ok(resp: Response) -> io::Result<Response> {
        if resp.ok {
            Ok(resp)
        } else {
            Err(io::Error::other(
                resp.error
                    .unwrap_or_else(|| "unspecified daemon error".into()),
            ))
        }
    }

    /// Round-trip liveness check.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure.
    pub fn ping(&mut self) -> io::Result<()> {
        Self::expect_ok(self.request(&Request::bare("ping"))?).map(|_| ())
    }

    /// Submits `job` under `name`, gated on `depends_on`. Returns the
    /// daemon's view (`held` or `queued`).
    ///
    /// # Errors
    ///
    /// I/O failure or daemon rejection (duplicate name, unknown
    /// dependency, admission error).
    pub fn submit(
        &mut self,
        name: &str,
        depends_on: &[String],
        job: &JobSpec,
    ) -> io::Result<JobView> {
        let req = Request {
            cmd: "submit".into(),
            name: Some(name.to_string()),
            depends_on: depends_on.to_vec(),
            job: Some(job.clone()),
        };
        let resp = Self::expect_ok(self.request(&req)?)?;
        resp.job
            .ok_or_else(|| io::Error::other("submit response carried no job view"))
    }

    /// Fetches one job's view by name.
    ///
    /// # Errors
    ///
    /// I/O failure or unknown name.
    pub fn status(&mut self, name: &str) -> io::Result<JobView> {
        let resp = Self::expect_ok(self.request(&Request::named("status", name))?)?;
        resp.job
            .ok_or_else(|| io::Error::other("status response carried no job view"))
    }

    /// Fetches all registry jobs in submission order.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure.
    pub fn queue(&mut self) -> io::Result<Vec<JobView>> {
        let resp = Self::expect_ok(self.request(&Request::bare("queue"))?)?;
        Ok(resp.jobs.unwrap_or_default())
    }

    /// Cancels `name` (cascading to held dependents).
    ///
    /// # Errors
    ///
    /// I/O failure or daemon rejection (unknown/terminal job).
    pub fn cancel(&mut self, name: &str) -> io::Result<JobView> {
        let resp = Self::expect_ok(self.request(&Request::named("cancel", name))?)?;
        resp.job
            .ok_or_else(|| io::Error::other("cancel response carried no job view"))
    }

    /// Fetches daemon counters.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure.
    pub fn stats(&mut self) -> io::Result<DaemonStats> {
        let resp = Self::expect_ok(self.request(&Request::bare("stats"))?)?;
        resp.stats
            .ok_or_else(|| io::Error::other("stats response carried no stats"))
    }

    /// Fetches the live metrics snapshot (histograms, counters, engine
    /// health gauges).
    ///
    /// # Errors
    ///
    /// I/O or protocol failure (including daemons older than the
    /// `metrics` command).
    pub fn metrics(&mut self) -> io::Result<gurita_metrics::RegistrySnapshot> {
        let resp = Self::expect_ok(self.request(&Request::bare("metrics"))?)?;
        resp.metrics
            .ok_or_else(|| io::Error::other("metrics response carried no snapshot"))
    }

    /// Closes submissions and blocks until every job is terminal; the
    /// daemon exits after replying. Returns the final counters
    /// (makespan and mean JCT populated).
    ///
    /// # Errors
    ///
    /// I/O or protocol failure.
    pub fn drain(&mut self) -> io::Result<DaemonStats> {
        let resp = Self::expect_ok(self.request(&Request::bare("drain"))?)?;
        resp.stats
            .ok_or_else(|| io::Error::other("drain response carried no stats"))
    }

    /// Stops the daemon immediately, abandoning outstanding work.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure.
    pub fn shutdown(&mut self) -> io::Result<()> {
        Self::expect_ok(self.request(&Request::bare("shutdown"))?).map(|_| ())
    }

    /// Polls `status(name)` until the job reaches a terminal state
    /// (`done`/`cancelled`) or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// `TimedOut` on expiry; otherwise the underlying request error.
    pub fn wait(&mut self, name: &str, timeout: Duration) -> io::Result<JobView> {
        let deadline = Instant::now() + timeout;
        loop {
            let view = self.status(name)?;
            if view.state == "done" || view.state == "cancelled" {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job `{name}` still `{}` after {timeout:?}", view.state),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
