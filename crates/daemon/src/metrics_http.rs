//! A deliberately tiny HTTP/1.1 listener for Prometheus scrapes.
//!
//! Scrapers speak a narrow, well-behaved subset of HTTP: one GET, a
//! handful of headers, read the body, close. Serving that from a
//! hand-rolled loop over `std::net::TcpListener` keeps the daemon
//! dependency-free and the attack surface small — this is a metrics
//! port, not a web server. Every response closes the connection
//! (`Connection: close`), so no keep-alive state machine exists to get
//! wrong.
//!
//! The handler thread snapshots the shared
//! [`Registry`](gurita_metrics::Registry) on each request and encodes
//! it with [`gurita_metrics::encode::prometheus_text`]; it never
//! touches the engine, so a slow or hostile scraper cannot stall
//! virtual time.

use gurita_metrics::encode::prometheus_text;
use gurita_metrics::Registry as MetricsRegistry;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_WAIT: Duration = Duration::from_millis(20);

/// Per-connection socket timeouts, so a stalled scraper cannot pin the
/// handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Binds `addr` and serves Prometheus text-format scrapes of
/// `metrics` until `stop` is raised. Returns the listener thread's
/// handle and the bound address (useful with port 0); join the handle
/// after raising `stop`.
///
/// Routes: `GET /metrics` (and `GET /`) → 200 with exposition 0.0.4;
/// anything else → 404.
///
/// # Errors
///
/// Address bind failures (port in use, bad address).
pub fn serve_metrics_http(
    addr: &str,
    metrics: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
) -> io::Result<(JoinHandle<()>, std::net::SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Handled inline: scrapes are cheap and sequential
                    // handling bounds concurrent snapshot work.
                    let _ = handle_scrape(stream, &metrics);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_WAIT);
                }
                Err(_) => break,
            }
        }
    });
    Ok((handle, local))
}

/// Reads one request head, writes one response, closes.
fn handle_scrape(stream: TcpStream, metrics: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line; their content is irrelevant.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut out = reader.into_inner();
    if method != "GET" {
        return respond(
            &mut out,
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        );
    }
    // Accept query strings (`/metrics?foo=bar`) the way real scrapers
    // send them.
    let path = path.split('?').next().unwrap_or(path);
    if path == "/metrics" || path == "/" {
        let body = prometheus_text(&metrics.snapshot());
        respond(
            &mut out,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &body,
        )
    } else {
        respond(&mut out, "404 Not Found", "text/plain", "not found\n")
    }
}

fn respond(out: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: &str, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n").expect("write");
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("read");
        buf
    }

    #[test]
    fn scrape_roundtrip() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics
            .counter("gurita_events_total", "Events.", &[])
            .add(5);
        let stop = Arc::new(AtomicBool::new(false));
        let (handle, local) =
            serve_metrics_http("127.0.0.1:0", Arc::clone(&metrics), Arc::clone(&stop))
                .expect("serve");
        let addr = local.to_string();

        let ok = get(&addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("gurita_events_total 5\n"));
        let missing = get(&addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        stop.store(true, Ordering::SeqCst);
        handle.join().expect("join");
    }
}
