//! The wire protocol: line-delimited JSON over a Unix domain socket.
//!
//! One request per line, one response line per request, in order. The
//! payload types all derive the workspace serde, so a `JobSpec` travels
//! the socket in exactly the format `gurita_workload::trace` uses on
//! disk. Unknown commands produce an `ok: false` response rather than
//! closing the connection, so clients can be newer than the daemon.
//!
//! ```text
//! -> {"cmd":"submit","name":"etl","depends_on":["ingest"],"job":{...}}
//! <- {"ok":true,"job":{"name":"etl","id":1,"state":"held",...}}
//! -> {"cmd":"queue"}
//! <- {"ok":true,"jobs":[{...},{...}]}
//! -> {"cmd":"drain"}
//! <- {"ok":true,"stats":{...,"drained":true}}
//! ```

use gurita_model::JobSpec;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// A client request. `cmd` selects the operation; the remaining fields
/// are operation-specific and default to empty.
///
/// Commands: `submit` (requires `name` + `job`, optional `depends_on`),
/// `status` (`name`), `queue`, `cancel` (`name`), `stats`, `metrics`,
/// `ping`, `drain`, `shutdown`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Operation selector.
    pub cmd: String,
    /// Job name (submit/status/cancel). Names are the client-facing
    /// handle; the daemon assigns the numeric engine id.
    #[serde(default)]
    pub name: Option<String>,
    /// Names of jobs that must complete before this one is admitted.
    #[serde(default)]
    pub depends_on: Vec<String>,
    /// The job DAG to run (submit). Its id and arrival are assigned by
    /// the daemon at admission time.
    #[serde(default)]
    pub job: Option<JobSpec>,
}

impl Request {
    /// A bare command with no operands (`queue`, `stats`, `ping`,
    /// `drain`, `shutdown`).
    pub fn bare(cmd: &str) -> Self {
        Self {
            cmd: cmd.to_string(),
            name: None,
            depends_on: Vec::new(),
            job: None,
        }
    }

    /// A command addressing one job by name (`status`, `cancel`).
    pub fn named(cmd: &str, name: &str) -> Self {
        Self {
            cmd: cmd.to_string(),
            name: Some(name.to_string()),
            depends_on: Vec::new(),
            job: None,
        }
    }
}

/// Client-visible snapshot of one job in the daemon's registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Client-assigned name.
    pub name: String,
    /// Daemon-assigned dense id (the engine's `JobId` index).
    pub id: usize,
    /// Lifecycle state: `held` (waiting on dependencies), `queued`
    /// (admitted, arrival pending), `running`, `done`, or `cancelled`.
    pub state: String,
    /// Names this job waits on.
    #[serde(default)]
    pub depends_on: Vec<String>,
    /// Coflows completed so far (running jobs; totals for done ones).
    #[serde(default)]
    pub completed_coflows: usize,
    /// Total coflows in the job's DAG.
    #[serde(default)]
    pub total_coflows: usize,
    /// Virtual time of admission into the engine (absent while held).
    #[serde(default)]
    pub admitted_at: Option<f64>,
    /// Virtual completion time (done jobs only).
    #[serde(default)]
    pub completed_at: Option<f64>,
}

/// Daemon-level counters returned by `stats` and `drain`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// Current virtual time of the simulation clock.
    pub vtime: f64,
    /// Events processed by the engine.
    pub events: u64,
    /// Flows currently in flight.
    pub open_flows: usize,
    /// Coflows currently active.
    pub open_coflows: usize,
    /// Events pending in the engine's calendar.
    pub pending_events: usize,
    /// Jobs by registry state.
    pub jobs_held: usize,
    /// Jobs admitted whose arrival has not fired yet.
    pub jobs_queued: usize,
    /// Jobs actively moving bytes.
    pub jobs_running: usize,
    /// Jobs completed.
    pub jobs_done: usize,
    /// Jobs cancelled (directly or by a cancelled ancestor).
    pub jobs_cancelled: usize,
    /// Whether the engine is drained (no outstanding work).
    pub drained: bool,
    /// Final makespan — populated on the `drain` response only.
    #[serde(default)]
    pub makespan: Option<f64>,
    /// Average JCT across completed jobs — `drain` response only.
    #[serde(default)]
    pub avg_jct: Option<f64>,
}

/// A response line. `ok: false` carries `error`; payload fields are
/// populated per command.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Failure description when `ok` is false.
    #[serde(default)]
    pub error: Option<String>,
    /// The addressed job (submit/status).
    #[serde(default)]
    pub job: Option<JobView>,
    /// All registry jobs in submission order (queue).
    #[serde(default)]
    pub jobs: Option<Vec<JobView>>,
    /// Daemon counters (stats/drain).
    #[serde(default)]
    pub stats: Option<DaemonStats>,
    /// Full live-metrics snapshot (`metrics`): every registered family
    /// with its series, histogram buckets included. `gctl top` renders
    /// percentiles from this; the HTTP listener encodes the same
    /// snapshot as Prometheus text.
    #[serde(default)]
    pub metrics: Option<gurita_metrics::RegistrySnapshot>,
}

impl Response {
    /// A bare success.
    pub fn ok() -> Self {
        Self {
            ok: true,
            ..Self::default()
        }
    }

    /// A failure with a message.
    pub fn err(msg: impl Into<String>) -> Self {
        Self {
            ok: false,
            error: Some(msg.into()),
            ..Self::default()
        }
    }
}

/// Serializes `msg` as one JSON line and flushes it.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_line<T: Serialize, W: Write>(w: &mut W, msg: &T) -> io::Result<()> {
    let mut line = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("serialize: {e}")))?;
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one JSON line into `T`. Returns `Ok(None)` at end of stream
/// (peer closed), `Err` on I/O failure or malformed JSON.
///
/// # Errors
///
/// I/O errors from the reader; `InvalidData` for unparseable lines.
pub fn read_line<T: Deserialize, R: BufRead>(r: &mut R) -> io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        return serde_json::from_str(line.trim())
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad line: {e}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag};

    fn job() -> JobSpec {
        JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(1),
                1e6,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn request_roundtrips_through_a_line() {
        let req = Request {
            cmd: "submit".into(),
            name: Some("etl".into()),
            depends_on: vec!["ingest".into()],
            job: Some(job()),
        };
        let mut buf = Vec::new();
        write_line(&mut buf, &req).unwrap();
        assert!(buf.ends_with(b"\n"));
        let back: Request = read_line(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn bare_requests_omit_fields_gracefully() {
        // A minimal hand-written line must parse: defaults fill in.
        let line = b"{\"cmd\":\"queue\"}\n".to_vec();
        let req: Request = read_line(&mut line.as_slice()).unwrap().unwrap();
        assert_eq!(req, Request::bare("queue"));
    }

    #[test]
    fn response_roundtrips() {
        let resp = Response {
            ok: true,
            error: None,
            job: Some(JobView {
                name: "a".into(),
                id: 3,
                state: "running".into(),
                depends_on: vec![],
                completed_coflows: 1,
                total_coflows: 4,
                admitted_at: Some(0.5),
                completed_at: None,
            }),
            jobs: None,
            stats: Some(DaemonStats::default()),
            metrics: None,
        };
        let mut buf = Vec::new();
        write_line(&mut buf, &resp).unwrap();
        let back: Response = read_line(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn end_of_stream_is_none_and_garbage_is_invalid_data() {
        let empty: io::Result<Option<Request>> = read_line(&mut (&b""[..]));
        assert!(matches!(empty, Ok(None)));
        let garbage: io::Result<Option<Request>> = read_line(&mut (&b"not json\n"[..]));
        assert_eq!(garbage.unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}
