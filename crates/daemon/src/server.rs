//! The `guritad` server: a live engine behind a Unix domain socket.
//!
//! # Thread model
//!
//! [`serve`] owns the fabric, configuration, control plane, and
//! [`Engine`] on its own stack frame — the engine borrows all three, so
//! nothing crosses a thread boundary. Socket handling runs on side
//! threads (one acceptor plus one handler per connection) that translate
//! protocol lines into `Cmd` values over an mpsc channel; each command
//! carries its own reply sender. The serve loop alternates between
//! draining commands and stepping the engine, so a `queue` request is
//! answered between events with the live registry view — the
//! steppable-core refactor is what makes mid-run queries cheap.
//!
//! # Virtual-time pacing
//!
//! With `pace == 0` the engine runs as fast as possible, yielding to
//! the command channel every `ASAP_SLICE` events. With `pace = r`
//! the virtual clock is held to `r` simulated seconds per wall-clock
//! second: the loop computes the current wall-time horizon and calls
//! [`Engine::run_until`], sleeping on the command channel in between —
//! so a demo daemon can be watched in real time (`pace = 1`) or a
//! year of arrivals replayed in minutes (`pace = 1e6`). A `drain`
//! lifts the pace: submissions are closed at that point, so the
//! remaining jobs are flushed as fast as possible.

use crate::metrics_http::serve_metrics_http;
use crate::protocol::{read_line, write_line, DaemonStats, JobView, Request, Response};
use crate::registry::{GateState, Registry, SubmitOutcome};
use gurita_experiments::roster::SchedulerKind;
use gurita_metrics::{Gauge, Registry as MetricsRegistry};
use gurita_model::{JobId, JobSpec};
use gurita_sim::faults::FaultSchedule;
use gurita_sim::metrics::{MetricsConfig, MetricsSink};
use gurita_sim::runtime::{Engine, JobPhase, SimConfig};
use gurita_sim::telemetry::{ChromeTraceSink, JsonlSink, MultiSink, TelemetryConfig};
use gurita_sim::topology::BigSwitch;
use gurita_sim::SimError;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events stepped per slice in as-fast-as-possible mode before the loop
/// re-checks the command channel. Large enough to amortize the channel
/// poll, small enough that a `gctl` query never waits noticeably.
const ASAP_SLICE: u64 = 512;

/// How long the serve loop sleeps on the command channel when the
/// engine has nothing to do (or is ahead of the pacing horizon).
const IDLE_WAIT: Duration = Duration::from_millis(5);

/// Daemon configuration, assembled by the `guritad` binary from CLI
/// flags (and by tests directly).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path. A stale file at this path is replaced.
    pub socket: PathBuf,
    /// Hosts in the simulated big-switch fabric.
    pub hosts: usize,
    /// Per-host NIC capacity in bytes/second.
    pub capacity: f64,
    /// Scheduling scheme (any roster kind, including `*Local`).
    pub scheduler: SchedulerKind,
    /// Simulated seconds per wall-clock second; `0` = as fast as
    /// possible.
    pub pace: f64,
    /// Engine worker threads (`0` = one per core, see
    /// `gurita_sim::pool::effective_threads`).
    pub threads: usize,
    /// Scheduler update interval δ (seconds).
    pub tick_interval: f64,
    /// Decision-propagation latency for decentralized schemes.
    pub control_latency: f64,
    /// TCP address (`host:port`) for the Prometheus scrape endpoint;
    /// `None` disables the HTTP listener (the Unix-socket `metrics`
    /// command is always available).
    pub metrics_addr: Option<String>,
    /// Path prefix for trace capture: writes `<prefix>.events.jsonl`
    /// and `<prefix>.trace.json` (Perfetto), flushed on drain/shutdown
    /// and best-effort on panic.
    pub trace_out: Option<PathBuf>,
    /// Where to snapshot the metrics registry as JSON on drain/shutdown
    /// (`None` skips the artifact).
    pub metrics_out: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            socket: PathBuf::from("/tmp/guritad.sock"),
            hosts: 32,
            capacity: gurita_model::units::GBPS_10,
            scheduler: SchedulerKind::Gurita,
            pace: 0.0,
            threads: 1,
            tick_interval: 5e-3,
            control_latency: 0.0,
            metrics_addr: None,
            trace_out: None,
            metrics_out: None,
        }
    }
}

/// Parses a scheduler name as printed by
/// [`SchedulerKind::label`], case-insensitively.
pub fn parse_scheduler(name: &str) -> Option<SchedulerKind> {
    const ALL: [SchedulerKind; 13] = [
        SchedulerKind::Gurita,
        SchedulerKind::GuritaSpq,
        SchedulerKind::GuritaNoOmega,
        SchedulerKind::GuritaNoKappa,
        SchedulerKind::GuritaNoCriticalPath,
        SchedulerKind::GuritaPlus,
        SchedulerKind::Pfs,
        SchedulerKind::Baraat,
        SchedulerKind::Stream,
        SchedulerKind::Aalo,
        SchedulerKind::VarysSebf,
        SchedulerKind::GuritaLocal,
        SchedulerKind::AaloLocal,
    ];
    ALL.into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
}

/// A parsed request plus the channel to answer it on.
struct Cmd {
    req: Request,
    reply: mpsc::Sender<Response>,
}

/// Final accounting returned by [`serve`] after drain/shutdown.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Snapshot of the daemon counters at exit.
    pub stats: DaemonStats,
    /// Jobs completed, in completion order (name, id, jct).
    pub completed: Vec<(String, usize, f64)>,
}

/// Runs the daemon until a `drain` or `shutdown` request. Binds the
/// socket, spawns the acceptor, and then owns the engine on this
/// thread until every registered job is terminal (drain) or
/// immediately (shutdown).
///
/// # Errors
///
/// Socket binding/cleanup failures and engine-level [`SimError`]s
/// (mapped to `io::ErrorKind::Other`).
pub fn serve(config: &DaemonConfig) -> io::Result<ServeReport> {
    let fabric = BigSwitch::new(config.hosts, config.capacity);
    // The daemon always arms telemetry: the live `MetricsSink` is what
    // makes `metrics`/`gctl top` answerable mid-run. Offline batch
    // runs keep the zero-overhead disabled path; service mode pays the
    // armed layer (<3% at gate scale, see BENCH_sim.json
    // `events_per_sec_metrics`).
    let sim_config = SimConfig {
        tick_interval: config.tick_interval,
        threads: config.threads,
        control_latency: config.control_latency,
        telemetry: Some(TelemetryConfig::default()),
        ..SimConfig::default()
    };
    let mut plane = config.scheduler.build_plane();
    let faults = FaultSchedule::default();

    // Metrics registry shared three ways: the engine-side sink records
    // into it, the serve loop sets health gauges, and the HTTP scrape
    // thread snapshots it — all lock-free on the instrument side.
    let metrics = Arc::new(MetricsRegistry::new());
    let mut sink = MultiSink::new().with(Box::new(MetricsSink::new(
        &metrics,
        MetricsConfig {
            ref_bandwidth: config.capacity,
        },
    )));
    if let Some(prefix) = &config.trace_out {
        let jsonl = PathBuf::from(format!("{}.events.jsonl", prefix.display()));
        let chrome = PathBuf::from(format!("{}.trace.json", prefix.display()));
        sink = sink
            .with(Box::new(JsonlSink::create(&jsonl)?))
            .with(Box::new(ChromeTraceSink::new(&chrome)));
    }
    let mut engine =
        Engine::online_traced(&fabric, &sim_config, plane.as_mut(), &faults, &mut sink)
            .map_err(sim_to_io)?;

    // Socket + acceptor. Stale socket files from a crashed daemon are
    // removed; a *live* daemon on the same path loses its listener,
    // which matches systemd-style "last writer wins" socket handling.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Cmd>();
    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, tx, stop))
    };
    let scraper = match &config.metrics_addr {
        Some(addr) => {
            let (handle, local) =
                serve_metrics_http(addr, Arc::clone(&metrics), Arc::clone(&stop))?;
            eprintln!("guritad: metrics on http://{local}/metrics");
            Some(handle)
        }
        None => None,
    };

    let report = run_loop(&mut engine, &rx, config, &metrics);

    // Epilogue — runs on clean exits *and* on engine errors surfaced
    // through `report`: flush the armed sinks (JSONL/Chrome land on
    // disk here) and snapshot the metrics registry for offline
    // analysis. Panics skip this path; the sinks' Drop safety nets
    // still write what they buffered.
    let _ = engine.finish();
    if let Some(path) = &config.metrics_out {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let json = serde_json::to_string_pretty(&metrics.snapshot())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {e}")))?;
        std::fs::write(path, json)?;
    }

    stop.store(true, Ordering::SeqCst);
    drop(rx);
    let _ = acceptor.join();
    if let Some(handle) = scraper {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&config.socket);
    report
}

/// Engine-loop health gauges, refreshed by the serve loop: throughput
/// over a sliding wall-clock window, pacing lag, event backlog, and
/// registry gate counts. Readers (scrape thread, `metrics` command)
/// see whatever the last refresh wrote — exactly the staleness a
/// Prometheus gauge implies.
struct HealthGauges {
    events_per_sec: Arc<Gauge>,
    pace_lag: Arc<Gauge>,
    pending_events: Arc<Gauge>,
    vtime: Arc<Gauge>,
    jobs_held: Arc<Gauge>,
    jobs_queued: Arc<Gauge>,
    jobs_running: Arc<Gauge>,
    jobs_done: Arc<Gauge>,
    jobs_cancelled: Arc<Gauge>,
    /// (wall time, cumulative events) samples spanning the window.
    window: VecDeque<(Instant, u64)>,
    last_refresh: Option<Instant>,
}

/// Sliding window over which `gurita_engine_events_per_sec` is
/// computed.
const HEALTH_WINDOW: Duration = Duration::from_secs(5);

/// Minimum wall time between health-gauge refreshes; keeps the gauge
/// writes off the per-slice hot path.
const HEALTH_REFRESH: Duration = Duration::from_millis(100);

impl HealthGauges {
    fn new(reg: &MetricsRegistry) -> Self {
        let g = |name: &str, help: &str| reg.gauge(name, help, &[]);
        Self {
            events_per_sec: g(
                "gurita_engine_events_per_sec",
                "Engine throughput over a 5s sliding wall-clock window.",
            ),
            pace_lag: g(
                "gurita_engine_pace_lag_seconds",
                "Paced mode: how far virtual time trails the pacing horizon.",
            ),
            pending_events: g(
                "gurita_engine_pending_events",
                "Events pending in the engine's calendar.",
            ),
            vtime: g("gurita_engine_vtime_seconds", "Current virtual time."),
            jobs_held: g("gurita_registry_jobs_held", "Jobs gated on dependencies."),
            jobs_queued: g(
                "gurita_registry_jobs_queued",
                "Jobs admitted, arrival pending.",
            ),
            jobs_running: g(
                "gurita_registry_jobs_running",
                "Jobs actively moving bytes.",
            ),
            jobs_done: g("gurita_registry_jobs_done", "Jobs completed."),
            jobs_cancelled: g("gurita_registry_jobs_cancelled", "Jobs cancelled."),
            window: VecDeque::new(),
            last_refresh: None,
        }
    }

    /// Refreshes every gauge from the live engine/registry, rate-limited
    /// to [`HEALTH_REFRESH`] unless `force`d (queries force so a
    /// single-shot `gctl top` never reads stale zeros).
    fn refresh<F: gurita_sim::topology::Fabric>(
        &mut self,
        engine: &Engine<'_, F>,
        registry: &Registry,
        config: &DaemonConfig,
        started: Instant,
        force: bool,
    ) {
        let now = Instant::now();
        if !force {
            if let Some(last) = self.last_refresh {
                if now.duration_since(last) < HEALTH_REFRESH {
                    return;
                }
            }
        }
        self.last_refresh = Some(now);

        let events = engine.events_processed();
        self.window.push_back((now, events));
        while let Some(&(t, _)) = self.window.front() {
            if now.duration_since(t) > HEALTH_WINDOW && self.window.len() > 2 {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if let (Some(&(t0, e0)), true) = (self.window.front(), self.window.len() >= 2) {
            let dt = now.duration_since(t0).as_secs_f64();
            if dt > 0.0 {
                self.events_per_sec.set((events - e0) as f64 / dt);
            }
        }
        let lag = if config.pace > 0.0 {
            (started.elapsed().as_secs_f64() * config.pace - engine.now()).max(0.0)
        } else {
            0.0
        };
        self.pace_lag.set(lag);
        self.pending_events.set(engine.pending_events() as f64);
        self.vtime.set(engine.now());
        let stats = snapshot(engine, registry);
        self.jobs_held.set(stats.jobs_held as f64);
        self.jobs_queued.set(stats.jobs_queued as f64);
        self.jobs_running.set(stats.jobs_running as f64);
        self.jobs_done.set(stats.jobs_done as f64);
        self.jobs_cancelled.set(stats.jobs_cancelled as f64);
    }
}

fn sim_to_io(e: SimError) -> io::Error {
    io::Error::other(format!("engine: {e}"))
}

fn accept_loop(listener: UnixListener, tx: mpsc::Sender<Cmd>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, tx);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_WAIT);
            }
            Err(_) => break,
        }
    }
}

/// One connection: requests in, responses out, strictly in order.
fn handle_connection(stream: UnixStream, tx: mpsc::Sender<Cmd>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(req) = read_line::<Request, _>(&mut reader)? {
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx
            .send(Cmd {
                req,
                reply: reply_tx,
            })
            .is_err()
        {
            // Serve loop exited (drain finished): tell the client.
            write_line(&mut writer, &Response::err("daemon is shutting down"))?;
            break;
        }
        let resp = reply_rx
            .recv()
            .unwrap_or_else(|_| Response::err("daemon exited before replying"));
        write_line(&mut writer, &resp)?;
    }
    Ok(())
}

/// The sim-thread main loop: drain commands, step, harvest, repeat.
fn run_loop<F: gurita_sim::topology::Fabric>(
    engine: &mut Engine<'_, F>,
    rx: &mpsc::Receiver<Cmd>,
    config: &DaemonConfig,
    metrics: &MetricsRegistry,
) -> io::Result<ServeReport> {
    let mut registry = Registry::new();
    let mut harvested = 0usize; // cursor into engine.completed_jobs()
    let mut draining: Option<mpsc::Sender<Response>> = None;
    let started = Instant::now();
    let mut health = HealthGauges::new(metrics);
    let mut ctx = CmdCtx {
        config,
        metrics,
        started,
    };

    loop {
        // 1. Serve every queued command (non-blocking).
        let mut shutdown = false;
        while let Ok(cmd) = rx.try_recv() {
            if handle_cmd(
                cmd,
                engine,
                &mut registry,
                &mut draining,
                &mut health,
                &mut ctx,
            ) {
                shutdown = true;
            }
        }
        if shutdown {
            break;
        }

        // 2. Advance virtual time. A drain flushes at full speed even
        //    when paced: submissions are closed, so there is nothing
        //    left to watch in real time — only jobs to finish.
        let advanced = if config.pace <= 0.0 || draining.is_some() {
            engine.run_for(ASAP_SLICE).map_err(sim_to_io)?;
            engine.pending_events() > 0
        } else {
            let horizon = started.elapsed().as_secs_f64() * config.pace;
            engine.run_until(horizon).map_err(sim_to_io)?;
            false // paced mode always waits for the wall clock below
        };

        // 3. Harvest completions and release gated children, then
        //    refresh the health gauges (rate-limited internally).
        harvest(engine, &mut registry, &mut harvested).map_err(sim_to_io)?;
        health.refresh(engine, &registry, config, started, false);

        // 4. Drain bookkeeping: once every registered job is terminal
        //    and the engine is quiet, answer the pending drain and exit.
        if draining.is_some() && registry.all_terminal() && engine.drained() {
            let reply = draining.take().expect("checked is_some");
            let mut stats = snapshot(engine, &registry);
            stats.makespan = Some(engine.now());
            let done = engine.completed_jobs();
            if !done.is_empty() {
                stats.avg_jct = Some(done.iter().map(|j| j.jct).sum::<f64>() / done.len() as f64);
            }
            let _ = reply.send(Response {
                ok: true,
                stats: Some(stats),
                ..Response::default()
            });
            break;
        }

        // 5. Idle-wait on the channel when there is nothing to step, so
        //    a quiescent daemon costs ~0 CPU.
        if !advanced {
            match rx.recv_timeout(IDLE_WAIT) {
                Ok(cmd) => {
                    if handle_cmd(
                        cmd,
                        engine,
                        &mut registry,
                        &mut draining,
                        &mut health,
                        &mut ctx,
                    ) {
                        break;
                    }
                    harvest(engine, &mut registry, &mut harvested).map_err(sim_to_io)?;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    let completed = engine
        .completed_jobs()
        .iter()
        .map(|j| {
            let name = registry
                .entries()
                .get(j.id.index())
                .map_or_else(|| j.id.to_string(), |e| e.name.clone());
            (name, j.id.index(), j.jct)
        })
        .collect();
    let stats = snapshot(engine, &registry);
    Ok(ServeReport { stats, completed })
}

/// Read-only context `handle_cmd` needs beyond the engine/registry:
/// the daemon config (for pace-lag), the metrics registry, and the
/// loop start instant.
struct CmdCtx<'c> {
    config: &'c DaemonConfig,
    metrics: &'c MetricsRegistry,
    started: Instant,
}

/// Applies one command. Returns `true` when the loop must exit
/// immediately (shutdown).
fn handle_cmd<F: gurita_sim::topology::Fabric>(
    cmd: Cmd,
    engine: &mut Engine<'_, F>,
    registry: &mut Registry,
    draining: &mut Option<mpsc::Sender<Response>>,
    health: &mut HealthGauges,
    ctx: &mut CmdCtx<'_>,
) -> bool {
    let Cmd { req, reply } = cmd;
    let resp = match req.cmd.as_str() {
        "ping" => Response::ok(),
        "metrics" => {
            // Force-refresh so a one-shot scrape sees current health.
            health.refresh(engine, registry, ctx.config, ctx.started, true);
            Response {
                ok: true,
                metrics: Some(ctx.metrics.snapshot()),
                ..Response::default()
            }
        }
        "submit" => {
            if draining.is_some() {
                Response::err("daemon is draining: submissions closed")
            } else {
                do_submit(req, engine, registry)
            }
        }
        "status" => match req.name.as_deref().and_then(|n| registry.get(n)) {
            Some(entry) => Response {
                ok: true,
                job: Some(view(engine, registry, entry.id)),
                ..Response::default()
            },
            None => Response::err(format!(
                "unknown job `{}`",
                req.name.as_deref().unwrap_or("<missing name>")
            )),
        },
        "queue" => Response {
            ok: true,
            jobs: Some(
                (0..registry.entries().len())
                    .map(|i| view(engine, registry, i))
                    .collect(),
            ),
            ..Response::default()
        },
        "cancel" => {
            let Some(name) = req.name.as_deref() else {
                return finish_reply(reply, Response::err("cancel requires a name"));
            };
            match registry.cancel(name) {
                Ok(out) => {
                    if let Some(id) = out.engine_cancel {
                        engine.cancel_job(JobId(id));
                    }
                    let id = registry.get(name).expect("just cancelled").id;
                    Response {
                        ok: true,
                        job: Some(view(engine, registry, id)),
                        ..Response::default()
                    }
                }
                Err(e) => Response::err(e),
            }
        }
        "stats" => Response {
            ok: true,
            stats: Some(snapshot(engine, registry)),
            ..Response::default()
        },
        "drain" => {
            if draining.is_some() {
                Response::err("already draining")
            } else {
                *draining = Some(reply);
                return false; // reply deferred until terminal
            }
        }
        "shutdown" => {
            let _ = reply.send(Response::ok());
            return true;
        }
        other => Response::err(format!("unknown command `{other}`")),
    };
    finish_reply(reply, resp)
}

fn finish_reply(reply: mpsc::Sender<Response>, resp: Response) -> bool {
    let _ = reply.send(resp); // client may have hung up: not our problem
    false
}

fn do_submit<F: gurita_sim::topology::Fabric>(
    req: Request,
    engine: &mut Engine<'_, F>,
    registry: &mut Registry,
) -> Response {
    let Some(name) = req.name.as_deref() else {
        return Response::err("submit requires a name");
    };
    let Some(job) = req.job.as_ref() else {
        return Response::err("submit requires a job spec");
    };
    match registry.submit(name, req.depends_on, job) {
        Ok(SubmitOutcome::Ready(id, spec)) => match admit(engine, registry, id, &spec) {
            Ok(()) => Response {
                ok: true,
                job: Some(view(engine, registry, id)),
                ..Response::default()
            },
            Err(e) => Response::err(format!("admission failed: {e}")),
        },
        Ok(SubmitOutcome::Held(id)) => Response {
            ok: true,
            job: Some(view(engine, registry, id)),
            ..Response::default()
        },
        Err(e) => Response::err(e),
    }
}

/// Admits a released spec into the engine at the current virtual time
/// (client-side arrivals in the future are honored; past ones clamp).
fn admit<F: gurita_sim::topology::Fabric>(
    engine: &mut Engine<'_, F>,
    registry: &mut Registry,
    id: usize,
    spec: &JobSpec,
) -> Result<(), SimError> {
    engine.submit_job(spec.clone())?;
    registry.mark_admitted(id, engine.now());
    Ok(())
}

/// Pulls newly completed jobs out of the engine, marks them done in the
/// registry, and admits any children this releases. Loops because an
/// admitted child could in principle already be complete (zero-volume
/// jobs complete at admission time only after events run, so one pass
/// per call is enough in practice — the loop is for the cursor).
fn harvest<F: gurita_sim::topology::Fabric>(
    engine: &mut Engine<'_, F>,
    registry: &mut Registry,
    harvested: &mut usize,
) -> Result<(), SimError> {
    while *harvested < engine.completed_jobs().len() {
        let jr = &engine.completed_jobs()[*harvested];
        let (id, at) = (jr.id.index(), jr.completed_at);
        *harvested += 1;
        if id >= registry.entries().len() {
            continue; // not a registry job (defensive; should not happen)
        }
        for (child, spec) in registry.complete(id, at) {
            admit(engine, registry, child, &spec)?;
        }
    }
    Ok(())
}

/// Builds the client view of registry job `id`, refining the registry's
/// `Admitted` into `queued`/`running` from the live engine phase.
fn view<F: gurita_sim::topology::Fabric>(
    engine: &Engine<'_, F>,
    registry: &Registry,
    id: usize,
) -> JobView {
    let entry = &registry.entries()[id];
    let (state, completed_coflows, completed_at) = match entry.state {
        GateState::Held => ("held".to_string(), 0, None),
        GateState::Cancelled => ("cancelled".to_string(), 0, None),
        GateState::Done => ("done".to_string(), entry.total_coflows, entry.completed_at),
        GateState::Admitted => match engine.job_phase(JobId(id)) {
            JobPhase::Pending => ("queued".to_string(), 0, None),
            JobPhase::Running { progress } => {
                ("running".to_string(), progress.completed_coflows, None)
            }
            // The registry completes at the next harvest; report the
            // engine's truth in the interim.
            JobPhase::Completed { at } => ("done".to_string(), entry.total_coflows, Some(at)),
            JobPhase::Cancelled => ("cancelled".to_string(), 0, None),
            JobPhase::NotSubmitted => ("queued".to_string(), 0, None),
        },
    };
    JobView {
        name: entry.name.clone(),
        id,
        state,
        depends_on: entry.deps.clone(),
        completed_coflows,
        total_coflows: entry.total_coflows,
        admitted_at: entry.admitted_at,
        completed_at,
    }
}

fn snapshot<F: gurita_sim::topology::Fabric>(
    engine: &Engine<'_, F>,
    registry: &Registry,
) -> DaemonStats {
    let mut queued = 0usize;
    let mut running = 0usize;
    let mut done = 0usize;
    for e in registry.entries() {
        match e.state {
            GateState::Admitted => match engine.job_phase(JobId(e.id)) {
                JobPhase::Running { .. } => running += 1,
                JobPhase::Completed { .. } => done += 1,
                _ => queued += 1,
            },
            GateState::Done => done += 1,
            _ => {}
        }
    }
    DaemonStats {
        vtime: engine.now(),
        events: engine.events_processed(),
        open_flows: engine.open_flows(),
        open_coflows: engine.open_coflows(),
        pending_events: engine.pending_events(),
        jobs_held: registry.count(GateState::Held),
        jobs_queued: queued,
        jobs_running: running,
        jobs_done: done,
        jobs_cancelled: registry.count(GateState::Cancelled),
        drained: engine.drained(),
        makespan: None,
        avg_jct: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_labels_parse_back() {
        assert_eq!(parse_scheduler("Gurita"), Some(SchedulerKind::Gurita));
        assert_eq!(parse_scheduler("pfs"), Some(SchedulerKind::Pfs));
        assert_eq!(
            parse_scheduler("gurita@local"),
            Some(SchedulerKind::GuritaLocal)
        );
        assert_eq!(parse_scheduler("nope"), None);
    }
}
