//! The daemon's job registry and dependency gate.
//!
//! Clients name jobs and declare `depends_on` edges between names (a
//! job DAG *of* job DAGs — the engine schedules coflows inside a job,
//! the registry sequences whole jobs, like gflow's queue layer). A job
//! is **held** until every dependency has completed, then released for
//! engine admission. Cancelling a job cascades to every held
//! descendant: they can never run.
//!
//! The registry is engine-agnostic (pure bookkeeping over names and
//! ids) so the gate logic is unit-testable without a socket or a
//! simulation; the server layer glues it to a live
//! [`Engine`](gurita_sim::runtime::Engine).

use gurita_model::JobSpec;
use std::collections::HashMap;

/// Registry-level lifecycle of a named job. The server refines
/// `Admitted` into queued/running via the engine's phase when building
/// client views.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateState {
    /// Waiting on dependencies; spec parked in the registry.
    Held,
    /// Released into the engine.
    Admitted,
    /// Completed.
    Done,
    /// Cancelled (directly or by cascade from a cancelled ancestor).
    Cancelled,
}

/// One registered job.
#[derive(Debug)]
pub struct Entry {
    /// Client-assigned name (unique).
    pub name: String,
    /// Dense daemon-assigned id; doubles as the engine `JobId` index.
    pub id: usize,
    /// Names this job waits on.
    pub deps: Vec<String>,
    /// Gate state.
    pub state: GateState,
    /// The spec, parked while held (`None` once released or cancelled).
    pub spec: Option<JobSpec>,
    /// Total coflows in the job's DAG (for progress views).
    pub total_coflows: usize,
    /// Virtual admission time (set by the server on release).
    pub admitted_at: Option<f64>,
    /// Virtual completion time.
    pub completed_at: Option<f64>,
    /// Unmet dependency edges remaining.
    unmet: usize,
}

/// What [`Registry::submit`] decided.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// All dependencies already satisfied: admit `spec` (id already
    /// stamped) into the engine now.
    Ready(usize, Box<JobSpec>),
    /// Parked until its dependencies complete.
    Held(usize),
}

/// What [`Registry::cancel`] decided. `engine_cancel` is `Some(id)`
/// when the job was already admitted and the engine must cancel it
/// too; `cascaded` lists held descendants cancelled alongside.
#[derive(Debug)]
pub struct CancelOutcome {
    /// Engine id to cancel, for already-admitted jobs.
    pub engine_cancel: Option<usize>,
    /// Names of held descendants cancelled by cascade.
    pub cascaded: Vec<String>,
}

/// Name → job table with dependency release.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<Entry>,
    by_name: HashMap<String, usize>,
    /// Parent index → child indices (one per dependency edge).
    children: HashMap<usize, Vec<usize>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// All jobs in submission order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Look up a job by name.
    pub fn get(&self, name: &str) -> Option<&Entry> {
        self.by_name.get(name).map(|&i| &self.entries[i])
    }

    /// Jobs currently in `state`.
    pub fn count(&self, state: GateState) -> usize {
        self.entries.iter().filter(|e| e.state == state).count()
    }

    /// Whether every registered job reached a terminal state
    /// (`Done` or `Cancelled`).
    pub fn all_terminal(&self) -> bool {
        self.entries
            .iter()
            .all(|e| matches!(e.state, GateState::Done | GateState::Cancelled))
    }

    /// Registers `spec` under `name`, gated on `deps`. Dependencies
    /// must already be registered (no forward references) and not
    /// cancelled. The spec's job id is re-stamped with the dense
    /// registry id — client-side ids are ignored.
    ///
    /// # Errors
    ///
    /// A human-readable message for duplicate names, unknown
    /// dependencies, or dependencies that can never complete.
    pub fn submit(
        &mut self,
        name: &str,
        deps: Vec<String>,
        spec: &JobSpec,
    ) -> Result<SubmitOutcome, String> {
        if self.by_name.contains_key(name) {
            return Err(format!("job name `{name}` already exists"));
        }
        let mut unmet = 0usize;
        let mut parent_idx = Vec::with_capacity(deps.len());
        for dep in &deps {
            let Some(&pi) = self.by_name.get(dep) else {
                return Err(format!("unknown dependency `{dep}`"));
            };
            match self.entries[pi].state {
                GateState::Cancelled => {
                    return Err(format!("dependency `{dep}` was cancelled"));
                }
                GateState::Done => {}
                GateState::Held | GateState::Admitted => unmet += 1,
            }
            parent_idx.push(pi);
        }
        let id = self.entries.len();
        let spec = spec.with_id(id);
        let total_coflows = spec.coflows().len();
        let held = unmet > 0;
        self.entries.push(Entry {
            name: name.to_string(),
            id,
            deps,
            state: if held {
                GateState::Held
            } else {
                GateState::Admitted
            },
            spec: held.then(|| spec.clone()),
            total_coflows,
            admitted_at: None,
            completed_at: None,
            unmet,
        });
        self.by_name.insert(name.to_string(), id);
        for pi in parent_idx {
            self.children.entry(pi).or_default().push(id);
        }
        Ok(if held {
            SubmitOutcome::Held(id)
        } else {
            SubmitOutcome::Ready(id, Box::new(spec))
        })
    }

    /// Stamps the admission time of a released job.
    pub fn mark_admitted(&mut self, id: usize, vtime: f64) {
        self.entries[id].admitted_at = Some(vtime);
    }

    /// Records completion of job `id` at virtual time `at` and returns
    /// the held children this releases, ready for engine admission
    /// (specs id-stamped), in registration order.
    pub fn complete(&mut self, id: usize, at: f64) -> Vec<(usize, JobSpec)> {
        self.entries[id].state = GateState::Done;
        self.entries[id].completed_at = Some(at);
        let mut released = Vec::new();
        if let Some(children) = self.children.get(&id).cloned() {
            for c in children {
                let e = &mut self.entries[c];
                if e.state != GateState::Held {
                    continue;
                }
                e.unmet -= 1;
                if e.unmet == 0 {
                    e.state = GateState::Admitted;
                    let spec = e.spec.take().expect("held job retains its spec");
                    released.push((c, spec));
                }
            }
        }
        released
    }

    /// Cancels `name` and cascades to every held descendant.
    ///
    /// # Errors
    ///
    /// A message when the name is unknown or already terminal.
    pub fn cancel(&mut self, name: &str) -> Result<CancelOutcome, String> {
        let Some(&i) = self.by_name.get(name) else {
            return Err(format!("unknown job `{name}`"));
        };
        match self.entries[i].state {
            GateState::Done => return Err(format!("job `{name}` already completed")),
            GateState::Cancelled => return Err(format!("job `{name}` already cancelled")),
            GateState::Held | GateState::Admitted => {}
        }
        let engine_cancel = (self.entries[i].state == GateState::Admitted).then_some(i);
        self.entries[i].state = GateState::Cancelled;
        self.entries[i].spec = None;
        // Cascade: any held descendant transitively waiting on this job
        // can never run.
        let mut cascaded = Vec::new();
        let mut stack = vec![i];
        while let Some(p) = stack.pop() {
            if let Some(children) = self.children.get(&p) {
                for &c in children {
                    if self.entries[c].state == GateState::Held {
                        self.entries[c].state = GateState::Cancelled;
                        self.entries[c].spec = None;
                        cascaded.push(self.entries[c].name.clone());
                        stack.push(c);
                    }
                }
            }
        }
        Ok(CancelOutcome {
            engine_cancel,
            cascaded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag};

    fn spec() -> JobSpec {
        JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(1),
                1e6,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn chain_releases_in_order() {
        let mut r = Registry::new();
        let a = r.submit("a", vec![], &spec()).unwrap();
        assert!(matches!(a, SubmitOutcome::Ready(0, _)));
        let b = r.submit("b", vec!["a".into()], &spec()).unwrap();
        assert!(matches!(b, SubmitOutcome::Held(1)));
        let c = r.submit("c", vec!["b".into()], &spec()).unwrap();
        assert!(matches!(c, SubmitOutcome::Held(2)));

        let released = r.complete(0, 1.0);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].0, 1);
        assert_eq!(released[0].1.id().index(), 1, "spec re-stamped");
        assert!(r.complete(1, 2.0).iter().any(|(id, _)| *id == 2));
        assert!(!r.all_terminal());
        r.complete(2, 3.0);
        assert!(r.all_terminal());
    }

    #[test]
    fn fan_in_waits_for_all_parents() {
        let mut r = Registry::new();
        r.submit("a", vec![], &spec()).unwrap();
        r.submit("b", vec![], &spec()).unwrap();
        r.submit("join", vec!["a".into(), "b".into()], &spec())
            .unwrap();
        assert!(r.complete(0, 1.0).is_empty(), "one parent is not enough");
        let released = r.complete(1, 2.0);
        assert_eq!(released.len(), 1);
        assert_eq!(r.get("join").unwrap().state, GateState::Admitted);
    }

    #[test]
    fn dependency_on_done_job_is_immediately_ready() {
        let mut r = Registry::new();
        r.submit("a", vec![], &spec()).unwrap();
        r.complete(0, 1.0);
        let b = r.submit("b", vec!["a".into()], &spec()).unwrap();
        assert!(matches!(b, SubmitOutcome::Ready(1, _)));
    }

    #[test]
    fn rejects_duplicates_unknowns_and_cancelled_deps() {
        let mut r = Registry::new();
        r.submit("a", vec![], &spec()).unwrap();
        assert!(r.submit("a", vec![], &spec()).is_err());
        assert!(r.submit("b", vec!["ghost".into()], &spec()).is_err());
        r.cancel("a").unwrap();
        let err = r.submit("c", vec!["a".into()], &spec()).unwrap_err();
        assert!(err.contains("cancelled"), "{err}");
    }

    #[test]
    fn cancel_cascades_through_held_descendants() {
        let mut r = Registry::new();
        r.submit("root", vec![], &spec()).unwrap();
        r.submit("mid", vec!["root".into()], &spec()).unwrap();
        r.submit("leaf", vec!["mid".into()], &spec()).unwrap();
        r.submit("other", vec![], &spec()).unwrap();
        let out = r.cancel("root").unwrap();
        assert_eq!(
            out.engine_cancel,
            Some(0),
            "admitted root cancels in-engine"
        );
        assert_eq!(out.cascaded, vec!["mid".to_string(), "leaf".to_string()]);
        assert_eq!(r.get("other").unwrap().state, GateState::Admitted);
        assert!(r.cancel("root").is_err(), "double cancel rejected");
        assert_eq!(r.count(GateState::Cancelled), 3);
    }
}
