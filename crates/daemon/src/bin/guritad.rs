//! `guritad` — the Gurita scheduling daemon.
//!
//! Runs a live simulation engine behind a Unix socket and accepts
//! online job submissions (see `gctl`). Exits 0 after a clean `drain`
//! or `shutdown`.
//!
//! ```text
//! guritad --socket /tmp/guritad.sock --scheduler Gurita --pace 0
//! ```

use gurita_daemon::server::{parse_scheduler, serve, DaemonConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
guritad — the Gurita scheduling daemon

USAGE:
    guritad [OPTIONS]

OPTIONS:
    --socket <PATH>        socket path            [default: /tmp/guritad.sock]
    --hosts <N>            fabric size (hosts)    [default: 32]
    --capacity-gbps <F>    per-host NIC, Gbit/s   [default: 10]
    --scheduler <NAME>     roster label, e.g. Gurita, PFS, Aalo, Gurita@local
    --pace <F>             sim seconds per wall second; 0 = as fast as possible
    --threads <N>          engine worker threads; 0 = one per core
                           [default: $GURITA_THREADS or 1]
    --tick <F>             scheduler update interval δ, seconds [default: 5e-3]
    --control-latency <F>  decision-propagation latency, seconds [default: 0]
    --metrics-addr <ADDR>  serve Prometheus text-format on http://ADDR/metrics
                           (e.g. 127.0.0.1:9184; port 0 picks a free port)
    --trace-out <PREFIX>   capture telemetry to PREFIX.events.jsonl and
                           PREFIX.trace.json (Perfetto), flushed on
                           drain/shutdown and best-effort on panic
    --metrics-out <PATH>   write the final metrics snapshot as JSON
                           [default: results/daemon_metrics.json]
    -h, --help             print this help
";

fn parse_args() -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig {
        metrics_out: Some(PathBuf::from("results/daemon_metrics.json")),
        ..DaemonConfig::default()
    };
    if let Ok(t) = std::env::var("GURITA_THREADS") {
        config.threads = t
            .parse()
            .map_err(|_| format!("GURITA_THREADS must be an integer, got `{t}`"))?;
    }
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--socket" => config.socket = PathBuf::from(value("--socket")?),
            "--hosts" => {
                config.hosts = value("--hosts")?
                    .parse()
                    .map_err(|e| format!("--hosts: {e}"))?;
            }
            "--capacity-gbps" => {
                let gbps: f64 = value("--capacity-gbps")?
                    .parse()
                    .map_err(|e| format!("--capacity-gbps: {e}"))?;
                config.capacity = gbps * 1e9 / 8.0;
            }
            "--scheduler" => {
                let name = value("--scheduler")?;
                config.scheduler =
                    parse_scheduler(&name).ok_or_else(|| format!("unknown scheduler `{name}`"))?;
            }
            "--pace" => {
                config.pace = value("--pace")?
                    .parse()
                    .map_err(|e| format!("--pace: {e}"))?;
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--tick" => {
                config.tick_interval = value("--tick")?
                    .parse()
                    .map_err(|e| format!("--tick: {e}"))?;
            }
            "--control-latency" => {
                config.control_latency = value("--control-latency")?
                    .parse()
                    .map_err(|e| format!("--control-latency: {e}"))?;
            }
            "--metrics-addr" => config.metrics_addr = Some(value("--metrics-addr")?),
            "--trace-out" => config.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--metrics-out" => config.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("guritad: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "guritad: {} on {} hosts, socket {}, pace {}",
        config.scheduler.label(),
        config.hosts,
        config.socket.display(),
        if config.pace <= 0.0 {
            "max".to_string()
        } else {
            format!("{}x", config.pace)
        }
    );
    match serve(&config) {
        Ok(report) => {
            eprintln!(
                "guritad: exiting — vtime {:.6}s, {} events, {} done / {} cancelled",
                report.stats.vtime,
                report.stats.events,
                report.stats.jobs_done,
                report.stats.jobs_cancelled
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("guritad: {e}");
            ExitCode::FAILURE
        }
    }
}
