//! `gctl` — command-line client for a running `guritad`.
//!
//! ```text
//! gctl submit ingest --flows 4 --mb 64
//! gctl submit etl --after ingest --flows 8 --mb 32
//! gctl queue -t          # gqueue-style dependency tree
//! gctl drain             # close submissions, wait, print final stats
//! ```

use gurita_daemon::client::Client;
use gurita_daemon::protocol::JobView;
use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
gctl — control a running guritad

USAGE:
    gctl [--socket <PATH>] <COMMAND>

COMMANDS:
    ping                         liveness check
    submit <NAME> [opts]         submit a job
        --after <A,B,...>        hold until these jobs complete
        --file <spec.json>       job spec from a trace-format JSON file
        --flows <N>              synthesize N flows (default 4)
        --mb <F>                 megabytes per flow (default 16)
    status <NAME>                one job's state
    wait <NAME> [--timeout <S>]  block until the job is terminal
    queue [-t]                   all jobs; -t renders the dependency tree
    cancel <NAME>                cancel (cascades to held dependents)
    stats                        daemon counters
    drain                        close submissions, run to empty, stop
    shutdown                     stop immediately
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("gctl: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket = PathBuf::from("/tmp/guritad.sock");
    if args.first().map(String::as_str) == Some("--socket") {
        if args.len() < 2 {
            return fail("--socket requires a value");
        }
        socket = PathBuf::from(args.remove(1));
        args.remove(0);
    }
    let Some(cmd) = args.first().cloned() else {
        print!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd == "-h" || cmd == "--help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => return fail(format!("connect {}: {e}", socket.display())),
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "ping" => client.ping().map(|()| println!("pong")),
        "submit" => do_submit(&mut client, rest),
        "status" => match rest.first() {
            Some(name) => client.status(name).map(|v| print_job(&v)),
            None => return fail("status requires a job name"),
        },
        "wait" => do_wait(&mut client, rest),
        "queue" => {
            let tree = rest.first().map(String::as_str) == Some("-t");
            client.queue().map(|jobs| {
                if tree {
                    print_tree(&jobs);
                } else {
                    for v in &jobs {
                        print_job(v);
                    }
                }
            })
        }
        "cancel" => match rest.first() {
            Some(name) => client.cancel(name).map(|v| print_job(&v)),
            None => return fail("cancel requires a job name"),
        },
        "stats" => client.stats().map(|s| {
            println!(
                "vtime {:.6}s  events {}  open flows {}  coflows {}  \
                 held {} queued {} running {} done {} cancelled {}  drained {}",
                s.vtime,
                s.events,
                s.open_flows,
                s.open_coflows,
                s.jobs_held,
                s.jobs_queued,
                s.jobs_running,
                s.jobs_done,
                s.jobs_cancelled,
                s.drained
            );
        }),
        "drain" => client.drain().map(|s| {
            println!(
                "drained: {} done, {} cancelled, makespan {:.6}s, mean JCT {}",
                s.jobs_done,
                s.jobs_cancelled,
                s.makespan.unwrap_or(0.0),
                s.avg_jct
                    .map_or_else(|| "n/a".to_string(), |j| format!("{j:.6}s"))
            );
        }),
        "shutdown" => client.shutdown().map(|()| println!("daemon stopped")),
        other => return fail(format!("unknown command `{other}` (see --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn do_submit(client: &mut Client, rest: &[String]) -> std::io::Result<()> {
    let Some(name) = rest.first() else {
        return Err(other("submit requires a job name"));
    };
    let mut after: Vec<String> = Vec::new();
    let mut file: Option<PathBuf> = None;
    let mut flows = 4usize;
    let mut mb = 16.0f64;
    let mut i = 1;
    while i < rest.len() {
        let value = rest
            .get(i + 1)
            .ok_or_else(|| other(format!("{} requires a value", rest[i])))?;
        match rest[i].as_str() {
            "--after" => after = value.split(',').map(str::to_string).collect(),
            "--file" => file = Some(PathBuf::from(value)),
            "--flows" => flows = value.parse().map_err(|e| other(format!("--flows: {e}")))?,
            "--mb" => mb = value.parse().map_err(|e| other(format!("--mb: {e}")))?,
            f => return Err(other(format!("unknown submit flag `{f}`"))),
        }
        i += 2;
    }
    let spec = match file {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            serde_json::from_str::<JobSpec>(&text)
                .map_err(|e| other(format!("{}: {e}", path.display())))?
        }
        None => synthesize(flows, mb),
    };
    let view = client.submit(name, &after, &spec)?;
    print_job(&view);
    Ok(())
}

fn do_wait(client: &mut Client, rest: &[String]) -> std::io::Result<()> {
    let Some(name) = rest.first() else {
        return Err(other("wait requires a job name"));
    };
    let mut timeout = Duration::from_secs(60);
    if rest.get(1).map(String::as_str) == Some("--timeout") {
        let secs: f64 = rest
            .get(2)
            .ok_or_else(|| other("--timeout requires seconds"))?
            .parse()
            .map_err(|e| other(format!("--timeout: {e}")))?;
        timeout = Duration::from_secs_f64(secs);
    }
    let view = client.wait(name, timeout)?;
    print_job(&view);
    Ok(())
}

/// A synthetic single-stage job: `flows` flows of `mb` MB each on a
/// ring over the first `flows + 1` hosts — enough structure to exercise
/// real contention without needing a trace file.
fn synthesize(flows: usize, mb: f64) -> JobSpec {
    let flows = flows.max(1);
    let specs = (0..flows)
        .map(|i| FlowSpec::new(HostId(i), HostId(i + 1), mb * 1e6))
        .collect();
    JobSpec::new(
        0,
        0.0,
        vec![CoflowSpec::new(specs)],
        JobDag::chain(1).unwrap(),
    )
    .expect("synthesized job is well-formed")
}

fn other(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

fn print_job(v: &JobView) {
    let when = match (v.admitted_at, v.completed_at) {
        (_, Some(done)) => format!("  done@{done:.6}s"),
        (Some(adm), None) => format!("  admitted@{adm:.6}s"),
        (None, None) => String::new(),
    };
    let deps = if v.depends_on.is_empty() {
        String::new()
    } else {
        format!("  after [{}]", v.depends_on.join(", "))
    };
    println!(
        "{:<20} j{:<5} {:<9} {}/{} coflows{when}{deps}",
        v.name, v.id, v.state, v.completed_coflows, v.total_coflows
    );
}

/// Renders the dependency forest the way `gqueue -t` does: roots at the
/// left margin, children indented under each parent. A job with
/// several parents is shown under its first parent and marked `…` at
/// subsequent ones.
fn print_tree(jobs: &[JobView]) {
    let mut children: HashMap<&str, Vec<&JobView>> = HashMap::new();
    let mut roots: Vec<&JobView> = Vec::new();
    for v in jobs {
        match v.depends_on.first() {
            Some(parent) => children.entry(parent.as_str()).or_default().push(v),
            None => roots.push(v),
        }
    }
    for root in roots {
        render(root, "", true, true, &children);
    }
}

fn render(
    v: &JobView,
    prefix: &str,
    last: bool,
    is_root: bool,
    children: &HashMap<&str, Vec<&JobView>>,
) {
    let extra = if v.depends_on.len() > 1 {
        format!("  (+{} more parents)", v.depends_on.len() - 1)
    } else {
        String::new()
    };
    let child_prefix = if is_root {
        println!(
            "{} [{}] {}/{}{extra}",
            v.name, v.state, v.completed_coflows, v.total_coflows
        );
        String::new()
    } else {
        let branch = if last { "└── " } else { "├── " };
        println!(
            "{prefix}{branch}{} [{}] {}/{}{extra}",
            v.name, v.state, v.completed_coflows, v.total_coflows
        );
        format!("{prefix}{}", if last { "    " } else { "│   " })
    };
    let kids = children.get(v.name.as_str()).map_or(&[][..], Vec::as_slice);
    for (i, kid) in kids.iter().enumerate() {
        render(kid, &child_prefix, i + 1 == kids.len(), false, children);
    }
}
