//! `gctl` — command-line client for a running `guritad`.
//!
//! ```text
//! gctl submit ingest --flows 4 --mb 64
//! gctl submit etl --after ingest --flows 8 --mb 32
//! gctl queue -t          # gqueue-style dependency tree
//! gctl top --watch 2     # live queue/throughput/percentile view
//! gctl drain             # close submissions, wait, print final stats
//! ```

use gurita_daemon::client::Client;
use gurita_daemon::protocol::{DaemonStats, JobView};
use gurita_metrics::{HistogramSnapshot, RegistrySnapshot};
use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
gctl — control a running guritad

USAGE:
    gctl [--socket <PATH>] <COMMAND>

COMMANDS:
    ping                         liveness check
    submit <NAME> [opts]         submit a job
        --after <A,B,...>        hold until these jobs complete
        --file <spec.json>       job spec from a trace-format JSON file
        --flows <N>              synthesize N flows (default 4)
        --mb <F>                 megabytes per flow (default 16)
    status <NAME>                one job's state
    wait <NAME> [--timeout <S>]  block until the job is terminal
    queue [-t]                   all jobs; -t renders the dependency tree
    cancel <NAME>                cancel (cascades to held dependents)
    stats                        daemon counters
    metrics                      dump the live Prometheus text exposition
    top [--watch <S>]            live view: queue, throughput, p50/p95/p99
                                 latencies; --watch refreshes every S seconds
    drain                        close submissions, run to empty, stop
    shutdown                     stop immediately
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("gctl: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket = PathBuf::from("/tmp/guritad.sock");
    if args.first().map(String::as_str) == Some("--socket") {
        if args.len() < 2 {
            return fail("--socket requires a value");
        }
        socket = PathBuf::from(args.remove(1));
        args.remove(0);
    }
    let Some(cmd) = args.first().cloned() else {
        print!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd == "-h" || cmd == "--help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => return fail(format!("connect {}: {e}", socket.display())),
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "ping" => client.ping().map(|()| println!("pong")),
        "submit" => do_submit(&mut client, rest),
        "status" => match rest.first() {
            Some(name) => client.status(name).map(|v| print_job(&v)),
            None => return fail("status requires a job name"),
        },
        "wait" => do_wait(&mut client, rest),
        "queue" => {
            let tree = rest.first().map(String::as_str) == Some("-t");
            client.queue().map(|jobs| {
                if tree {
                    print_tree(&jobs);
                } else {
                    for v in &jobs {
                        print_job(v);
                    }
                }
            })
        }
        "cancel" => match rest.first() {
            Some(name) => client.cancel(name).map(|v| print_job(&v)),
            None => return fail("cancel requires a job name"),
        },
        "stats" => client.stats().map(|s| {
            println!(
                "vtime {:.6}s  events {}  pending {}  open flows {}  coflows {}  \
                 held {} queued {} running {} done {} cancelled {}  drained {}",
                s.vtime,
                s.events,
                s.pending_events,
                s.open_flows,
                s.open_coflows,
                s.jobs_held,
                s.jobs_queued,
                s.jobs_running,
                s.jobs_done,
                s.jobs_cancelled,
                s.drained
            );
        }),
        "metrics" => client.metrics().map(|snap| {
            print!("{}", gurita_metrics::encode::prometheus_text(&snap));
        }),
        "top" => do_top(&mut client, rest),
        "drain" => client.drain().map(|s| {
            println!(
                "drained: {} done, {} cancelled, makespan {:.6}s, mean JCT {}",
                s.jobs_done,
                s.jobs_cancelled,
                s.makespan.unwrap_or(0.0),
                s.avg_jct
                    .map_or_else(|| "n/a".to_string(), |j| format!("{j:.6}s"))
            );
        }),
        "shutdown" => client.shutdown().map(|()| println!("daemon stopped")),
        other => return fail(format!("unknown command `{other}` (see --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn do_submit(client: &mut Client, rest: &[String]) -> std::io::Result<()> {
    let Some(name) = rest.first() else {
        return Err(other("submit requires a job name"));
    };
    let mut after: Vec<String> = Vec::new();
    let mut file: Option<PathBuf> = None;
    let mut flows = 4usize;
    let mut mb = 16.0f64;
    let mut i = 1;
    while i < rest.len() {
        let value = rest
            .get(i + 1)
            .ok_or_else(|| other(format!("{} requires a value", rest[i])))?;
        match rest[i].as_str() {
            "--after" => after = value.split(',').map(str::to_string).collect(),
            "--file" => file = Some(PathBuf::from(value)),
            "--flows" => flows = value.parse().map_err(|e| other(format!("--flows: {e}")))?,
            "--mb" => mb = value.parse().map_err(|e| other(format!("--mb: {e}")))?,
            f => return Err(other(format!("unknown submit flag `{f}`"))),
        }
        i += 2;
    }
    let spec = match file {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            serde_json::from_str::<JobSpec>(&text)
                .map_err(|e| other(format!("{}: {e}", path.display())))?
        }
        None => synthesize(flows, mb),
    };
    let view = client.submit(name, &after, &spec)?;
    print_job(&view);
    Ok(())
}

fn do_wait(client: &mut Client, rest: &[String]) -> std::io::Result<()> {
    let Some(name) = rest.first() else {
        return Err(other("wait requires a job name"));
    };
    let mut timeout = Duration::from_secs(60);
    if rest.get(1).map(String::as_str) == Some("--timeout") {
        let secs: f64 = rest
            .get(2)
            .ok_or_else(|| other("--timeout requires seconds"))?
            .parse()
            .map_err(|e| other(format!("--timeout: {e}")))?;
        timeout = Duration::from_secs_f64(secs);
    }
    let view = client.wait(name, timeout)?;
    print_job(&view);
    Ok(())
}

/// `gctl top`: poll `stats` + `metrics` and render a one-screen plain
/// text summary. With `--watch <S>` the view refreshes in place every
/// `S` seconds (ANSI clear + home) until interrupted.
fn do_top(client: &mut Client, rest: &[String]) -> std::io::Result<()> {
    let mut watch: Option<f64> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--watch" => {
                let secs: f64 = rest
                    .get(i + 1)
                    .ok_or_else(|| other("--watch requires seconds"))?
                    .parse()
                    .map_err(|e| other(format!("--watch: {e}")))?;
                watch = Some(secs.max(0.1));
                i += 2;
            }
            f => return Err(other(format!("unknown top flag `{f}`"))),
        }
    }
    loop {
        let stats = client.stats()?;
        let snap = client.metrics()?;
        let frame = render_top(&stats, &snap);
        if watch.is_some() {
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        std::io::Write::flush(&mut std::io::stdout())?;
        match watch {
            Some(secs) => std::thread::sleep(Duration::from_secs_f64(secs)),
            None => return Ok(()),
        }
    }
}

/// First-series value of a gauge/counter family, `0.0` when absent —
/// families only appear after their first registration, so a young
/// daemon legitimately lacks some.
fn family_value(snap: &RegistrySnapshot, name: &str) -> f64 {
    snap.family(name)
        .and_then(|f| f.series.first())
        .map_or(0.0, |s| s.value)
}

/// Merges every series of a histogram family (the per-`category`
/// partitions share one bucket layout) into a single aggregate
/// distribution.
fn merged_histogram(snap: &RegistrySnapshot, name: &str) -> Option<HistogramSnapshot> {
    let fam = snap.family(name)?;
    let mut hists = fam.series.iter().filter_map(|s| s.histogram.clone());
    let mut acc = hists.next()?;
    for h in hists {
        acc.merge(&h);
    }
    Some(acc)
}

/// One table row: count and p50/p95/p99/mean of a distribution, or
/// dashes while it is still empty.
fn dist_row(out: &mut String, label: &str, hist: Option<HistogramSnapshot>) {
    match hist {
        Some(h) if h.count > 0 => {
            let _ = writeln!(
                out,
                "  {label:<22} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.mean()
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "  {label:<22} {:>8} {:>10} {:>10} {:>10} {:>10}",
                0, "-", "-", "-", "-"
            );
        }
    }
}

fn render_top(s: &DaemonStats, snap: &RegistrySnapshot) -> String {
    let v = |name: &str| family_value(snap, name);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "guritad  vtime {:.6}s  rate {:.0} events/s  pace lag {:.3}s  drained {}",
        s.vtime,
        v("gurita_engine_events_per_sec"),
        v("gurita_engine_pace_lag_seconds"),
        if s.drained { "yes" } else { "no" }
    );
    let _ = writeln!(
        out,
        "jobs     held {}  queued {}  running {}  done {}  cancelled {}",
        s.jobs_held, s.jobs_queued, s.jobs_running, s.jobs_done, s.jobs_cancelled
    );
    let _ = writeln!(
        out,
        "engine   events {}  pending {}  open flows {}  coflows {}  starved {}",
        s.events,
        s.pending_events,
        s.open_flows,
        s.open_coflows,
        v("gurita_starved_coflows") as u64
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "latency", "count", "p50", "p95", "p99", "mean"
    );
    dist_row(
        &mut out,
        "queue wait (s)",
        merged_histogram(snap, "gurita_job_queue_wait_seconds"),
    );
    dist_row(
        &mut out,
        "jct (s)",
        merged_histogram(snap, "gurita_jct_seconds"),
    );
    dist_row(
        &mut out,
        "cct (s)",
        merged_histogram(snap, "gurita_cct_seconds"),
    );
    dist_row(
        &mut out,
        "cct slowdown (x)",
        merged_histogram(snap, "gurita_cct_slowdown"),
    );
    out.push('\n');
    let partition = if v("gurita_partition_active") > 0.0 {
        "PARTITIONED"
    } else {
        "ok"
    };
    let _ = writeln!(
        out,
        "control  delivered {}  drops {}  retransmits {}  degraded {:.3}s/{} windows  coordinator {}",
        v("gurita_control_delivered_total") as u64,
        v("gurita_control_drops_total") as u64,
        v("gurita_control_retransmits_total") as u64,
        v("gurita_control_degraded_seconds"),
        v("gurita_control_degraded_windows_total") as u64,
        partition
    );
    let _ = writeln!(
        out,
        "faults   applied {}  crashes {}  restarts {}  starvation {:.3}s/{} events",
        v("gurita_faults_applied_total") as u64,
        v("gurita_agent_crashes_total") as u64,
        v("gurita_agent_restarts_total") as u64,
        v("gurita_coflow_starvation_seconds"),
        v("gurita_coflow_starvation_events_total") as u64
    );
    out
}

/// A synthetic single-stage job: `flows` flows of `mb` MB each on a
/// ring over the first `flows + 1` hosts — enough structure to exercise
/// real contention without needing a trace file.
fn synthesize(flows: usize, mb: f64) -> JobSpec {
    let flows = flows.max(1);
    let specs = (0..flows)
        .map(|i| FlowSpec::new(HostId(i), HostId(i + 1), mb * 1e6))
        .collect();
    JobSpec::new(
        0,
        0.0,
        vec![CoflowSpec::new(specs)],
        JobDag::chain(1).unwrap(),
    )
    .expect("synthesized job is well-formed")
}

fn other(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

fn print_job(v: &JobView) {
    let when = match (v.admitted_at, v.completed_at) {
        (_, Some(done)) => format!("  done@{done:.6}s"),
        (Some(adm), None) => format!("  admitted@{adm:.6}s"),
        (None, None) => String::new(),
    };
    let deps = if v.depends_on.is_empty() {
        String::new()
    } else {
        format!("  after [{}]", v.depends_on.join(", "))
    };
    println!(
        "{:<20} j{:<5} {:<9} {}/{} coflows{when}{deps}",
        v.name, v.id, v.state, v.completed_coflows, v.total_coflows
    );
}

/// Renders the dependency forest the way `gqueue -t` does: roots at the
/// left margin, children indented under each parent. A job with
/// several parents is shown under its first parent and marked `…` at
/// subsequent ones.
fn print_tree(jobs: &[JobView]) {
    let mut children: HashMap<&str, Vec<&JobView>> = HashMap::new();
    let mut roots: Vec<&JobView> = Vec::new();
    for v in jobs {
        match v.depends_on.first() {
            Some(parent) => children.entry(parent.as_str()).or_default().push(v),
            None => roots.push(v),
        }
    }
    for root in roots {
        render(root, "", true, true, &children);
    }
}

fn render(
    v: &JobView,
    prefix: &str,
    last: bool,
    is_root: bool,
    children: &HashMap<&str, Vec<&JobView>>,
) {
    let extra = if v.depends_on.len() > 1 {
        format!("  (+{} more parents)", v.depends_on.len() - 1)
    } else {
        String::new()
    };
    let child_prefix = if is_root {
        println!(
            "{} [{}] {}/{}{extra}",
            v.name, v.state, v.completed_coflows, v.total_coflows
        );
        String::new()
    } else {
        let branch = if last { "└── " } else { "├── " };
        println!(
            "{prefix}{branch}{} [{}] {}/{}{extra}",
            v.name, v.state, v.completed_coflows, v.total_coflows
        );
        format!("{prefix}{}", if last { "    " } else { "│   " })
    };
    let kids = children.get(v.name.as_str()).map_or(&[][..], Vec::as_slice);
    for (i, kid) in kids.iter().enumerate() {
        render(kid, &child_prefix, i + 1 == kids.len(), false, children);
    }
}
