//! E13: the online-arrivals scenario — drive a generated bursty trace
//! through a live `guritad` over its socket, end to end.
//!
//! Spawns the daemon in-process (same binary artifact, same serve loop
//! the standalone `guritad` runs), connects a client, and submits every
//! job of a bursty 128-host workload as it "arrives": jobs go over the
//! wire as JSON, a deterministic subset carries `depends_on` edges so
//! the dependency gate is exercised at scale, and the queue is polled
//! mid-run to prove queries are answered while the engine is busy. The
//! run ends with `drain`, which must account for every submitted job.
//!
//! Environment:
//!
//! - `GURITA_ONLINE_JOBS` — job count (default 1000)
//! - `GURITA_THREADS` — engine worker threads (default 1, 0 = auto)
//! - `GURITA_ONLINE_OUT` — JSON results path
//!   (default `results/online_arrivals.json`)
//! - `GURITA_ONLINE_METRICS_OUT` — final live-metrics snapshot path
//!   (default `results/daemon_metrics.json`)

use gurita_daemon::client::Client;
use gurita_daemon::server::{serve, DaemonConfig, ServeReport};
use gurita_experiments::roster::SchedulerKind;
use gurita_workload::arrivals::ArrivalProcess;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::io::Result<()> {
    let num_jobs = env_usize("GURITA_ONLINE_JOBS", 1000);
    let threads = env_usize("GURITA_THREADS", 1);
    let out = PathBuf::from(
        std::env::var("GURITA_ONLINE_OUT")
            .unwrap_or_else(|_| "results/online_arrivals.json".into()),
    );
    let metrics_out = PathBuf::from(
        std::env::var("GURITA_ONLINE_METRICS_OUT")
            .unwrap_or_else(|_| "results/daemon_metrics.json".into()),
    );
    let socket = std::env::temp_dir().join(format!("guritad-e13-{}.sock", std::process::id()));

    let config = DaemonConfig {
        socket: socket.clone(),
        hosts: 128,
        scheduler: SchedulerKind::Gurita,
        threads,
        metrics_out: Some(metrics_out.clone()),
        ..DaemonConfig::default()
    };
    eprintln!(
        "online_arrivals: {num_jobs} jobs, {} threads, socket {}",
        threads,
        socket.display()
    );

    let daemon = std::thread::spawn(move || serve(&config));
    let mut client = Client::connect_with_retry(&socket, Duration::from_secs(10))?;
    client.ping()?;

    // The same bursty family the offline large-scale smoke uses, but
    // streamed job by job instead of materialized: the generator is an
    // iterator, so memory tracks the active set, not the trace length.
    let workload = WorkloadConfig {
        num_jobs,
        num_hosts: 128,
        arrivals: ArrivalProcess::Bursty {
            burst_size: 8,
            intra_gap: 2e-6,
            inter_gap: 0.05,
        },
        ..WorkloadConfig::default()
    };
    let wall = Instant::now();
    let mut submitted = 0usize;
    let mut held_at_submit = 0usize;
    let mut queries = 0usize;
    for (i, job) in JobGenerator::new(workload, 42).stream().enumerate() {
        let name = format!("job-{i:05}");
        // Every 5th job depends on its predecessor (and every 50th on
        // two parents) — a steady stream of gate releases mixed into
        // independent arrivals.
        let deps: Vec<String> = if i > 1 && i % 50 == 0 {
            vec![format!("job-{:05}", i - 1), format!("job-{:05}", i - 2)]
        } else if i > 0 && i % 5 == 0 {
            vec![format!("job-{:05}", i - 1)]
        } else {
            Vec::new()
        };
        let view = client.submit(&name, &deps, &job)?;
        if view.state == "held" {
            held_at_submit += 1;
        }
        submitted += 1;
        // Mid-run queries: the daemon answers between engine events.
        if i % 100 == 99 {
            let q = client.queue()?;
            assert_eq!(q.len(), submitted, "queue sees every submission");
            let s = client.stats()?;
            assert!(s.events > 0, "engine is live while we submit");
            queries += 1;
        }
    }

    let stats = client.drain()?;
    let wall_secs = wall.elapsed().as_secs_f64();
    let report: ServeReport = match daemon.join() {
        Ok(r) => r?,
        Err(_) => return Err(std::io::Error::other("daemon thread panicked")),
    };

    assert_eq!(stats.jobs_done, num_jobs, "drain accounts for every job");
    assert_eq!(stats.jobs_held, 0);
    assert_eq!(stats.jobs_cancelled, 0);
    assert!(stats.drained);
    assert_eq!(report.completed.len(), num_jobs);

    let makespan = stats.makespan.unwrap_or(0.0);
    let avg_jct = stats.avg_jct.unwrap_or(0.0);
    eprintln!(
        "online_arrivals: {num_jobs} jobs done in {wall_secs:.2}s wall \
         ({held_at_submit} gated, {queries} mid-run queries), \
         makespan {makespan:.3}s, mean JCT {avg_jct:.4}s, {} events",
        stats.events
    );

    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(&out)?;
    writeln!(
        f,
        "{{\n  \"scenario\": \"online_arrivals\",\n  \"jobs\": {num_jobs},\n  \
         \"threads\": {threads},\n  \"held_at_submit\": {held_at_submit},\n  \
         \"mid_run_queries\": {queries},\n  \"events\": {},\n  \
         \"makespan_s\": {makespan},\n  \"avg_jct_s\": {avg_jct},\n  \
         \"wall_seconds\": {wall_secs}\n}}",
        stats.events
    )?;
    eprintln!("online_arrivals: wrote {}", out.display());
    eprintln!(
        "online_arrivals: metrics snapshot at {}",
        metrics_out.display()
    );
    Ok(())
}
