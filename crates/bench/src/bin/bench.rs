//! Performance-trajectory tracker: times the simulator's two hot paths
//! and records the numbers in `results/BENCH_sim.json` so regressions
//! (and wins) are visible across PRs.
//!
//! Measured:
//!
//! * **events/sec** — the full event loop on the k=8 fat-tree with the
//!   FB-Tao trace-driven workload (the sweep scenario) under the
//!   evaluation-tuned Gurita scheduler;
//! * **allocate ns/flow** — the water-filling allocator on a 1024-flow
//!   Facebook-style mix, fresh-allocation and reused-scratch variants,
//!   under both SPQ and WRR;
//! * **advance ns/flow** — the per-event flow-advance sweep over the
//!   engine's SoA hot-state layout, with a pre-PR-9 AoS layout A/B
//!   alongside (see [`advance_benches`]);
//! * **control plane ns/flow** — the decentralized hot path: merging
//!   per-host reports back into a cluster observation
//!   (`merge_reports`), plus the full event loop under `Gurita@local`
//!   (events/sec) so the per-host observation-building overhead is
//!   tracked against the centralized number.
//!
//! Flags: `--jobs N` (event-loop workload size), `--seed N`.

use gurita_bench::{timed_run, BenchMeta};
use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_experiments::{args, report};
use gurita_model::HostId;
use gurita_sim::bandwidth::{allocate, Allocator, Demand, Discipline};
use gurita_sim::metrics::{MetricsConfig, MetricsSink};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::telemetry::{NullSink, TelemetryConfig};
use gurita_sim::topology::{Fabric, FatTree, LinkId};
use gurita_workload::dags::StructureKind;
use serde::Serialize;
use std::time::Instant;

/// The recorded benchmark snapshot.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Provenance: schema version, git commit, rustc, capture time.
    meta: BenchMeta,
    /// Event-loop scenario description.
    scenario: String,
    /// Jobs in the event-loop workload.
    jobs: usize,
    /// Workload seed.
    seed: u64,
    /// Simulated events processed.
    events: u64,
    /// Event-loop wall-clock seconds.
    elapsed_sec: f64,
    /// Simulated events per wall-clock second.
    events_per_sec: f64,
    /// Water-filling cost per flow, nanoseconds, per variant.
    allocate_ns_per_flow: Vec<(String, f64)>,
    /// Flow-advance sweep cost, nanoseconds per flow: the engine's SoA
    /// hot-state layout (`soa`, the gated number) against the pre-PR-9
    /// AoS layout (`aos`), plus their ratio (`aos_over_soa`). See
    /// [`advance_benches`].
    advance_ns_per_flow: Vec<(String, f64)>,
    /// Decentralized control-plane costs: `merge_reports` ns/flow over
    /// a synthetic 64-host report set, and the `Gurita@local` event
    /// loop in events/sec over the same workload as the centralized
    /// number above.
    control_plane: Vec<(String, f64)>,
    /// Large-fabric gate: the 48-pod bursty scenario (see
    /// [`large_bench`]).
    large: LargeBench,
}

/// The 48-pod large-fabric benchmark gate: a bursty FB-Tao workload on
/// the full 27,648-host fat-tree under Gurita, recording throughput,
/// path-arena effectiveness, and memory high-water mark. Fixed at 40
/// jobs / seed 42 so the recorded number is comparable across PRs
/// regardless of `--jobs`/`--seed`.
#[derive(Debug, Serialize)]
struct LargeBench {
    /// Scenario description.
    scenario: String,
    /// Fat-tree pod count (k = 48).
    pods: usize,
    /// Jobs in the workload.
    jobs: usize,
    /// Workload seed.
    seed: u64,
    /// Simulated events processed.
    events: u64,
    /// Measured-run wall-clock seconds.
    wall_sec: f64,
    /// Simulated events per wall-clock second (calendar event queue).
    events_per_sec: f64,
    /// Same run under `force_binary_heap_events` — the pre-calendar
    /// queue, kept as an A/B reference (results are asserted identical).
    events_per_sec_binary_heap: f64,
    /// Same run with the telemetry layer armed into a counting
    /// [`NullSink`] — the armed layer's intrinsic overhead (record
    /// construction + dispatch + epoch sampling). Results are asserted
    /// bit-for-bit identical to the untraced run.
    events_per_sec_telemetry: f64,
    /// Trace records the armed run emitted.
    telemetry_records: u64,
    /// Same run with a live [`MetricsSink`] armed — the full
    /// aggregation cost (category lookup, histogram binning, atomic
    /// updates) the daemon pays for live metrics. Results are asserted
    /// bit-for-bit identical; CI gates the aggregation within 3% of
    /// `events_per_sec_telemetry`, the armed discard-sink baseline
    /// (see `bench-smoke`).
    events_per_sec_metrics: f64,
    /// Same run with the intra-run component pool armed
    /// (`SimConfig::threads = 0`, one worker per available core).
    /// Results are asserted bit-for-bit identical to the serial run.
    events_per_sec_parallel: f64,
    /// `events_per_sec_parallel / events_per_sec` — ≈1.0 on a
    /// single-core host (the pool is bypassed), >1 on multi-core
    /// runners. CI gates on this ratio (see `bench-parallel`).
    parallel_speedup: f64,
    /// Effective worker count of the parallel run
    /// (`effective_threads(0)`).
    threads_used: usize,
    /// Distinct interned paths in the engine's arena at end of run.
    path_arena_unique: usize,
    /// Path-arena backing storage (interned link ids + span table),
    /// bytes. Replaces the v2 `path_arena_hit_rate` gauge, which is
    /// structurally 0 at this scale — the per-flow ECMP salt spreads
    /// host pairs across (k/2)² = 576 distinct routes, so 40 bursty
    /// jobs never re-intern a path (see DESIGN.md, "Scaling to 48
    /// pods"). Storage can actually move: it tracks how much path state
    /// the interning keeps resident, and drops if dedup improves.
    path_arena_storage_bytes: usize,
    /// Process peak RSS (`VmHWM`) after the runs, bytes; 0 when
    /// `/proc/self/status` is unavailable.
    peak_rss_bytes: u64,
}

/// Reads the process peak-RSS high-water mark from `/proc/self/status`
/// (`VmHWM`, reported in kB). Returns 0 on non-Linux or parse failure.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Runs the 48-pod gate scenario: warm-up, a measured run on the
/// calendar event queue, an A/B run on the binary heap, and an A/B run
/// with the intra-run component pool armed — every variant's
/// `RunResult` must be bit-for-bit identical.
fn large_bench() -> LargeBench {
    const JOBS: usize = 40;
    const SEED: u64 = 42;
    let scenario = Scenario::bursty(StructureKind::FbTao, JOBS, 48, SEED);
    let jobs = scenario.jobs();
    let run = |force_heap: bool, threads: usize| {
        let fabric = FatTree::new(scenario.pods).expect("valid pods");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: scenario.tick_interval,
                force_binary_heap_events: force_heap,
                threads,
                ..SimConfig::default()
            },
        );
        let mut sched = SchedulerKind::Gurita.build();
        sim.run(jobs.clone(), sched.as_mut())
    };
    let _ = run(false, 1);
    let (result, tp) = timed_run(|| run(false, 1));
    let (heap_result, heap_tp) = timed_run(|| run(true, 1));
    assert!(
        result == heap_result,
        "calendar queue and binary heap must produce identical results"
    );
    // Parallel A/B: the same run fanning each epoch's disjoint dirty
    // components across one worker per core. The determinism contract
    // (`SimConfig::threads`) says the results are bit-for-bit those of
    // the serial run; assert it at gate scale on every capture.
    let threads_used = gurita_sim::pool::effective_threads(0);
    let (par_result, par_tp) = timed_run(|| run(false, 0));
    assert!(
        result == par_result,
        "parallel recomputation must produce identical results"
    );
    // Armed-telemetry A/B: same run streaming into a counting discard
    // sink. Measures the armed layer's intrinsic cost and pins the
    // bit-for-bit contract at gate scale.
    let mut sink = NullSink::new();
    let (traced_result, traced_tp) = timed_run(|| {
        let fabric = FatTree::new(scenario.pods).expect("valid pods");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: scenario.tick_interval,
                telemetry: Some(TelemetryConfig::default()),
                ..SimConfig::default()
            },
        );
        let mut sched = SchedulerKind::Gurita.build();
        sim.run_traced(jobs.clone(), sched.as_mut(), &mut sink)
    });
    assert!(
        result == traced_result,
        "telemetry must not change the result"
    );
    // Armed-metrics A/B: the daemon's live-aggregation path — every
    // lifecycle record folded into lock-free histograms/counters as it
    // streams. Pins both the <3% overhead budget (gated in CI) and the
    // purely-observational contract at gate scale.
    let registry = std::sync::Arc::new(gurita_metrics::Registry::new());
    let mut metrics_sink = MetricsSink::new(
        &registry,
        MetricsConfig {
            ref_bandwidth: 1.25e9,
        },
    );
    let (metrics_result, metrics_tp) = timed_run(|| {
        let fabric = FatTree::new(scenario.pods).expect("valid pods");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: scenario.tick_interval,
                telemetry: Some(TelemetryConfig::default()),
                ..SimConfig::default()
            },
        );
        let mut sched = SchedulerKind::Gurita.build();
        sim.run_traced(jobs.clone(), sched.as_mut(), &mut metrics_sink)
    });
    assert!(
        result == metrics_result,
        "live metrics aggregation must not change the result"
    );
    LargeBench {
        scenario: scenario.name.clone(),
        pods: scenario.pods,
        jobs: JOBS,
        seed: SEED,
        events: result.events,
        wall_sec: tp.wall_sec,
        events_per_sec: tp.events_per_sec,
        events_per_sec_binary_heap: heap_tp.events_per_sec,
        events_per_sec_telemetry: traced_tp.events_per_sec,
        telemetry_records: sink.records,
        events_per_sec_metrics: metrics_tp.events_per_sec,
        events_per_sec_parallel: par_tp.events_per_sec,
        parallel_speedup: if tp.events_per_sec > 0.0 {
            par_tp.events_per_sec / tp.events_per_sec
        } else {
            0.0
        },
        threads_used,
        path_arena_unique: result.path_arena_unique,
        path_arena_storage_bytes: result.path_arena_storage_bytes,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Times `merge_reports` reassembling a 64-host split of 128 coflows ×
/// 16 flows (2048 flows total) — the per-decision cost the
/// decentralized plane adds on top of observation building.
fn merge_benches() -> Vec<(String, f64)> {
    use gurita_model::{CoflowId, FlowId, JobId};
    use gurita_sim::control::{merge_reports, HostReport, LocalObservation};
    use gurita_sim::sched::{CoflowObs, FlowObs, JobObs};

    const HOSTS: usize = 64;
    const COFLOWS: usize = 128;
    const FLOWS_PER_COFLOW: usize = 16;
    const ITERS: u32 = 200;
    let reports: Vec<HostReport> = (0..HOSTS)
        .map(|h| {
            let coflows: Vec<CoflowObs> = (0..COFLOWS)
                .filter(|c| c % HOSTS <= h) // uneven split across hosts
                .map(|c| {
                    let flows: Vec<FlowObs> = (0..FLOWS_PER_COFLOW)
                        .filter(|f| (c + f) % 4 == h % 4)
                        .map(|f| FlowObs {
                            id: FlowId(c * FLOWS_PER_COFLOW + f),
                            bytes_received: (c * f) as f64 * 1.0e3,
                            open: f % 5 != 0,
                        })
                        .collect();
                    let bytes: f64 = flows.iter().map(|f| f.bytes_received).sum();
                    CoflowObs {
                        id: CoflowId(c),
                        job: JobId(c / 4),
                        dag_vertex: c % 4,
                        dag_stage: c % 3,
                        activated_at: c as f64 * 1e-3,
                        open_flows: flows.iter().filter(|f| f.open).count(),
                        bytes_received: bytes,
                        max_flow_bytes_received: flows
                            .iter()
                            .map(|f| f.bytes_received)
                            .fold(0.0, f64::max),
                        flows,
                    }
                })
                .filter(|c| !c.flows.is_empty())
                .collect();
            let mut jobs: Vec<JobObs> = Vec::new();
            for (ci, c) in coflows.iter().enumerate() {
                match jobs.iter_mut().find(|j| j.id == c.job) {
                    Some(j) => {
                        j.bytes_received += c.bytes_received;
                        j.active_coflows.push(ci);
                    }
                    None => jobs.push(JobObs {
                        id: c.job,
                        arrival: 0.0,
                        completed_coflows: 0,
                        completed_stages: 0,
                        completed_bytes: 0.0,
                        bytes_received: c.bytes_received,
                        active_coflows: vec![ci],
                    }),
                }
            }
            jobs.sort_unstable_by_key(|j| j.id);
            HostReport::verbatim(LocalObservation {
                host: HostId(h),
                now: 1.0,
                coflows,
                jobs,
            })
        })
        .collect();
    let total_flows: usize = reports
        .iter()
        .flat_map(|r| &r.coflows)
        .map(|c| c.flows.len())
        .sum();
    let start = Instant::now();
    let mut merged_flows = 0usize;
    for _ in 0..ITERS {
        let merged = merge_reports(1.0, &reports);
        merged_flows = merged.coflows.iter().map(|c| c.flows.len()).sum();
    }
    assert_eq!(merged_flows, total_flows, "merge must not drop flows");
    let ns = start.elapsed().as_nanos() as f64 / f64::from(ITERS) / total_flows as f64;
    vec![(
        format!("merge_reports_{HOSTS}hosts_{total_flows}flows_ns_per_flow"),
        ns,
    )]
}

/// Deterministic pseudo-random flow set over a k-pod fat-tree (same
/// generator as the `bandwidth` criterion bench).
fn flow_paths(k: usize, flows: usize) -> Vec<Vec<LinkId>> {
    let ft = FatTree::new(k).expect("valid k");
    let h = ft.num_hosts();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..flows)
        .map(|_| {
            let s = (next() % h as u64) as usize;
            let mut d = (next() % h as u64) as usize;
            if d == s {
                d = (d + 1) % h;
            }
            ft.path(HostId(s), HostId(d), next()).expect("hosts valid")
        })
        .collect()
}

fn time_allocate(label: &str, iters: u32, per_call_flows: usize, f: impl FnMut()) -> (String, f64) {
    let mut f = f;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters) / per_call_flows as f64;
    (label.to_owned(), ns)
}

fn allocator_benches() -> Vec<(String, f64)> {
    const FLOWS: usize = 1024;
    const ITERS: u32 = 50;
    let paths = flow_paths(8, FLOWS);
    let demands: Vec<Demand<'_>> = paths
        .iter()
        .enumerate()
        .map(|(i, p)| Demand {
            path: p,
            queue: i % 4,
        })
        .collect();
    let ft = FatTree::new(8).expect("valid k");
    let spq = Discipline::StrictPriority { num_queues: 4 };
    let wrr = Discipline::WeightedRoundRobin {
        weights: vec![8.0, 4.0, 2.0, 1.0],
    };
    let mut out = Vec::new();
    out.push(time_allocate("spq_1024_fresh", ITERS, FLOWS, || {
        allocate(&demands, |l| ft.link_capacity(l), &spq);
    }));
    out.push(time_allocate("wrr_1024_fresh", ITERS, FLOWS, || {
        allocate(&demands, |l| ft.link_capacity(l), &wrr);
    }));
    let mut alloc = Allocator::new(ft.num_links());
    let mut rates = vec![0.0; FLOWS];
    out.push(time_allocate("spq_1024_reused", ITERS, FLOWS, || {
        alloc.allocate_into(
            demands.as_slice(),
            |l| ft.link_capacity(l),
            &spq,
            &mut rates,
        );
    }));
    out.push(time_allocate("wrr_1024_reused", ITERS, FLOWS, || {
        alloc.allocate_into(
            demands.as_slice(),
            |l| ft.link_capacity(l),
            &wrr,
            &mut rates,
        );
    }));
    out
}

/// A/B microbenchmark for the per-event flow-advance sweep (the same
/// update `Engine::advance_span` applies): struct-of-arrays hot state —
/// one dense `rate` array zipped against one dense `remaining` array —
/// versus the pre-PR-9 array-of-structs layout, where the two hot f64s
/// shared a ~96-byte `FlowState` with the cold identity/bookkeeping
/// fields and every step strided past the payload. Identical arithmetic
/// per element (guarded multiply-min-subtract), identical element
/// count; only the memory layout differs, so the ratio isolates the
/// SoA win the engine's serial sweep gets before any fan-out.
fn advance_benches() -> Vec<(String, f64)> {
    const FLOWS: usize = 65_536;
    const ITERS: u32 = 2_000;
    const DT: f64 = 0.5;

    /// The pre-PR-9 hot+cold flow record, field-for-field sized like
    /// the old `FlowState` (ids/hosts as usize, `PathRef` as two u32s).
    struct FlowAos {
        rate: f64,
        remaining: f64,
        _path: (u32, u32),
        _coflow: usize,
        _id: usize,
        _src: usize,
        _dst: usize,
        _size: f64,
        _queue: usize,
        _fresh: bool,
        _parked: bool,
        _stamp: u64,
    }

    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Rates mix zero (parked), modest, and large values; `remaining`
    // is big enough that ITERS sweeps never clamp a flow to zero, so
    // both layouts do exactly the same arithmetic every iteration.
    let rate: Vec<f64> = (0..FLOWS)
        .map(|_| match next() % 8 {
            0 => 0.0,
            r => (r * 1000) as f64 + (next() % 997) as f64,
        })
        .collect();
    let start_remaining = 1.0e15;

    let mut remaining: Vec<f64> = vec![start_remaining; FLOWS];
    let t0 = Instant::now();
    for _ in 0..ITERS {
        for (r, rem) in rate.iter().zip(remaining.iter_mut()) {
            let moved = if *r > 0.0 && r.is_finite() {
                (*r * DT).min(*rem)
            } else {
                0.0
            };
            *rem -= moved;
        }
    }
    let soa_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS) / FLOWS as f64;
    let soa_sum: f64 = std::hint::black_box(&remaining).iter().sum();

    let mut flows: Vec<FlowAos> = rate
        .iter()
        .enumerate()
        .map(|(i, &r)| FlowAos {
            rate: r,
            remaining: start_remaining,
            _path: (i as u32, 5),
            _coflow: i / 16,
            _id: i,
            _src: i % 1024,
            _dst: (i * 7) % 1024,
            _size: start_remaining,
            _queue: i % 4,
            _fresh: false,
            _parked: false,
            _stamp: i as u64,
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..ITERS {
        for f in flows.iter_mut() {
            let moved = if f.rate > 0.0 && f.rate.is_finite() {
                (f.rate * DT).min(f.remaining)
            } else {
                0.0
            };
            f.remaining -= moved;
        }
    }
    let aos_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS) / FLOWS as f64;
    let aos_sum: f64 = std::hint::black_box(&flows)
        .iter()
        .map(|f| f.remaining)
        .sum();
    assert!(
        soa_sum == aos_sum,
        "layouts must perform identical arithmetic ({soa_sum} vs {aos_sum})"
    );

    vec![
        ("soa".to_owned(), soa_ns),
        ("aos".to_owned(), aos_ns),
        (
            "aos_over_soa".to_owned(),
            if soa_ns > 0.0 { aos_ns / soa_ns } else { 0.0 },
        ),
    ]
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match args::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let scenario = Scenario::trace_driven(StructureKind::FbTao, opts.jobs, opts.seed);
    let jobs = scenario.jobs();

    // Warm-up run (page in code and workload), then the measured run.
    let run = || {
        let fabric = FatTree::new(scenario.pods).expect("valid pods");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: scenario.tick_interval,
                ..SimConfig::default()
            },
        );
        let mut sched = SchedulerKind::Gurita.build();
        sim.run(jobs.clone(), sched.as_mut())
    };
    let _ = run();
    let (result, tp) = timed_run(run);

    // The same workload under the decentralized plane: per-host view
    // building + report merge + ControlUpdate plumbing on every
    // decision point (latency 0 keeps results comparable).
    let run_local = || {
        let fabric = FatTree::new(scenario.pods).expect("valid pods");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: scenario.tick_interval,
                ..SimConfig::default()
            },
        );
        let mut plane = SchedulerKind::GuritaLocal.build_plane();
        sim.run_control(jobs.clone(), plane.as_mut())
    };
    let _ = run_local();
    let (_, local_tp) = timed_run(run_local);

    let mut control_plane = merge_benches();
    control_plane.push((
        "gurita_local_events_per_sec".to_owned(),
        local_tp.events_per_sec,
    ));

    let rep = BenchReport {
        meta: BenchMeta::capture(),
        scenario: scenario.name.clone(),
        jobs: opts.jobs,
        seed: opts.seed,
        events: result.events,
        elapsed_sec: tp.wall_sec,
        events_per_sec: tp.events_per_sec,
        allocate_ns_per_flow: allocator_benches(),
        advance_ns_per_flow: advance_benches(),
        control_plane,
        large: large_bench(),
    };
    println!(
        "event loop: {} events in {:.3}s -> {:.0} events/sec",
        rep.events, rep.elapsed_sec, rep.events_per_sec
    );
    for (label, ns) in &rep.allocate_ns_per_flow {
        println!("allocate {label}: {ns:.1} ns/flow");
    }
    for (label, v) in &rep.advance_ns_per_flow {
        println!("advance {label}: {v:.3} ns/flow");
    }
    for (label, v) in &rep.control_plane {
        println!("control plane {label}: {v:.1}");
    }
    println!(
        "large ({} pods, {} jobs): {} events in {:.3}s -> {:.0} events/sec \
         (binary heap: {:.0}, telemetry armed: {:.0} over {} records, \
         metrics armed: {:.0}, parallel x{}: {:.0} = {:.2}x), \
         arena {} unique / {:.1} KiB, peak RSS {:.1} MiB",
        rep.large.pods,
        rep.large.jobs,
        rep.large.events,
        rep.large.wall_sec,
        rep.large.events_per_sec,
        rep.large.events_per_sec_binary_heap,
        rep.large.events_per_sec_telemetry,
        rep.large.telemetry_records,
        rep.large.events_per_sec_metrics,
        rep.large.threads_used,
        rep.large.events_per_sec_parallel,
        rep.large.parallel_speedup,
        rep.large.path_arena_unique,
        rep.large.path_arena_storage_bytes as f64 / 1024.0,
        rep.large.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
    match report::write_results_file("BENCH_sim.json", &report::to_json(&rep)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
