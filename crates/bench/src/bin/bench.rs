//! Performance-trajectory tracker: times the simulator's two hot paths
//! and records the numbers in `results/BENCH_sim.json` so regressions
//! (and wins) are visible across PRs.
//!
//! Measured:
//!
//! * **events/sec** — the full event loop on the k=8 fat-tree with the
//!   FB-Tao trace-driven workload (the sweep scenario) under the
//!   evaluation-tuned Gurita scheduler;
//! * **allocate ns/flow** — the water-filling allocator on a 1024-flow
//!   Facebook-style mix, fresh-allocation and reused-scratch variants,
//!   under both SPQ and WRR.
//!
//! Flags: `--jobs N` (event-loop workload size), `--seed N`.

use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_experiments::{args, report};
use gurita_model::HostId;
use gurita_sim::bandwidth::{allocate, Allocator, Demand, Discipline};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::{Fabric, FatTree, LinkId};
use gurita_workload::dags::StructureKind;
use serde::Serialize;
use std::time::Instant;

/// The recorded benchmark snapshot.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Event-loop scenario description.
    scenario: String,
    /// Jobs in the event-loop workload.
    jobs: usize,
    /// Workload seed.
    seed: u64,
    /// Simulated events processed.
    events: u64,
    /// Event-loop wall-clock seconds.
    elapsed_sec: f64,
    /// Simulated events per wall-clock second.
    events_per_sec: f64,
    /// Water-filling cost per flow, nanoseconds, per variant.
    allocate_ns_per_flow: Vec<(String, f64)>,
}

/// Deterministic pseudo-random flow set over a k-pod fat-tree (same
/// generator as the `bandwidth` criterion bench).
fn flow_paths(k: usize, flows: usize) -> Vec<Vec<LinkId>> {
    let ft = FatTree::new(k).expect("valid k");
    let h = ft.num_hosts();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..flows)
        .map(|_| {
            let s = (next() % h as u64) as usize;
            let mut d = (next() % h as u64) as usize;
            if d == s {
                d = (d + 1) % h;
            }
            ft.path(HostId(s), HostId(d), next()).expect("hosts valid")
        })
        .collect()
}

fn time_allocate(label: &str, iters: u32, per_call_flows: usize, f: impl FnMut()) -> (String, f64) {
    let mut f = f;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters) / per_call_flows as f64;
    (label.to_owned(), ns)
}

fn allocator_benches() -> Vec<(String, f64)> {
    const FLOWS: usize = 1024;
    const ITERS: u32 = 50;
    let paths = flow_paths(8, FLOWS);
    let demands: Vec<Demand<'_>> = paths
        .iter()
        .enumerate()
        .map(|(i, p)| Demand {
            path: p,
            queue: i % 4,
        })
        .collect();
    let ft = FatTree::new(8).expect("valid k");
    let spq = Discipline::StrictPriority { num_queues: 4 };
    let wrr = Discipline::WeightedRoundRobin {
        weights: vec![8.0, 4.0, 2.0, 1.0],
    };
    let mut out = Vec::new();
    out.push(time_allocate("spq_1024_fresh", ITERS, FLOWS, || {
        allocate(&demands, |l| ft.link_capacity(l), &spq);
    }));
    out.push(time_allocate("wrr_1024_fresh", ITERS, FLOWS, || {
        allocate(&demands, |l| ft.link_capacity(l), &wrr);
    }));
    let mut alloc = Allocator::new(ft.num_links());
    let mut rates = vec![0.0; FLOWS];
    out.push(time_allocate("spq_1024_reused", ITERS, FLOWS, || {
        alloc.allocate_into(
            demands.as_slice(),
            |l| ft.link_capacity(l),
            &spq,
            &mut rates,
        );
    }));
    out.push(time_allocate("wrr_1024_reused", ITERS, FLOWS, || {
        alloc.allocate_into(
            demands.as_slice(),
            |l| ft.link_capacity(l),
            &wrr,
            &mut rates,
        );
    }));
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match args::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let scenario = Scenario::trace_driven(StructureKind::FbTao, opts.jobs, opts.seed);
    let jobs = scenario.jobs();

    // Warm-up run (page in code and workload), then the measured run.
    let run = || {
        let fabric = FatTree::new(scenario.pods).expect("valid pods");
        let mut sim = Simulation::new(
            fabric,
            SimConfig {
                tick_interval: scenario.tick_interval,
                ..SimConfig::default()
            },
        );
        let mut sched = SchedulerKind::Gurita.build();
        sim.run(jobs.clone(), sched.as_mut())
    };
    let _ = run();
    let start = Instant::now();
    let result = run();
    let elapsed = start.elapsed().as_secs_f64();

    let rep = BenchReport {
        scenario: scenario.name.clone(),
        jobs: opts.jobs,
        seed: opts.seed,
        events: result.events,
        elapsed_sec: elapsed,
        events_per_sec: result.events as f64 / elapsed,
        allocate_ns_per_flow: allocator_benches(),
    };
    println!(
        "event loop: {} events in {:.3}s -> {:.0} events/sec",
        rep.events, rep.elapsed_sec, rep.events_per_sec
    );
    for (label, ns) in &rep.allocate_ns_per_flow {
        println!("allocate {label}: {ns:.1} ns/flow");
    }
    match report::write_results_file("BENCH_sim.json", &report::to_json(&rep)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
