//! Criterion benchmark harness for the Gurita reproduction.
//!
//! One bench target per paper artifact (`fig5`…`fig8`, `ablation`,
//! `motivation`) regenerates the corresponding experiment at a reduced,
//! statistically stable scale, plus micro-benchmarks for the simulator
//! substrates (`bandwidth`, `topology`, `workload`). Run with
//! `cargo bench --workspace`; each figure's full-scale numbers come
//! from the `gurita-experiments` binaries instead.
//!
//! The library also carries the shared pieces of the perf-trajectory
//! tracker (`bench` binary, `large_baseline` example): [`Throughput`]
//! derives the events/sec numbers both report, and [`BenchMeta`] stamps
//! `results/BENCH_sim.json` with enough provenance (schema version, git
//! commit, rustc, timestamp) to compare snapshots across PRs.

use gurita_sim::stats::RunResult;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema version of `results/BENCH_sim.json`; bump when the report's
/// shape changes incompatibly. v3 added the intra-run parallelism block
/// (`meta.threads` / `meta.available_parallelism`, the large gate's
/// `events_per_sec_parallel` + `parallel_speedup`) and replaced the
/// scale-dead `path_arena_hit_rate` gauge with
/// `path_arena_storage_bytes` (see DESIGN.md on why the hit rate is
/// structurally 0 at k = 48). v4 added `advance_ns_per_flow`: the
/// flow-advance sweep microbenchmark over the engine's SoA hot-state
/// layout, with a pre-PR-9 AoS layout A/B alongside (labels `soa`,
/// `aos`, `aos_over_soa`) — CI gates on the `soa` entry regressing
/// less than 10% against the committed baseline. v5 added the large
/// gate's `events_per_sec_metrics`: the event loop with a live
/// `MetricsSink` armed (the daemon's aggregation path) — CI gates the
/// aggregation's overhead against `events_per_sec_telemetry` (the
/// armed discard-sink baseline) at <3%.
pub const BENCH_SCHEMA_VERSION: u32 = 5;

/// Benchmark-scale figure options: small enough for Criterion's
/// repeated sampling, large enough to exercise contention.
pub fn bench_options() -> gurita_experiments::figures::FigureOptions {
    gurita_experiments::figures::FigureOptions {
        jobs: 12,
        seed: 77,
        ..gurita_experiments::figures::FigureOptions::default()
    }
}

/// Provenance block recorded at the top of `results/BENCH_sim.json`.
///
/// Deserializable so trackers can diff snapshots across PRs; the
/// parallelism fields are serde-defaulted to 1 so v2 baselines (which
/// predate them) still parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Report schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// `git rev-parse HEAD` of the working tree, `"unknown"` outside a
    /// repository. `-dirty` is appended when the tree has local changes.
    pub git_commit: String,
    /// `rustc --version`, `"unknown"` when rustc is not on PATH.
    pub rustc_version: String,
    /// Capture time, seconds since the Unix epoch.
    pub timestamp_unix: u64,
    /// Effective intra-run worker count used by the parallel gate run —
    /// `effective_threads(0)`, i.e. one per available core on the
    /// capture host.
    #[serde(default = "serial")]
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the capture host (1
    /// when unknown). Lets CI decide whether a speedup assertion is
    /// meaningful on this runner.
    #[serde(default = "serial")]
    pub available_parallelism: usize,
}

/// Serde default for the parallelism meta fields on pre-v3 snapshots.
fn serial() -> usize {
    1
}

/// First line of `cmd args...` stdout, or `None` on any failure.
fn command_line(cmd: &str, cmd_args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd)
        .args(cmd_args)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    if line.is_empty() {
        None
    } else {
        Some(line.to_owned())
    }
}

impl BenchMeta {
    /// Captures the current provenance. Never fails: unavailable fields
    /// degrade to `"unknown"` / `0` so the tracker also runs in
    /// stripped-down environments (no git, no rustc on PATH).
    pub fn capture() -> Self {
        let mut git_commit =
            command_line("git", &["rev-parse", "HEAD"]).unwrap_or_else(|| "unknown".to_owned());
        if git_commit != "unknown"
            && command_line("git", &["status", "--porcelain"]).is_some_and(|s| !s.is_empty())
        {
            git_commit.push_str("-dirty");
        }
        Self {
            schema_version: BENCH_SCHEMA_VERSION,
            git_commit,
            rustc_version: command_line("rustc", &["--version"])
                .unwrap_or_else(|| "unknown".to_owned()),
            timestamp_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            threads: gurita_sim::pool::effective_threads(0),
            available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Wall-clock throughput of one simulation run — the single definition
/// of "events/sec" shared by the `bench` binary and the
/// `large_baseline` example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Throughput {
    /// Simulated events processed.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_sec: f64,
    /// Simulated events per wall-clock second.
    pub events_per_sec: f64,
}

impl Throughput {
    /// Derives events/sec, guarding the degenerate zero-duration case.
    pub fn new(events: u64, wall_sec: f64) -> Self {
        Self {
            events,
            wall_sec,
            events_per_sec: if wall_sec > 0.0 {
                events as f64 / wall_sec
            } else {
                0.0
            },
        }
    }
}

/// Times `run` and folds its [`RunResult`] into a [`Throughput`].
pub fn timed_run(run: impl FnOnce() -> RunResult) -> (RunResult, Throughput) {
    let start = Instant::now();
    let result = run();
    let wall = start.elapsed().as_secs_f64();
    let tp = Throughput::new(result.events, wall);
    (result, tp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_divides_events_by_wall_time() {
        let tp = Throughput::new(1000, 0.5);
        assert_eq!(tp.events_per_sec, 2000.0);
        assert_eq!(Throughput::new(1000, 0.0).events_per_sec, 0.0);
    }

    #[test]
    fn meta_capture_is_total() {
        let meta = BenchMeta::capture();
        assert_eq!(meta.schema_version, BENCH_SCHEMA_VERSION);
        assert!(!meta.git_commit.is_empty());
        assert!(!meta.rustc_version.is_empty());
        assert!(meta.threads >= 1);
        assert!(meta.available_parallelism >= 1);
    }

    #[test]
    fn v2_meta_snapshots_still_parse() {
        // A verbatim pre-parallelism (schema v2) meta block: the new
        // fields must default to 1, not fail deserialization, so
        // trajectory tooling can diff old snapshots against new ones.
        let v2 = r#"{
            "schema_version": 2,
            "git_commit": "0123abc",
            "rustc_version": "rustc 1.75.0",
            "timestamp_unix": 1700000000
        }"#;
        let meta: BenchMeta = serde_json::from_str(v2).expect("v2 meta parses");
        assert_eq!(meta.schema_version, 2);
        assert_eq!(meta.threads, 1);
        assert_eq!(meta.available_parallelism, 1);
    }
}
