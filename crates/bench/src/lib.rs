//! Criterion benchmark harness for the Gurita reproduction.
//!
//! One bench target per paper artifact (`fig5`…`fig8`, `ablation`,
//! `motivation`) regenerates the corresponding experiment at a reduced,
//! statistically stable scale, plus micro-benchmarks for the simulator
//! substrates (`bandwidth`, `topology`, `workload`). Run with
//! `cargo bench --workspace`; each figure's full-scale numbers come
//! from the `gurita-experiments` binaries instead.

/// Benchmark-scale figure options: small enough for Criterion's
/// repeated sampling, large enough to exercise contention.
pub fn bench_options() -> gurita_experiments::figures::FigureOptions {
    gurita_experiments::figures::FigureOptions {
        jobs: 12,
        seed: 77,
        full_scale: false,
        par: 1,
    }
}
