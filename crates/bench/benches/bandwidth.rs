//! Micro-benchmarks for the water-filling bandwidth allocator — the
//! simulator's hot loop (it runs after every event) — plus a
//! full-runtime event-loop benchmark over the k=8 fat-tree with the
//! Facebook-derived flow mix (the sweep scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_model::HostId;
use gurita_sim::bandwidth::{allocate, Allocator, Demand, Discipline};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::{Fabric, FatTree, LinkId};
use gurita_workload::dags::StructureKind;

/// Deterministic pseudo-random flow set over a k-pod fat-tree.
fn flow_paths(k: usize, flows: usize) -> Vec<Vec<LinkId>> {
    let ft = FatTree::new(k).expect("valid k");
    let h = ft.num_hosts();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..flows)
        .map(|_| {
            let s = (next() % h as u64) as usize;
            let mut d = (next() % h as u64) as usize;
            if d == s {
                d = (d + 1) % h;
            }
            ft.path(HostId(s), HostId(d), next()).expect("hosts valid")
        })
        .collect()
}

fn bench_allocate(c: &mut Criterion) {
    let mut g = c.benchmark_group("bandwidth/allocate");
    for &flows in &[64usize, 256, 1024] {
        let paths = flow_paths(8, flows);
        let demands: Vec<Demand<'_>> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| Demand {
                path: p,
                queue: i % 4,
            })
            .collect();
        let ft = FatTree::new(8).unwrap();
        g.bench_with_input(BenchmarkId::new("spq", flows), &demands, |b, demands| {
            let disc = Discipline::StrictPriority { num_queues: 4 };
            b.iter(|| allocate(demands, |l| ft.link_capacity(l), &disc));
        });
        g.bench_with_input(BenchmarkId::new("wrr", flows), &demands, |b, demands| {
            let disc = Discipline::WeightedRoundRobin {
                weights: vec![8.0, 4.0, 2.0, 1.0],
            };
            b.iter(|| allocate(demands, |l| ft.link_capacity(l), &disc));
        });
        // Steady-state path: scratch arrays live across calls, so the
        // allocation itself is heap-allocation-free.
        g.bench_with_input(
            BenchmarkId::new("spq_reused", flows),
            &demands,
            |b, demands| {
                let disc = Discipline::StrictPriority { num_queues: 4 };
                let mut alloc = Allocator::new(ft.num_links());
                let mut rates = vec![0.0; demands.len()];
                b.iter(|| {
                    alloc.allocate_into(
                        demands.as_slice(),
                        |l| ft.link_capacity(l),
                        &disc,
                        &mut rates,
                    )
                });
            },
        );
    }
    g.finish();
}

/// Full event loop on the k=8 fat-tree with the FB-Tao trace-driven
/// workload (the sweep scenario): measures simulated events end-to-end
/// — rate recomputation, completion index, scheduler consultation.
fn bench_event_loop(c: &mut Criterion) {
    let scenario = Scenario::trace_driven(StructureKind::FbTao, 24, 7);
    let jobs = scenario.jobs();
    let mut g = c.benchmark_group("runtime/event_loop");
    g.sample_size(10);
    g.bench_function("fb_tao_k8", |b| {
        b.iter(|| {
            let fabric = FatTree::new(scenario.pods).expect("valid pods");
            let mut sim = Simulation::new(
                fabric,
                SimConfig {
                    tick_interval: scenario.tick_interval,
                    ..SimConfig::default()
                },
            );
            let mut sched = SchedulerKind::Gurita.build();
            sim.run(jobs.clone(), sched.as_mut())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_allocate, bench_event_loop);
criterion_main!(benches);
