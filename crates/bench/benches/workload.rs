//! Micro-benchmarks for workload synthesis (trace generation cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload/generate");
    for structure in [
        StructureKind::FbTao,
        StructureKind::TpcDs,
        StructureKind::ProductionMix,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{structure:?}")),
            &structure,
            |b, &structure| {
                b.iter(|| {
                    JobGenerator::new(
                        WorkloadConfig {
                            num_jobs: 100,
                            num_hosts: 128,
                            structure,
                            ..WorkloadConfig::default()
                        },
                        1,
                    )
                    .generate()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
