//! Micro-benchmarks for fat-tree construction and ECMP path
//! computation (one path lookup per flow activation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gurita_model::HostId;
use gurita_sim::topology::{Fabric, FatTree};

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology/ecmp_path");
    for &k in &[8usize, 16, 48] {
        let ft = FatTree::new(k).unwrap();
        let h = ft.num_hosts();
        g.bench_with_input(BenchmarkId::from_parameter(k), &ft, |b, ft| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9e3779b97f4a7c15);
                let s = (i % h as u64) as usize;
                let d = ((i >> 17) % h as u64) as usize;
                ft.path(HostId(s), HostId(d), i).expect("hosts valid")
            });
        });
    }
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology/build");
    for &k in &[8usize, 48] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| FatTree::new(k).expect("even k"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_paths, bench_construction);
criterion_main!(benches);
