//! Paper-artifact benches: each group regenerates one figure's
//! experiment at benchmark scale (DESIGN.md experiments E1–E8). The
//! *shape* assertions live in the integration tests; here Criterion
//! tracks the cost of regenerating each artifact so simulator
//! regressions surface.

use criterion::{criterion_group, criterion_main, Criterion};
use gurita_bench::bench_options;
use gurita_experiments::{figures, motivation};

fn bench_fig5(c: &mut Criterion) {
    let opts = bench_options();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("four_scenarios_paper_set", |b| {
        b.iter(|| figures::fig5(&opts))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let opts = bench_options();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("per_category_trace", |b| b.iter(|| figures::fig6(&opts)));
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let opts = gurita_experiments::figures::FigureOptions {
        jobs: 6, // fig7 multiplies by 4 and uses a 12-pod fabric
        ..bench_options()
    };
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("bursty_large_scale", |b| b.iter(|| figures::fig7(&opts)));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let opts = bench_options();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("gurita_vs_oracle", |b| b.iter(|| figures::fig8(&opts)));
    g.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let opts = bench_options();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("rule_variants", |b| b.iter(|| figures::ablation(&opts)));
    g.finish();
}

fn bench_motivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("motivation");
    g.bench_function("figure2_and_figure4", |b| {
        b.iter(|| (motivation::figure2(), motivation::figure4()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_ablation,
    bench_motivation
);
criterion_main!(benches);
