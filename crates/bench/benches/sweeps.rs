//! Benches for the sensitivity sweeps (DESIGN.md experiment E9): the
//! cost of regenerating each sweep at benchmark scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gurita_experiments::sweeps;

fn bench_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweeps");
    g.sample_size(10);
    g.bench_function("queue_count", |b| {
        b.iter(|| sweeps::queue_count_sweep(8, 5, 1, 1))
    });
    g.bench_function("hr_latency", |b| {
        b.iter(|| sweeps::latency_sweep(8, 5, 1, 1))
    });
    g.bench_function("fault_injection", |b| {
        b.iter(|| sweeps::fault_sweep(8, 5, 1, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
