//! Gurita's scheduling rules (§IV.A of the paper).
//!
//! Flexible-flow-shop solutions obey Johnson's classic rules: minimize
//! resource idle time, free machines quickly, avoid blocking other jobs,
//! and avoid tardiness. Translated to multi-stage coflow scheduling they
//! become Gurita's four rules, reified here as an enum so that ablation
//! experiments can switch individual rules off and measure their
//! contribution (the `ablation` bench).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of Gurita's four scheduling rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// Rule 1: prioritize job stages consisting of smaller numbers of
    /// shorter flows, so machines neither wait for jobs nor jobs for
    /// machines (Johnson's idle-time and availability rules). In Ψ this
    /// is the κ size adjustment.
    SmallStagesFirst,
    /// Rule 2: avoid horizontal blocking (prefer stages with fewer
    /// flows) and vertical blocking (prefer stages with shorter flows).
    /// In Ψ this is the `L_max × W` area term.
    AvoidBlocking,
    /// Rule 3: jobs in their final stage are prioritized over jobs that
    /// are not. In Ψ this is the ω stage-progress weight.
    FinalStageFirst,
    /// Rule 4: coflows on a job's critical path are prioritized over
    /// coflows off it. In Ψ this is the γ critical-path discount.
    CriticalPathFirst,
}

impl Rule {
    /// All four rules in order.
    pub const ALL: [Rule; 4] = [
        Rule::SmallStagesFirst,
        Rule::AvoidBlocking,
        Rule::FinalStageFirst,
        Rule::CriticalPathFirst,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::SmallStagesFirst => "rule 1: small stages first",
            Rule::AvoidBlocking => "rule 2: avoid horizontal/vertical blocking",
            Rule::FinalStageFirst => "rule 3: final stage first",
            Rule::CriticalPathFirst => "rule 4: critical path first",
        };
        f.write_str(s)
    }
}

/// Which rules are active — the knob ablation studies turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Rule 1 (κ size adjustment).
    pub small_stages_first: bool,
    /// Rule 2 (L×W blocking area). Disabling collapses Ψ's core signal;
    /// only useful for ablation.
    pub avoid_blocking: bool,
    /// Rule 3 (ω stage-progress weight).
    pub final_stage_first: bool,
    /// Rule 4 (critical-path discount).
    pub critical_path_first: bool,
}

impl RuleSet {
    /// All rules on (the full Gurita design).
    pub const fn all() -> Self {
        Self {
            small_stages_first: true,
            avoid_blocking: true,
            final_stage_first: true,
            critical_path_first: true,
        }
    }

    /// Returns a copy with one rule disabled.
    pub fn without(mut self, rule: Rule) -> Self {
        match rule {
            Rule::SmallStagesFirst => self.small_stages_first = false,
            Rule::AvoidBlocking => self.avoid_blocking = false,
            Rule::FinalStageFirst => self.final_stage_first = false,
            Rule::CriticalPathFirst => self.critical_path_first = false,
        }
        self
    }

    /// Whether a given rule is enabled.
    pub fn contains(&self, rule: Rule) -> bool {
        match rule {
            Rule::SmallStagesFirst => self.small_stages_first,
            Rule::AvoidBlocking => self.avoid_blocking,
            Rule::FinalStageFirst => self.final_stage_first,
            Rule::CriticalPathFirst => self.critical_path_first,
        }
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rules_enabled_by_default() {
        let rs = RuleSet::default();
        for r in Rule::ALL {
            assert!(rs.contains(r), "{r} should default on");
        }
    }

    #[test]
    fn without_disables_exactly_one() {
        for r in Rule::ALL {
            let rs = RuleSet::all().without(r);
            assert!(!rs.contains(r));
            for other in Rule::ALL.into_iter().filter(|&o| o != r) {
                assert!(rs.contains(other));
            }
        }
    }

    #[test]
    fn display_is_descriptive() {
        for r in Rule::ALL {
            assert!(r.to_string().starts_with("rule "));
        }
    }
}
