//! Host-layer port of Gurita for the decentralized control plane.
//!
//! [`GuritaAgent`] wraps [`GuritaScheduler`] behind the
//! [`HostAgent`] interface so the scheme runs under
//! [`gurita_sim::control::Decentralized`]: per-host agents report their
//! local sender-side counters verbatim (the trait's default `report`),
//! and the head agent feeds the merged — possibly stale — cluster view
//! through the unchanged LBEF pipeline. Gurita is exactly the class of
//! scheduler this layering was designed for: `GuritaScheduler::assign`
//! never touches the clairvoyant [`Oracle`], so the denying oracle the
//! decentralized plane hands out is never observed.

use crate::scheduler::{GuritaConfig, GuritaScheduler};
use gurita_model::{CoflowId, JobId};
use gurita_sim::control::{HostAgent, PriorityTable};
use gurita_sim::sched::{Observation, Oracle, QueuePolicy, Scheduler};

/// [`GuritaScheduler`] as a [`HostAgent`] (reported as `gurita@local`).
///
/// The wrapper is a head-role adapter: `decide` is
/// [`Scheduler::assign`] on the merged observation with the coflow ids
/// zipped back in, `queue_policy` forwards the WRR/SPQ choice, and the
/// completion hooks keep the AVA/load estimators identical to the
/// centralized run. With `control_latency == 0` the merged view is
/// bit-for-bit the centralized observation, so this agent reproduces
/// `GuritaScheduler` exactly (pinned by the cross-scheduler tests).
#[derive(Debug)]
pub struct GuritaAgent {
    inner: GuritaScheduler,
}

impl GuritaAgent {
    /// Creates the agent.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`GuritaConfig::validate`]).
    pub fn new(config: GuritaConfig) -> Self {
        Self {
            inner: GuritaScheduler::new(config),
        }
    }
}

impl HostAgent for GuritaAgent {
    fn name(&self) -> String {
        "gurita@local".to_string()
    }

    fn num_queues(&self) -> usize {
        self.inner.num_queues()
    }

    fn decide(&mut self, merged: &Observation, oracle: &Oracle<'_>) -> PriorityTable {
        let queues = self.inner.assign(merged, oracle);
        merged.coflows.iter().map(|c| c.id).zip(queues).collect()
    }

    fn queue_policy(&mut self) -> QueuePolicy {
        // GuritaScheduler derives the policy from decide-time state and
        // ignores the observation argument.
        self.inner.queue_policy(&Observation::default())
    }

    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        self.inner.on_coflow_completed(coflow, job, now);
    }

    fn on_job_completed(&mut self, job: JobId, now: f64) {
        self.inner.on_job_completed(job, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_mirrors_the_scheduler_identity() {
        let agent = GuritaAgent::new(GuritaConfig::default());
        assert_eq!(agent.name(), "gurita@local");
        assert_eq!(
            agent.num_queues(),
            GuritaScheduler::new(GuritaConfig::default()).num_queues()
        );
        assert!(!agent.reprioritizes_live_flows());
    }

    #[test]
    fn decide_survives_the_denying_oracle() {
        let mut agent = GuritaAgent::new(GuritaConfig::default());
        let table = agent.decide(&Observation::default(), &Oracle::deny());
        assert!(table.is_empty());
    }
}
