//! Head-receiver (HR) coordination.
//!
//! Gurita designates the first receiver invoked in a coflow as its
//! *head receiver*: peers report locally-observed information every δ
//! interval, the HR computes the job priority with eq. (3), and
//! communicates the decision back through update messages (receivers →
//! senders via a reserved TCP-header field, senders → switches via DSCP
//! bits). Decisions therefore take one coordination round-trip to take
//! effect.
//!
//! The simulator's δ tick already quantizes *observation*; this module
//! models the *decision propagation* delay: a [`DelayedDecision`] holds
//! the currently applied queue and at most one in-flight HR update, so
//! a fresh decision computed at time `t` only becomes effective at
//! `t + latency`. With zero latency it is transparent — the evaluation's
//! default, matching the paper's simulation. The `sweep` experiment
//! binary measures how sensitive Gurita is to this delay.

use serde::{Deserialize, Serialize};

/// One coflow's priority decision pipeline: the applied queue plus at
/// most one in-flight HR update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayedDecision {
    applied: usize,
    /// `(decided_at, queue)` of the newest not-yet-delivered update.
    in_flight: Option<(f64, usize)>,
}

impl DelayedDecision {
    /// Starts the pipeline at the initial (highest-priority) queue.
    pub fn new(initial_queue: usize) -> Self {
        Self {
            applied: initial_queue,
            in_flight: None,
        }
    }

    /// The queue receivers currently enforce.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Feeds the HR's freshly computed `target` queue at time `now` and
    /// returns the queue in effect. In-flight updates older than
    /// `latency` are delivered first; a changed target supersedes the
    /// in-flight update but inherits its send time only if the queue
    /// matches (a re-decision restarts the message).
    pub fn decide(&mut self, now: f64, latency: f64, target: usize) -> usize {
        assert!(latency >= 0.0, "latency must be non-negative");
        if let Some((sent_at, queue)) = self.in_flight {
            if now >= sent_at + latency {
                self.applied = queue;
                self.in_flight = None;
            }
        }
        if latency == 0.0 {
            self.applied = target;
            self.in_flight = None;
            return self.applied;
        }
        match self.in_flight {
            Some((_, queue)) if queue == target => {}
            _ if target == self.applied => self.in_flight = None,
            _ => self.in_flight = Some((now, target)),
        }
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_is_transparent() {
        let mut d = DelayedDecision::new(0);
        assert_eq!(d.decide(0.0, 0.0, 2), 2);
        assert_eq!(d.decide(0.1, 0.0, 1), 1);
        assert_eq!(d.applied(), 1);
    }

    #[test]
    fn decisions_take_latency_to_apply() {
        let mut d = DelayedDecision::new(0);
        assert_eq!(d.decide(0.0, 0.5, 3), 0, "not yet delivered");
        assert_eq!(d.decide(0.4, 0.5, 3), 0, "still in flight");
        assert_eq!(d.decide(0.6, 0.5, 3), 3, "delivered after latency");
    }

    #[test]
    fn superseding_decision_restarts_the_message() {
        let mut d = DelayedDecision::new(0);
        d.decide(0.0, 1.0, 2);
        // HR changes its mind before delivery: restart at t=0.5.
        assert_eq!(d.decide(0.5, 1.0, 3), 0);
        // The original t=0 message must not deliver queue 2.
        assert_eq!(
            d.decide(1.2, 1.0, 3),
            0,
            "restarted message still in flight"
        );
        assert_eq!(d.decide(1.6, 1.0, 3), 3);
    }

    #[test]
    fn reverting_to_applied_cancels_in_flight() {
        let mut d = DelayedDecision::new(1);
        d.decide(0.0, 1.0, 2);
        assert_eq!(d.decide(0.2, 1.0, 1), 1, "target equals applied: cancel");
        // Nothing delivers later.
        assert_eq!(d.decide(5.0, 1.0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_latency() {
        let mut d = DelayedDecision::new(0);
        d.decide(0.0, -1.0, 1);
    }
}
