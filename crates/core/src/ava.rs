//! Average Value Approximation (AVA).
//!
//! Gurita must satisfy Rule 4 (prioritize coflows on the critical path)
//! without knowing the job structure ahead of time. The paper observes
//! that a critical path usually carries the coflows with large CCT, that
//! CCT is driven by the largest flow `L_max`, and that the number of
//! critical coflows per stage is bounded by the number of critical paths
//! (fewer than 5 in production, the average job depth). It therefore
//! replaces the unknown distribution of `L_max` by its running mean —
//! the Average Value Approximation technique from performance modeling —
//! and flags a coflow as *probably critical* when its observed `L_max`
//! exceeds that mean.

/// Running-mean estimator with an observation count.
///
/// # Example
///
/// ```
/// use gurita::ava::AvaEstimator;
/// let mut ava = AvaEstimator::new();
/// ava.observe(2.0);
/// ava.observe(4.0);
/// assert_eq!(ava.mean(), 3.0);
/// assert!(ava.is_above_mean(5.0));
/// assert!(!ava.is_above_mean(3.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AvaEstimator {
    sum: f64,
    count: u64,
}

impl AvaEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    ///
    /// # Panics
    ///
    /// Panics on non-finite observations.
    pub fn observe(&mut self, value: f64) {
        assert!(value.is_finite(), "AVA observations must be finite");
        self.sum += value;
        self.count += 1;
    }

    /// The running mean; 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether `value` strictly exceeds the running mean (and at least
    /// one observation exists — with none, nothing is "above average").
    pub fn is_above_mean(&self, value: f64) -> bool {
        self.count > 0 && value > self.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimator_is_neutral() {
        let ava = AvaEstimator::new();
        assert_eq!(ava.mean(), 0.0);
        assert_eq!(ava.count(), 0);
        assert!(!ava.is_above_mean(10.0));
    }

    #[test]
    fn mean_tracks_observations() {
        let mut ava = AvaEstimator::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            ava.observe(v);
        }
        assert_eq!(ava.mean(), 2.5);
        assert_eq!(ava.count(), 4);
        assert!(ava.is_above_mean(2.6));
        assert!(!ava.is_above_mean(2.5));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        AvaEstimator::new().observe(f64::NAN);
    }
}
