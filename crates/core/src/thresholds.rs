//! Exponentially-spaced priority thresholds.
//!
//! Re-exported from [`gurita_sim::thresholds`]: the Aalo-recommended
//! exponential threshold ladder is shared infrastructure between Gurita
//! and the TBS baselines (Aalo, Stream), so it lives in the simulator
//! crate; Gurita applies it to blocking-effect values rather than to
//! accumulated bytes.

pub use gurita_sim::thresholds::ThresholdLadder;
