//! Receiver-side flow table.
//!
//! The deployable Gurita "employs a flow hash table (e.g. Jenkins hash)
//! to keep track of flow information at the receiver's end using 5
//! tuples (src IP, dest IP, src port, dest port, and protocol) to
//! identify different flows", storing per-flow byte counts, the owning
//! coflow, and connection state (paper §IV.B). This module implements
//! that artifact: Bob Jenkins' one-at-a-time hash over the 5-tuple and
//! an open-addressing table the receiver shim updates per packet and the
//! head receiver aggregates per δ interval.
//!
//! The simulator identifies flows directly by [`gurita_model::FlowId`],
//! so this table is not on the simulation hot path; it exists to make
//! the receiver-side data structure concrete (and testable) exactly as
//! deployed.

use serde::{Deserialize, Serialize};

/// A transport 5-tuple identifying one flow at a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP).
    pub protocol: u8,
}

impl FiveTuple {
    /// Serializes the tuple into its canonical 13-byte wire order.
    fn bytes(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        out[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = self.protocol;
        out
    }
}

/// Bob Jenkins' one-at-a-time hash.
pub fn jenkins_hash(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0;
    for &b in bytes {
        h = h.wrapping_add(b as u32);
        h = h.wrapping_add(h << 10);
        h ^= h >> 6;
    }
    h = h.wrapping_add(h << 3);
    h ^= h >> 11;
    h.wrapping_add(h << 15)
}

/// Per-flow record kept at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// The flow's transport identity.
    pub tuple: FiveTuple,
    /// Application-provided coflow identifier.
    pub coflow_id: u64,
    /// Bytes received so far.
    pub bytes_received: f64,
    /// Whether the connection is open.
    pub open: bool,
}

/// Open-addressing (linear probing) flow table keyed by the Jenkins
/// hash of the 5-tuple, as a receiver shim would maintain.
///
/// # Example
///
/// ```
/// use gurita::flowtable::{FiveTuple, FlowTable};
/// let mut table = FlowTable::with_capacity(64);
/// let t = FiveTuple { src_ip: 0x0a000001, dst_ip: 0x0a000002,
///                     src_port: 4242, dst_port: 5001, protocol: 6 };
/// table.record_bytes(t, 9, 1500.0);
/// table.record_bytes(t, 9, 1500.0);
/// assert_eq!(table.get(&t).unwrap().bytes_received, 3000.0);
/// assert_eq!(table.open_connections(9), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable {
    slots: Vec<Option<FlowEntry>>,
    len: usize,
}

impl FlowTable {
    /// Creates a table with at least `capacity` slots (rounded up to a
    /// power of two; the table grows automatically at 70% occupancy).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        Self {
            slots: vec![None; cap],
            len: 0,
        }
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_of(&self, tuple: &FiveTuple) -> usize {
        jenkins_hash(&tuple.bytes()) as usize & (self.slots.len() - 1)
    }

    fn find(&self, tuple: &FiveTuple) -> Option<usize> {
        let mut i = self.slot_of(tuple);
        for _ in 0..self.slots.len() {
            match &self.slots[i] {
                Some(e) if e.tuple == *tuple => return Some(i),
                None => return None,
                _ => i = (i + 1) & (self.slots.len() - 1),
            }
        }
        None
    }

    /// Accounts `bytes` received on `tuple` for `coflow_id`, inserting
    /// the flow (open) if unseen.
    pub fn record_bytes(&mut self, tuple: FiveTuple, coflow_id: u64, bytes: f64) {
        if let Some(i) = self.find(&tuple) {
            let e = self.slots[i].as_mut().expect("found slot is occupied");
            e.bytes_received += bytes;
            return;
        }
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.slot_of(&tuple);
        while self.slots[i].is_some() {
            i = (i + 1) & (self.slots.len() - 1);
        }
        self.slots[i] = Some(FlowEntry {
            tuple,
            coflow_id,
            bytes_received: bytes,
            open: true,
        });
        self.len += 1;
    }

    /// Marks a flow's connection closed (the sender finished). Returns
    /// whether the flow was known.
    pub fn close(&mut self, tuple: &FiveTuple) -> bool {
        match self.find(tuple) {
            Some(i) => {
                self.slots[i].as_mut().expect("occupied").open = false;
                true
            }
            None => false,
        }
    }

    /// Looks up one flow.
    pub fn get(&self, tuple: &FiveTuple) -> Option<&FlowEntry> {
        self.find(tuple).and_then(|i| self.slots[i].as_ref())
    }

    /// Number of open connections belonging to `coflow_id` — the width
    /// estimate Ŵ the head receiver aggregates.
    pub fn open_connections(&self, coflow_id: u64) -> usize {
        self.iter()
            .filter(|e| e.coflow_id == coflow_id && e.open)
            .count()
    }

    /// Total and largest per-flow bytes received for `coflow_id` — the
    /// (Σ bytes, L̂_max) pair reported to the head receiver.
    pub fn coflow_bytes(&self, coflow_id: u64) -> (f64, f64) {
        self.iter()
            .filter(|e| e.coflow_id == coflow_id)
            .fold((0.0, 0.0), |(sum, max), e| {
                (sum + e.bytes_received, max.max(e.bytes_received))
            })
    }

    /// Removes every entry of a completed coflow ("the HR excludes
    /// information of completed flows"), returning how many were
    /// evicted. Remaining entries are rehashed.
    pub fn evict_coflow(&mut self, coflow_id: u64) -> usize {
        let retained: Vec<FlowEntry> = self
            .iter()
            .filter(|e| e.coflow_id != coflow_id)
            .copied()
            .collect();
        let evicted = self.len - retained.len();
        let cap = self.slots.len();
        self.slots = vec![None; cap];
        self.len = 0;
        for e in retained {
            self.reinsert(e);
        }
        evicted
    }

    /// Iterates over live entries.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    fn grow(&mut self) {
        let entries: Vec<FlowEntry> = self.iter().copied().collect();
        self.slots = vec![None; self.slots.len() * 2];
        self.len = 0;
        for e in entries {
            self.reinsert(e);
        }
    }

    fn reinsert(&mut self, e: FlowEntry) {
        let mut i = self.slot_of(&e.tuple);
        while self.slots[i].is_some() {
            i = (i + 1) & (self.slots.len() - 1);
        }
        self.slots[i] = Some(e);
        self.len += 1;
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::with_capacity(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(seed: u32) -> FiveTuple {
        FiveTuple {
            src_ip: 0x0a00_0000 | seed,
            dst_ip: 0x0a00_ff00 | (seed & 0xff),
            src_port: (1000 + seed) as u16,
            dst_port: 5001,
            protocol: 6,
        }
    }

    #[test]
    fn jenkins_hash_is_stable_and_spreads() {
        let a = jenkins_hash(b"hello");
        assert_eq!(a, jenkins_hash(b"hello"));
        assert_ne!(jenkins_hash(b"hello"), jenkins_hash(b"hellp"));
        // Distinct 5-tuples rarely collide in the low bits.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u32 {
            low_bits.insert(jenkins_hash(&tuple(i).bytes()) & 0xff);
        }
        assert!(low_bits.len() > 40, "poor dispersion: {}", low_bits.len());
    }

    #[test]
    fn record_and_lookup() {
        let mut t = FlowTable::with_capacity(8);
        t.record_bytes(tuple(1), 7, 100.0);
        t.record_bytes(tuple(1), 7, 50.0);
        t.record_bytes(tuple(2), 7, 10.0);
        t.record_bytes(tuple(3), 8, 1.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&tuple(1)).unwrap().bytes_received, 150.0);
        assert_eq!(t.open_connections(7), 2);
        let (sum, max) = t.coflow_bytes(7);
        assert_eq!(sum, 160.0);
        assert_eq!(max, 150.0);
    }

    #[test]
    fn close_marks_connection() {
        let mut t = FlowTable::default();
        t.record_bytes(tuple(1), 7, 5.0);
        assert!(t.close(&tuple(1)));
        assert!(!t.close(&tuple(9)));
        assert_eq!(t.open_connections(7), 0);
        // Bytes survive the close (receivers keep observed counts).
        assert_eq!(t.coflow_bytes(7).0, 5.0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = FlowTable::with_capacity(8);
        for i in 0..100 {
            t.record_bytes(tuple(i), u64::from(i % 5), 1.0);
        }
        assert_eq!(t.len(), 100);
        for i in 0..100 {
            assert!(t.get(&tuple(i)).is_some(), "lost flow {i} after growth");
        }
    }

    #[test]
    fn evict_coflow_removes_only_its_flows() {
        let mut t = FlowTable::default();
        for i in 0..20 {
            t.record_bytes(tuple(i), u64::from(i % 2), 1.0);
        }
        let evicted = t.evict_coflow(0);
        assert_eq!(evicted, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.open_connections(0), 0);
        assert_eq!(t.open_connections(1), 10);
    }

    #[test]
    fn empty_table_behaves() {
        let t = FlowTable::default();
        assert!(t.is_empty());
        assert_eq!(t.coflow_bytes(3), (0.0, 0.0));
        assert_eq!(t.get(&tuple(0)), None);
    }
}
