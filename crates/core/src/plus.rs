//! GuritaPlus: the idealized Gurita with information ahead of time.
//!
//! The paper's Figure 8 oracle: "an enhanced version … where information
//! on the total amount of bytes sent per stage is available and job
//! priority can be adjusted spontaneously without concerning TCP out of
//! order problem. GuritaPlus determines the blocking effect per stage by
//! utilizing total in-flight bytes sent per stage."
//!
//! Differences from the deployable [`crate::scheduler::GuritaScheduler`]:
//!
//! * Ψ uses **exact** per-flow remaining (in-flight-unsent) bytes from
//!   the oracle instead of receiver-side byte counts;
//! * ω uses the **exact** total stage count of the job (`1 − s/s_total`);
//! * Rule 4 uses the **exact** critical path of the job DAG (weights
//!   `L_max/r`) instead of the AVA estimate;
//! * live flows may be re-prioritized in both directions (no TCP
//!   reordering concern in the idealized setting).

use crate::blocking::{coflow_blocking_effect, CoflowFacts};
use crate::scheduler::GuritaConfig;
use crate::thresholds::ThresholdLadder;
use gurita_model::JobId;
use gurita_sim::sched::{Observation, Oracle, QueuePolicy, Scheduler};
use std::collections::HashMap;

/// The clairvoyant Gurita variant. See the module docs.
#[derive(Debug)]
pub struct GuritaPlus {
    config: GuritaConfig,
    ladder: ThresholdLadder,
    /// Exact critical-vertex sets per job, computed once from the DAG.
    critical: HashMap<JobId, Vec<bool>>,
}

impl GuritaPlus {
    /// Creates the scheduler. GuritaPlus shares [`GuritaConfig`] with
    /// the deployable scheduler so that Figure 8 compares the two under
    /// identical thresholds; the starvation-mitigation and load-
    /// estimation fields are ignored (GuritaPlus runs plain SPQ, as the
    /// idealized comparison in the paper does).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: GuritaConfig) -> Self {
        config.validate();
        let ladder = ThresholdLadder::exponential(
            config.num_queues,
            config.threshold_base,
            config.threshold_factor,
        );
        Self {
            config,
            ladder,
            critical: HashMap::new(),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &GuritaConfig {
        &self.config
    }

    fn critical_vertices(&mut self, job: JobId, oracle: &Oracle<'_>) -> Vec<bool> {
        if let Some(v) = self.critical.get(&job) {
            return v.clone();
        }
        let flags = match oracle.job_spec(job) {
            Some(spec) => {
                let weights: Vec<f64> = spec.coflows().iter().map(|c| c.max_flow_bytes()).collect();
                let critical = spec.dag().critical_vertices(&weights);
                let mut flags = vec![false; spec.dag().num_vertices()];
                for v in critical {
                    flags[v] = true;
                }
                flags
            }
            None => Vec::new(),
        };
        self.critical.insert(job, flags.clone());
        flags
    }
}

impl Scheduler for GuritaPlus {
    fn name(&self) -> String {
        "gurita+".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.config.num_queues
    }

    fn reprioritizes_live_flows(&self) -> bool {
        true
    }

    fn queue_policy(&mut self, _obs: &Observation) -> QueuePolicy {
        QueuePolicy::Strict
    }

    fn assign(&mut self, obs: &Observation, oracle: &Oracle<'_>) -> Vec<usize> {
        // Per-coflow Ψ from exact in-flight (remaining) bytes.
        let mut psis = Vec::with_capacity(obs.coflows.len());
        for c in &obs.coflows {
            let critical = self.critical_vertices(c.job, oracle);
            let spec = oracle.job_spec(c.job);
            let total_stages = spec.map(|s| s.num_stages());
            let (l_max, l_sum, n_open) = c
                .flows
                .iter()
                .filter(|f| f.open)
                .map(|f| oracle.remaining_bytes(f.id).unwrap_or(0.0))
                .fold((0.0f64, 0.0f64, 0usize), |(mx, sum, n), r| {
                    (mx.max(r), sum + r, n + 1)
                });
            let l_avg = if n_open > 0 {
                l_sum / n_open as f64
            } else {
                0.0
            };
            let facts = CoflowFacts {
                l_max,
                l_avg,
                width: n_open,
                completed_stages: c.dag_stage,
                total_stages,
                on_critical_path: critical.get(c.dag_vertex).copied().unwrap_or(false),
            };
            psis.push(coflow_blocking_effect(&facts, &self.config.blocking));
        }
        // Aggregate Ψ_J(s) exactly as the deployable scheduler does.
        let mut stage_sum: HashMap<(JobId, usize), f64> = HashMap::new();
        for (c, &psi) in obs.coflows.iter().zip(&psis) {
            *stage_sum.entry((c.job, c.dag_stage)).or_insert(0.0) += psi;
        }
        obs.coflows
            .iter()
            .map(|c| self.ladder.queue_for(stage_sum[&(c.job, c.dag_stage)]))
            .collect()
    }

    fn on_job_completed(&mut self, job: JobId, _now: f64) {
        self.critical.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::topology::BigSwitch;

    fn config() -> GuritaConfig {
        GuritaConfig {
            threshold_base: 1.0e6,
            threshold_factor: 10.0,
            reference_capacity: MB,
            ..GuritaConfig::default()
        }
    }

    fn sim() -> Simulation<BigSwitch> {
        Simulation::new(
            BigSwitch::new(16, MB),
            SimConfig {
                tick_interval: 0.05,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn oracle_variant_runs_and_reprioritizes() {
        let g = GuritaPlus::new(config());
        assert!(g.reprioritizes_live_flows());
        assert_eq!(g.name(), "gurita+");
    }

    #[test]
    fn completes_multi_stage_jobs() {
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| {
                JobSpec::new(
                    i,
                    0.0,
                    vec![
                        CoflowSpec::new(vec![FlowSpec::new(
                            HostId(i),
                            HostId(12),
                            (1 + i) as f64 * MB,
                        )]),
                        CoflowSpec::new(vec![FlowSpec::new(HostId(12), HostId(13 + (i % 2)), MB)]),
                    ],
                    JobDag::chain(2).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let mut plus = GuritaPlus::new(config());
        let res = sim().run(jobs, &mut plus);
        assert_eq!(res.jobs.len(), 4);
        assert!(res.avg_jct() > 0.0);
    }

    #[test]
    fn mouse_beats_elephant_with_exact_info() {
        let elephant = JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(9),
                100.0 * MB,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let mouse = JobSpec::new(
            1,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(1),
                HostId(9),
                1.0 * MB,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let mut plus = GuritaPlus::new(config());
        let res = sim().run(vec![elephant, mouse], &mut plus);
        let mouse_jct = res
            .jobs
            .iter()
            .find(|j| j.id == gurita_model::JobId(1))
            .unwrap()
            .jct;
        // Exact information demotes the elephant from the first instant.
        assert!(mouse_jct < 1.2, "mouse took {mouse_jct}");
    }

    #[test]
    fn critical_vertex_cache_is_evicted_on_completion() {
        let mut plus = GuritaPlus::new(config());
        plus.critical.insert(JobId(3), vec![true]);
        plus.on_job_completed(JobId(3), 0.0);
        assert!(plus.critical.is_empty());
    }
}
