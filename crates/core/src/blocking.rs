//! The blocking effect Ψ (paper eq. 2/3).
//!
//! A coflow's blocking effect models how strongly it is expected to
//! delay the completion of other jobs:
//!
//! ```text
//! Ψ_c = ω × L_max × W × κ
//! ```
//!
//! * `ω` — stage-progress weight (Rule 3): ideally `1 − s/s_total`; when
//!   the total stage count is unknown, `ω̂ = 1/(1+s)`, whose influence
//!   diminishes as `s → ∞` to avoid false final-stage positives on very
//!   deep jobs;
//! * `L_max` — the coflow's largest flow size (*vertical* dimension);
//! * `W` — the coflow's number of flows (*horizontal* dimension); the
//!   product `L_max × W` is the area approximating combined
//!   horizontal+vertical blocking severity (Rule 2);
//! * `κ` — flow-size adjustment (Rule 1). The paper's formula is
//!   OCR-damaged; per its prose — "`ρ` normalizes the blocking effect of
//!   `L_max` relative to other flows in `c` … if `L_max` is large and
//!   `ρ → 1`, a coflow may further delay the completion of other
//!   coflows" — we use `κ = max(κ_floor, ρ^β)` with `ρ = L_avg/L_max`:
//!   a uniformly-elephant coflow (ρ→1) blocks maximally, a single
//!   outlier among mice blocks less per byte of `L_max`, and the paper's
//!   `0.1` branch survives as the floor. See `DESIGN.md` §2.
//!
//! Per-stage job blocking: `Ψ_J(s) = Σ_{c ∈ stage s of J} Ψ_c`. Rule 4
//! discounts coflows estimated to lie on a critical path:
//! `Ψ ← Ψ × (1 − γ)`.

use crate::rules::RuleSet;
use serde::{Deserialize, Serialize};

/// Parameters of the blocking-effect formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockingParams {
    /// Exponent β ∈ (0, 1) of the κ size adjustment.
    pub beta: f64,
    /// Floor of κ (the paper's `0.1` branch).
    pub kappa_floor: f64,
    /// Critical-path discount γ ∈ (0, 1]: critical coflows' Ψ is
    /// multiplied by `1 − γ`, giving them "marginally larger blocking
    /// effect than the least" a pass upward in priority.
    pub gamma: f64,
    /// Which rules participate (ablation knob).
    pub rules: RuleSet,
}

impl Default for BlockingParams {
    fn default() -> Self {
        Self {
            beta: 0.5,
            kappa_floor: 0.1,
            gamma: 0.5,
            rules: RuleSet::all(),
        }
    }
}

impl BlockingParams {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if β ∉ (0, 1), κ_floor ∉ (0, 1], or γ ∉ (0, 1].
    pub fn validate(&self) {
        assert!(
            self.beta > 0.0 && self.beta < 1.0,
            "beta must be in (0, 1), got {}",
            self.beta
        );
        assert!(
            self.kappa_floor > 0.0 && self.kappa_floor <= 1.0,
            "kappa floor must be in (0, 1], got {}",
            self.kappa_floor
        );
        assert!(
            self.gamma > 0.0 && self.gamma <= 1.0,
            "gamma must be in (0, 1], got {}",
            self.gamma
        );
    }
}

/// Inputs to one coflow's blocking effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoflowFacts {
    /// Largest flow size, exact or estimated (bytes).
    pub l_max: f64,
    /// Mean flow size, exact or estimated (bytes).
    pub l_avg: f64,
    /// Number of flows (width).
    pub width: usize,
    /// Completed predecessor stages `s` (the coflow's depth).
    pub completed_stages: usize,
    /// Total stages of the job, if known (`None` in practice; `Some` for
    /// the GuritaPlus oracle).
    pub total_stages: Option<usize>,
    /// Whether the coflow is (estimated to be) on a critical path.
    pub on_critical_path: bool,
}

/// The stage-progress weight ω.
///
/// With `total_stages` known (oracle): `ω = 1 − s/s_total`, floored at a
/// small positive value so final-stage coflows keep a nonzero Ψ
/// ordering. Unknown (practice): `ω̂ = 1/(1+s)`.
pub fn omega(completed_stages: usize, total_stages: Option<usize>) -> f64 {
    match total_stages {
        Some(total) if total > 0 => {
            (1.0 - completed_stages as f64 / total as f64).max(1.0 / (1.0 + total as f64))
        }
        _ => 1.0 / (1.0 + completed_stages as f64),
    }
}

/// The flow-size adjustment κ (Rule 1); see the module docs for the
/// reconstruction argument.
pub fn kappa(l_avg: f64, l_max: f64, params: &BlockingParams) -> f64 {
    if l_max <= 0.0 {
        return params.kappa_floor;
    }
    let rho = (l_avg / l_max).clamp(0.0, 1.0);
    rho.powf(params.beta).max(params.kappa_floor)
}

/// Computes one coflow's blocking effect Ψ_c.
///
/// Newly-started coflows with nothing observed yet (`l_max == 0`)
/// get Ψ = 0: they enter at the highest priority, exactly the paper's
/// "newly generated flows are initially assigned the highest priority".
pub fn coflow_blocking_effect(facts: &CoflowFacts, params: &BlockingParams) -> f64 {
    let rules = &params.rules;
    let w = if rules.avoid_blocking {
        facts.width.max(1) as f64
    } else {
        1.0
    };
    let l = facts.l_max.max(0.0);
    let om = if rules.final_stage_first {
        omega(facts.completed_stages, facts.total_stages)
    } else {
        1.0
    };
    let ka = if rules.small_stages_first {
        kappa(facts.l_avg, facts.l_max, params)
    } else {
        1.0
    };
    let mut psi = om * l * w * ka;
    if rules.critical_path_first && facts.on_critical_path {
        psi *= 1.0 - params.gamma;
    }
    psi
}

/// Aggregates per-coflow blocking effects into the per-stage job
/// blocking effect `Ψ_J(s) = Σ Ψ_c` over the coflows of one job that
/// currently share stage `s`.
pub fn job_stage_blocking_effect(coflow_psis: &[f64]) -> f64 {
    coflow_psis.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn facts(l_max: f64, l_avg: f64, width: usize, stages: usize) -> CoflowFacts {
        CoflowFacts {
            l_max,
            l_avg,
            width,
            completed_stages: stages,
            total_stages: None,
            on_critical_path: false,
        }
    }

    #[test]
    fn omega_decreases_with_progress() {
        assert_eq!(omega(0, None), 1.0);
        assert_eq!(omega(1, None), 0.5);
        assert!(omega(10, None) < omega(2, None));
        // Oracle form: linear descent.
        assert_eq!(omega(0, Some(4)), 1.0);
        assert_eq!(omega(2, Some(4)), 0.5);
        assert!(omega(4, Some(4)) > 0.0, "floored above zero");
    }

    #[test]
    fn omega_influence_diminishes_for_deep_jobs() {
        // A 12-stage job at stage 10 must not look "more final" than a
        // 2-stage job at stage 1 by a wide margin (false positives).
        let deep = omega(10, None);
        let shallow = omega(1, None);
        assert!(deep < shallow);
    }

    #[test]
    fn kappa_rewards_outlier_elephants() {
        let p = BlockingParams::default();
        // All flows equal: maximal adjustment.
        let uniform = kappa(10.0, 10.0, &p);
        assert!((uniform - 1.0).abs() < 1e-12);
        // One elephant among mice: lower adjustment, floored.
        let outlier = kappa(0.001, 10.0, &p);
        assert_eq!(outlier, p.kappa_floor);
        assert!(kappa(5.0, 10.0, &p) > kappa(1.0, 10.0, &p));
    }

    #[test]
    fn kappa_handles_no_information() {
        let p = BlockingParams::default();
        assert_eq!(kappa(0.0, 0.0, &p), p.kappa_floor);
    }

    #[test]
    fn psi_is_zero_before_any_bytes_observed() {
        let p = BlockingParams::default();
        assert_eq!(coflow_blocking_effect(&facts(0.0, 0.0, 5, 0), &p), 0.0);
    }

    #[test]
    fn psi_grows_with_both_dimensions() {
        let p = BlockingParams::default();
        let base = coflow_blocking_effect(&facts(10.0, 10.0, 2, 0), &p);
        let wider = coflow_blocking_effect(&facts(10.0, 10.0, 8, 0), &p);
        let taller = coflow_blocking_effect(&facts(40.0, 40.0, 2, 0), &p);
        assert!(wider > base, "horizontal dimension must raise psi");
        assert!(taller > base, "vertical dimension must raise psi");
    }

    #[test]
    fn later_stages_shrink_psi() {
        let p = BlockingParams::default();
        let early = coflow_blocking_effect(&facts(10.0, 10.0, 2, 0), &p);
        let late = coflow_blocking_effect(&facts(10.0, 10.0, 2, 3), &p);
        assert!(late < early, "rule 3: later stages get smaller psi");
    }

    #[test]
    fn critical_path_discount_applies() {
        let p = BlockingParams::default();
        let mut f = facts(10.0, 10.0, 2, 0);
        let off = coflow_blocking_effect(&f, &p);
        f.on_critical_path = true;
        let on = coflow_blocking_effect(&f, &p);
        assert!((on - off * (1.0 - p.gamma)).abs() < 1e-12);
    }

    #[test]
    fn disabled_rules_are_inert() {
        let mut p = BlockingParams::default();
        let mut f = facts(10.0, 1.0, 4, 2);
        f.on_critical_path = true;
        let full = coflow_blocking_effect(&f, &p);
        p.rules = RuleSet::all()
            .without(Rule::SmallStagesFirst)
            .without(Rule::FinalStageFirst)
            .without(Rule::CriticalPathFirst)
            .without(Rule::AvoidBlocking);
        let bare = coflow_blocking_effect(&f, &p);
        // Only L_max survives.
        assert_eq!(bare, 10.0);
        assert_ne!(full, bare);
    }

    #[test]
    fn job_stage_aggregation_is_a_sum() {
        assert_eq!(job_stage_blocking_effect(&[1.0, 2.5, 0.5]), 4.0);
        assert_eq!(job_stage_blocking_effect(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn validate_rejects_bad_beta() {
        BlockingParams {
            beta: 1.5,
            ..BlockingParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn validate_rejects_bad_gamma() {
        BlockingParams {
            gamma: 0.0,
            ..BlockingParams::default()
        }
        .validate();
    }
}
