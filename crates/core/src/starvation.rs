//! Starvation mitigation: SPQ emulation with WRR.
//!
//! Strict-priority schedulers starve low-priority traffic under
//! saturation. Gurita mitigates this by *emulating* SPQ with Weighted
//! Round Robin whose per-queue weights derive from the queues' SPQ
//! waiting times (paper §IV.B "Starvation Mitigation"):
//!
//! With per-queue loads `ρ_i = λ_i / C` and cumulative loads
//! `σ_k = ρ_0 + … + ρ_k`, the mean waits in a non-preemptive priority
//! queue (Kleinrock vol. 2) are
//!
//! ```text
//! W_0 = ρ_0 / (1 − ρ_0)
//! W_k = W_0 / ((1 − σ_{k−1}) (1 − σ_k)),   k ≥ 1
//! ```
//!
//! and the WRR weights invert them: `w_k = (1/W_k) / Σ_j (1/W_j)`, so a
//! queue that would wait long under SPQ still receives a small but
//! positive service share. Arrival rates `λ_i` are estimated online by
//! an exponentially-weighted moving average of bytes entering each
//! queue.

use serde::{Deserialize, Serialize};

/// Highest load any single queue (or the total) is allowed to report, to
/// keep the Kleinrock denominators away from their poles.
const RHO_CAP: f64 = 0.95;
/// Load floor: an idle queue still gets a tiny ρ so its weight exists.
const RHO_FLOOR: f64 = 1e-4;

/// Computes SPQ mean waiting times per queue from per-queue loads.
///
/// Loads are *renormalized to the saturation operating point*
/// (Σρ = RHO_CAP): starvation — and therefore the emulation — only
/// matters when a link is saturated, and at low measured load the raw
/// Kleinrock waits converge to equality, which would erase the priority
/// ordering entirely. Evaluating the formulas at saturation with the
/// measured *relative* loads preserves SPQ's strict ordering while
/// keeping every queue's share positive. Only the relative magnitudes
/// of `rho` matter as a result.
///
/// # Panics
///
/// Panics if `rho` is empty or contains negative / non-finite entries.
pub fn spq_waiting_times(rho: &[f64]) -> Vec<f64> {
    assert!(!rho.is_empty(), "at least one queue load required");
    for &r in rho {
        assert!(r.is_finite() && r >= 0.0, "loads must be non-negative");
    }
    // Renormalize relative loads to the saturation operating point; with
    // nothing measured yet, assume equal relative loads.
    let total: f64 = rho.iter().sum();
    let rho: Vec<f64> = if total > 0.0 {
        rho.iter()
            .map(|r| (r * RHO_CAP / total).max(RHO_FLOOR))
            .collect()
    } else {
        vec![RHO_CAP / rho.len() as f64; rho.len()]
    };
    // The floors can nudge the sum past the cap; re-cap.
    let total: f64 = rho.iter().sum();
    let rho: Vec<f64> = if total > RHO_CAP {
        rho.iter().map(|r| r * RHO_CAP / total).collect()
    } else {
        rho
    };
    let mut sigma = 0.0;
    let mut waits = Vec::with_capacity(rho.len());
    let w0 = {
        let r0 = rho[0].min(RHO_CAP);
        r0 / (1.0 - r0)
    };
    for (k, &r) in rho.iter().enumerate() {
        let prev_sigma = sigma;
        sigma = (sigma + r).min(RHO_CAP);
        let w = if k == 0 {
            w0
        } else {
            w0 / ((1.0 - prev_sigma) * (1.0 - sigma))
        };
        waits.push(w.max(1e-9));
    }
    waits
}

/// Derives normalized WRR weights from per-queue loads by inverting the
/// SPQ waiting times: `w_k ∝ 1 / W_k`. Weights are positive and sum
/// to 1, and are non-increasing in queue index for equal loads (lower
/// priority ⇒ longer SPQ wait ⇒ smaller WRR weight).
///
/// # Panics
///
/// Propagates the panics of [`spq_waiting_times`].
pub fn wrr_weights(rho: &[f64]) -> Vec<f64> {
    let waits = spq_waiting_times(rho);
    let inv: Vec<f64> = waits.iter().map(|w| 1.0 / w).collect();
    let total: f64 = inv.iter().sum();
    inv.into_iter().map(|w| w / total).collect()
}

/// Online per-queue arrival-rate estimator (EWMA of bytes/sec entering
/// each queue), feeding the load vector of [`wrr_weights`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadEstimator {
    /// EWMA smoothing factor in (0, 1]; 1 = no smoothing.
    alpha: f64,
    /// Reference capacity (bytes/sec) loads are normalized by.
    capacity: f64,
    rates: Vec<f64>,
    last_time: Option<f64>,
}

impl LoadEstimator {
    /// Creates an estimator for `num_queues` queues, normalizing by the
    /// reference `capacity` (e.g. one NIC's line rate).
    ///
    /// # Panics
    ///
    /// Panics unless `num_queues >= 1`, `alpha ∈ (0, 1]`, and
    /// `capacity > 0`.
    pub fn new(num_queues: usize, alpha: f64, capacity: f64) -> Self {
        assert!(num_queues >= 1, "at least one queue");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(capacity > 0.0, "capacity must be positive");
        Self {
            alpha,
            capacity,
            rates: vec![0.0; num_queues],
            last_time: None,
        }
    }

    /// Feeds one sample: `bytes_per_queue[q]` bytes entered queue `q`
    /// since the previous call, at time `now`. Samples with
    /// non-increasing timestamps are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the sample length differs from the queue count.
    pub fn record(&mut self, now: f64, bytes_per_queue: &[f64]) {
        assert_eq!(
            bytes_per_queue.len(),
            self.rates.len(),
            "one sample per queue"
        );
        let Some(last) = self.last_time else {
            self.last_time = Some(now);
            return;
        };
        let dt = now - last;
        if dt <= 0.0 {
            return;
        }
        self.last_time = Some(now);
        for (rate, &bytes) in self.rates.iter_mut().zip(bytes_per_queue) {
            let inst = (bytes / dt).max(0.0);
            *rate = self.alpha * inst + (1.0 - self.alpha) * *rate;
        }
    }

    /// Current load vector ρ (rates normalized by capacity, unclamped —
    /// [`wrr_weights`] applies the caps).
    pub fn loads(&self) -> Vec<f64> {
        self.rates.iter().map(|r| r / self.capacity).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_increase_with_queue_index() {
        let waits = spq_waiting_times(&[0.2, 0.2, 0.2, 0.2]);
        for w in waits.windows(2) {
            assert!(w[1] > w[0], "lower priority must wait longer: {waits:?}");
        }
    }

    #[test]
    fn weights_are_normalized_and_ordered() {
        let w = wrr_weights(&[0.2, 0.2, 0.2, 0.2]);
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1], "weights must favor high priority: {w:?}");
        }
        assert!(w.iter().all(|&x| x > 0.0), "no queue starves: {w:?}");
    }

    #[test]
    fn saturated_loads_are_renormalized() {
        let w = wrr_weights(&[1.0, 1.0, 1.0, 1.0]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x.is_finite() && x > 0.0));
    }

    #[test]
    fn idle_queues_still_get_weight() {
        let w = wrr_weights(&[0.5, 0.0, 0.0, 0.0]);
        assert!(w[3] > 0.0);
        assert!(w[0] > w[3]);
    }

    #[test]
    fn estimator_converges_to_steady_rate() {
        let mut e = LoadEstimator::new(2, 0.5, 100.0);
        // 50 bytes/sec into queue 0, 10 into queue 1.
        for i in 0..40 {
            e.record(i as f64, &[50.0, 10.0]);
        }
        let loads = e.loads();
        assert!((loads[0] - 0.5).abs() < 0.02, "{loads:?}");
        assert!((loads[1] - 0.1).abs() < 0.02, "{loads:?}");
    }

    #[test]
    fn estimator_ignores_time_regressions() {
        let mut e = LoadEstimator::new(1, 1.0, 1.0);
        e.record(1.0, &[1.0]);
        e.record(2.0, &[4.0]);
        let before = e.loads();
        e.record(2.0, &[1000.0]);
        assert_eq!(e.loads(), before);
    }

    #[test]
    #[should_panic(expected = "one sample per queue")]
    fn estimator_rejects_wrong_arity() {
        let mut e = LoadEstimator::new(2, 0.5, 1.0);
        e.record(0.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn waits_reject_negative_load() {
        let _ = spq_waiting_times(&[-0.1]);
    }
}
