//! The Gurita scheduler: Least-Blocking-Effect-First (Algorithm 1).
//!
//! [`GuritaScheduler`] is the deployable, decentralized design: it reads
//! only receiver-side observations (bytes received per open connection,
//! open-connection counts, dependency depth learned from parent→child
//! invocations), estimates each coflow's blocking effect
//! Ψ̂ = ω̂ × L̂_max × Ŵ × κ̂, aggregates per job stage, and maps
//! Ψ̂_J(s) through exponentially-spaced thresholds onto the switch
//! priority queues. Rule 4 is satisfied with the AVA critical-path
//! estimate; starvation is mitigated by emulating SPQ with WRR weights
//! derived from priority-queue waiting times.
//!
//! The runtime enforces the paper's TCP-reordering discipline for this
//! scheduler: live flows are only ever demoted; priority raises apply to
//! subsequently started flows.

use crate::ava::AvaEstimator;
use crate::blocking::{coflow_blocking_effect, BlockingParams, CoflowFacts};
use crate::hr::DelayedDecision;
use crate::starvation::{wrr_weights, LoadEstimator};
use crate::thresholds::ThresholdLadder;
use gurita_model::{units, CoflowId, JobId};
use gurita_sim::sched::{Observation, Oracle, QueuePolicy, Scheduler};
use std::collections::HashMap;

/// Configuration of the decentralized Gurita scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct GuritaConfig {
    /// Number of switch priority queues (the evaluation uses 4; today's
    /// commodity switches support 8).
    pub num_queues: usize,
    /// Base threshold θ_0 in Ψ units (bytes × flows).
    pub threshold_base: f64,
    /// Exponential spacing factor between consecutive thresholds.
    pub threshold_factor: f64,
    /// Blocking-effect parameters (β, κ floor, γ, rule set).
    pub blocking: BlockingParams,
    /// Cap on coflows flagged as critical per job (the paper bounds the
    /// count by the number of critical paths, < 5 in production).
    pub critical_path_cap: usize,
    /// Emulate SPQ with WRR to mitigate starvation (paper §IV.B). When
    /// false, plain strict priority is used.
    pub starvation_mitigation: bool,
    /// EWMA smoothing for the per-queue arrival-rate estimator.
    pub load_alpha: f64,
    /// Reference capacity (bytes/sec) that per-queue loads are
    /// normalized by — one NIC line rate in the evaluation.
    pub reference_capacity: f64,
    /// Head-receiver coordination latency: a priority decision computed
    /// at time t takes effect at t + latency (see [`crate::hr`]).
    /// Default 0 — the paper's simulation applies decisions at δ
    /// granularity with no extra propagation delay.
    pub decision_latency: f64,
}

impl Default for GuritaConfig {
    fn default() -> Self {
        Self {
            num_queues: 4,
            threshold_base: 1.0e7,
            threshold_factor: 20.0,
            blocking: BlockingParams::default(),
            critical_path_cap: 5,
            starvation_mitigation: true,
            load_alpha: 0.3,
            reference_capacity: units::GBPS_10,
            decision_latency: 0.0,
        }
    }
}

impl GuritaConfig {
    /// Validates all parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (see field docs).
    pub fn validate(&self) {
        assert!(
            (1..=8).contains(&self.num_queues),
            "commodity switches support 1..=8 queues, got {}",
            self.num_queues
        );
        assert!(self.threshold_base > 0.0, "threshold base must be positive");
        assert!(
            self.threshold_factor > 1.0,
            "threshold factor must exceed 1"
        );
        self.blocking.validate();
        assert!(
            self.critical_path_cap >= 1,
            "critical-path cap must be >= 1"
        );
        assert!(
            self.load_alpha > 0.0 && self.load_alpha <= 1.0,
            "load alpha must be in (0, 1]"
        );
        assert!(self.reference_capacity > 0.0, "capacity must be positive");
        assert!(
            self.decision_latency >= 0.0 && self.decision_latency.is_finite(),
            "decision latency must be non-negative"
        );
    }
}

/// The decentralized Gurita scheduler. See the module docs.
#[derive(Debug)]
pub struct GuritaScheduler {
    config: GuritaConfig,
    ladder: ThresholdLadder,
    /// Per-job AVA over observed per-coflow L̂_max (critical-path
    /// estimation).
    ava: HashMap<JobId, AvaEstimator>,
    /// Last observed L̂_max per active coflow (fed into AVA on
    /// completion).
    last_lmax: HashMap<CoflowId, f64>,
    /// Bytes observed per coflow at the previous decision point, plus
    /// the queue the coflow was assigned (arrival-rate estimation).
    last_bytes: HashMap<CoflowId, (f64, usize)>,
    /// Per-coflow HR decision pipelines (propagation latency).
    decisions: HashMap<CoflowId, DelayedDecision>,
    loads: LoadEstimator,
}

impl GuritaScheduler {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`GuritaConfig::validate`]).
    pub fn new(config: GuritaConfig) -> Self {
        config.validate();
        let ladder = ThresholdLadder::exponential(
            config.num_queues,
            config.threshold_base,
            config.threshold_factor,
        );
        let loads = LoadEstimator::new(
            config.num_queues,
            config.load_alpha,
            config.reference_capacity,
        );
        Self {
            config,
            ladder,
            ava: HashMap::new(),
            last_lmax: HashMap::new(),
            last_bytes: HashMap::new(),
            decisions: HashMap::new(),
            loads,
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &GuritaConfig {
        &self.config
    }

    /// Flags up to `critical_path_cap` coflows per job whose observed
    /// L̂_max exceeds the job's AVA mean — the practical Rule 4 test.
    fn critical_flags(&self, obs: &Observation) -> Vec<bool> {
        let mut flags = vec![false; obs.coflows.len()];
        for job in &obs.jobs {
            let Some(ava) = self.ava.get(&job.id) else {
                continue;
            };
            let mut candidates: Vec<(usize, f64)> = job
                .active_coflows
                .iter()
                .map(|&ci| (ci, obs.coflows[ci].max_flow_bytes_received))
                .filter(|&(_, lmax)| ava.is_above_mean(lmax))
                .collect();
            candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("observed bytes are finite"));
            for &(ci, _) in candidates.iter().take(self.config.critical_path_cap) {
                flags[ci] = true;
            }
        }
        flags
    }
}

impl Scheduler for GuritaScheduler {
    fn name(&self) -> String {
        "gurita".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.config.num_queues
    }

    fn assign(&mut self, obs: &Observation, _oracle: &Oracle<'_>) -> Vec<usize> {
        // 1. Per-coflow blocking effects from receiver-side estimates.
        let flags = self.critical_flags(obs);
        let psis: Vec<f64> = obs
            .coflows
            .iter()
            .zip(&flags)
            .map(|(c, &cp)| {
                let facts = CoflowFacts {
                    l_max: c.max_flow_bytes_received,
                    l_avg: c.avg_flow_bytes_received(),
                    width: c.open_flows,
                    completed_stages: c.dag_stage,
                    total_stages: None,
                    on_critical_path: cp,
                };
                coflow_blocking_effect(&facts, &self.config.blocking)
            })
            .collect();
        // 2. Aggregate Ψ_J(s) per (job, stage): a coflow is prioritized
        // by its job-stage aggregate, so sibling coflows in the same
        // stage share a fate (the paper's Ψ_J(s) = Σ Ψ_c).
        let mut stage_sum: HashMap<(JobId, usize), f64> = HashMap::new();
        for (c, &psi) in obs.coflows.iter().zip(&psis) {
            *stage_sum.entry((c.job, c.dag_stage)).or_insert(0.0) += psi;
        }
        // 3. Thresholds → queues, and bookkeeping for the rate estimator
        // and critical-path AVA.
        let mut assignment = Vec::with_capacity(obs.coflows.len());
        let mut queue_bytes = vec![0.0; self.config.num_queues];
        let latency = self.config.decision_latency;
        for c in &obs.coflows {
            let psi_js = stage_sum[&(c.job, c.dag_stage)];
            let target = self.ladder.queue_for(psi_js);
            let queue = self
                .decisions
                .entry(c.id)
                .or_insert_with(|| DelayedDecision::new(0))
                .decide(obs.now, latency, target);
            assignment.push(queue);
            let (prev_bytes, prev_queue) =
                self.last_bytes.get(&c.id).copied().unwrap_or((0.0, queue));
            queue_bytes[prev_queue] += (c.bytes_received - prev_bytes).max(0.0);
            self.last_bytes.insert(c.id, (c.bytes_received, queue));
            self.last_lmax.insert(c.id, c.max_flow_bytes_received);
        }
        self.loads.record(obs.now, &queue_bytes);
        assignment
    }

    fn queue_policy(&mut self, _obs: &Observation) -> QueuePolicy {
        if self.config.starvation_mitigation {
            QueuePolicy::Weighted(wrr_weights(&self.loads.loads()))
        } else {
            QueuePolicy::Strict
        }
    }

    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, _now: f64) {
        if let Some(lmax) = self.last_lmax.remove(&coflow) {
            self.ava.entry(job).or_default().observe(lmax);
        }
        self.last_bytes.remove(&coflow);
        self.decisions.remove(&coflow);
    }

    fn on_job_completed(&mut self, job: JobId, _now: f64) {
        self.ava.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::sched::FifoScheduler;
    use gurita_sim::topology::BigSwitch;

    const MB: f64 = units::MB;

    fn config() -> GuritaConfig {
        GuritaConfig {
            reference_capacity: 1.0 * MB,
            threshold_base: 2.0e5,
            threshold_factor: 10.0,
            ..GuritaConfig::default()
        }
    }

    fn sim() -> Simulation<BigSwitch> {
        Simulation::new(
            BigSwitch::new(16, 1.0 * MB),
            SimConfig {
                tick_interval: 0.05,
                ..SimConfig::default()
            },
        )
    }

    fn single_coflow_job(id: usize, flows: Vec<FlowSpec>) -> JobSpec {
        JobSpec::new(
            id,
            0.0,
            vec![CoflowSpec::new(flows)],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()
    }

    /// Heterogeneous mix (the regime the paper's gains come from): one
    /// wide elephant job blocking a downlink plus several mice. LBEF
    /// demotes the elephant once its blocking effect crosses the first
    /// threshold, letting the mice finish near their ideal times, which
    /// lowers the average JCT versus per-flow fair sharing.
    /// No information-agnostic scheduler can separate jobs that arrived
    /// together (equal attained service), so — like the paper's trace
    /// scenarios — the gains appear once elephants have accumulated
    /// blocking effect before mice arrive.
    #[test]
    fn blocking_aware_mix_beats_fair_sharing() {
        // Elephant: 5 flows x 10 MB into host 9, arrives first; mice:
        // 1 MB singletons arriving once the elephant is established.
        let elephant = single_coflow_job(
            0,
            (0..5)
                .map(|i| FlowSpec::new(HostId(i), HostId(9), 10.0 * MB))
                .collect(),
        );
        let mice: Vec<JobSpec> = (1..5)
            .map(|j| {
                single_coflow_job(j, vec![FlowSpec::new(HostId(4 + j), HostId(9), 1.0 * MB)])
                    .with_arrival(2.0 + 0.5 * j as f64)
            })
            .collect();
        let mut jobs = vec![elephant];
        jobs.extend(mice);

        let fair = sim().run(jobs.clone(), &mut FifoScheduler::new(1));
        let mut gurita = GuritaScheduler::new(GuritaConfig {
            starvation_mitigation: false,
            ..config()
        });
        let blocked_aware = sim().run(jobs, &mut gurita);
        assert!(
            blocked_aware.avg_jct() < 0.8 * fair.avg_jct(),
            "gurita {} should clearly beat fair {}",
            blocked_aware.avg_jct(),
            fair.avg_jct()
        );
    }

    #[test]
    fn late_mouse_preempts_established_elephant() {
        // The elephant arrives at t=0 and accumulates blocking effect;
        // a 1 MB mouse arriving at t=5 must finish near its ideal 1 s
        // instead of the 2 s fair sharing would give it.
        let elephant = single_coflow_job(0, vec![FlowSpec::new(HostId(0), HostId(9), 100.0 * MB)]);
        let mouse = single_coflow_job(1, vec![FlowSpec::new(HostId(1), HostId(9), 1.0 * MB)])
            .with_arrival(5.0);
        let mut gurita = GuritaScheduler::new(GuritaConfig {
            starvation_mitigation: false,
            ..config()
        });
        let res = sim().run(vec![elephant, mouse], &mut gurita);
        let mouse_jct = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap().jct;
        assert!(
            mouse_jct < 1.3,
            "mouse should finish near 1s under LBEF, took {mouse_jct}"
        );
    }

    #[test]
    fn starvation_mitigation_keeps_low_priority_moving() {
        // Continuous high-priority pressure; with WRR emulation the big
        // demoted job must still make progress (finite completion with
        // bounded stretch).
        let elephant = single_coflow_job(0, vec![FlowSpec::new(HostId(0), HostId(9), 50.0 * MB)]);
        let mice: Vec<JobSpec> = (1..6)
            .map(|j| {
                JobSpec::new(
                    j,
                    (j - 1) as f64 * 10.0,
                    vec![CoflowSpec::new(vec![FlowSpec::new(
                        HostId(1),
                        HostId(9),
                        5.0 * MB,
                    )])],
                    JobDag::chain(1).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let mut jobs = vec![elephant];
        jobs.extend(mice);
        let mut with_wrr = GuritaScheduler::new(config());
        let res = sim().run(jobs, &mut with_wrr);
        assert_eq!(res.jobs.len(), 6);
    }

    #[test]
    fn new_coflows_start_at_highest_priority() {
        let mut g = GuritaScheduler::new(config());
        let obs = Observation {
            now: 0.0,
            coflows: vec![gurita_sim::sched::CoflowObs {
                id: CoflowId(0),
                job: JobId(0),
                dag_vertex: 0,
                dag_stage: 0,
                activated_at: 0.0,
                open_flows: 3,
                bytes_received: 0.0,
                max_flow_bytes_received: 0.0,
                flows: vec![],
            }],
            jobs: vec![gurita_sim::sched::JobObs {
                id: JobId(0),
                arrival: 0.0,
                completed_coflows: 0,
                completed_stages: 0,
                completed_bytes: 0.0,
                bytes_received: 0.0,
                active_coflows: vec![0],
            }],
        };
        let jobs = HashMap::new();
        let rem = |_| None;
        let size = |_| None;
        let oracle = Oracle::new(&jobs, &rem, &size);
        assert_eq!(g.assign(&obs, &oracle), vec![0]);
    }

    #[test]
    fn heavy_stage_gets_demoted() {
        let mut g = GuritaScheduler::new(config());
        let mk = |id: usize, lmax: f64, bytes: f64, width: usize| gurita_sim::sched::CoflowObs {
            id: CoflowId(id),
            job: JobId(id),
            dag_vertex: 0,
            dag_stage: 0,
            activated_at: 0.0,
            open_flows: width,
            bytes_received: bytes,
            max_flow_bytes_received: lmax,
            flows: vec![],
        };
        let obs = Observation {
            now: 1.0,
            coflows: vec![
                mk(0, 0.05 * MB, 0.1 * MB, 2),
                mk(1, 100.0 * MB, 900.0 * MB, 40),
            ],
            jobs: vec![
                gurita_sim::sched::JobObs {
                    id: JobId(0),
                    arrival: 0.0,
                    completed_coflows: 0,
                    completed_stages: 0,
                    completed_bytes: 0.0,
                    bytes_received: 0.1 * MB,
                    active_coflows: vec![0],
                },
                gurita_sim::sched::JobObs {
                    id: JobId(1),
                    arrival: 0.0,
                    completed_coflows: 0,
                    completed_stages: 0,
                    completed_bytes: 0.0,
                    bytes_received: 900.0 * MB,
                    active_coflows: vec![1],
                },
            ],
        };
        let jobs = HashMap::new();
        let rem = |_| None;
        let size = |_| None;
        let oracle = Oracle::new(&jobs, &rem, &size);
        let a = g.assign(&obs, &oracle);
        assert_eq!(a[0], 0, "tiny stage stays at top priority");
        assert!(a[1] > 0, "blocking stage must be demoted, got {:?}", a);
    }

    #[test]
    fn multi_stage_small_job_beats_tbs_intuition() {
        // A 3-stage job with tiny per-stage bytes vs a single-stage job
        // with the same total: Gurita should not punish the deep job.
        let deep = JobSpec::new(
            0,
            0.0,
            (0..3)
                .map(|s| CoflowSpec::new(vec![FlowSpec::new(HostId(s), HostId(9), 2.0 * MB)]))
                .collect(),
            JobDag::chain(3).unwrap(),
        )
        .unwrap();
        let flat = single_coflow_job(1, vec![FlowSpec::new(HostId(5), HostId(9), 6.0 * MB)]);
        let mut g = GuritaScheduler::new(GuritaConfig {
            starvation_mitigation: false,
            ..config()
        });
        let res = sim().run(vec![deep, flat], &mut g);
        assert_eq!(res.jobs.len(), 2);
        let deep_jct = res.jobs.iter().find(|j| j.id == JobId(0)).unwrap().jct;
        // Ideal deep JCT alone is 6s; with contention it must stay well
        // under double the ideal because each stage is tiny.
        assert!(deep_jct < 12.0, "deep job took {deep_jct}");
    }

    #[test]
    fn decision_latency_defers_demotion() {
        // With a large HR latency, the established elephant's demotion
        // is deferred, so a late mouse sees fair sharing for longer and
        // finishes later than with instantaneous decisions.
        let build = |latency: f64| {
            GuritaScheduler::new(GuritaConfig {
                starvation_mitigation: false,
                decision_latency: latency,
                ..config()
            })
        };
        let elephant = single_coflow_job(0, vec![FlowSpec::new(HostId(0), HostId(9), 100.0 * MB)]);
        // The mouse arrives while the slow HR's demotion message is
        // still in flight (sent ~0.5s, latency 3s), so it shares the
        // link fairly until ~3.5s under the slow configuration.
        let mouse = single_coflow_job(1, vec![FlowSpec::new(HostId(1), HostId(9), 1.0 * MB)])
            .with_arrival(2.0);
        let fast = {
            let mut g = build(0.0);
            sim().run(vec![elephant.clone(), mouse.clone()], &mut g)
        };
        let slow = {
            let mut g = build(3.0);
            sim().run(vec![elephant, mouse], &mut g)
        };
        let jct = |r: &gurita_sim::stats::RunResult| {
            r.jobs.iter().find(|j| j.id == JobId(1)).unwrap().jct
        };
        assert!(
            jct(&slow) > jct(&fast) + 0.2,
            "latency should visibly delay the mouse: {} vs {}",
            jct(&slow),
            jct(&fast)
        );
    }

    #[test]
    fn config_validation_rejects_bad_queues() {
        let cfg = GuritaConfig {
            num_queues: 9,
            ..GuritaConfig::default()
        };
        assert!(std::panic::catch_unwind(|| GuritaScheduler::new(cfg)).is_err());
    }

    #[test]
    fn completion_hooks_clean_state() {
        let mut g = GuritaScheduler::new(config());
        g.last_lmax.insert(CoflowId(5), 3.0);
        g.last_bytes.insert(CoflowId(5), (3.0, 1));
        g.on_coflow_completed(CoflowId(5), JobId(2), 1.0);
        assert!(g.last_lmax.is_empty());
        assert!(g.last_bytes.is_empty());
        assert_eq!(g.ava[&JobId(2)].count(), 1);
        g.on_job_completed(JobId(2), 2.0);
        assert!(g.ava.is_empty());
    }
}
