//! Gurita: a decentralized coflow scheduler for multi-stage datacenter
//! jobs (reproduction of Susanto et al., IEEE ICDCS 2019).
//!
//! Gurita minimizes average job completion time (JCT) by scheduling the
//! coflows of multi-stage jobs according to their per-stage **blocking
//! effect** — a job's likelihood to delay the completion of other jobs —
//! instead of the total bytes sent (TBS) that prior schedulers
//! (Varys/Aalo/Baraat/Stream) rank by. The design follows four rules
//! derived from Johnson's classic flow-shop results (see [`rules`]):
//!
//! 1. prioritize job stages with fewer, shorter flows;
//! 2. avoid horizontal (many concurrent flows) and vertical (elephant
//!    flows) blocking;
//! 3. prioritize jobs in their final stage;
//! 4. prioritize coflows on a job's critical path.
//!
//! The crate provides:
//!
//! * [`blocking`] — the blocking-effect formula Ψ = ω·L·W·κ and its
//!   online estimator from receiver-side observations;
//! * [`thresholds`] — the exponentially-spaced Ψ→priority-queue mapping;
//! * [`ava`] — the Average Value Approximation estimator used to flag
//!   probable critical-path coflows without knowing the job structure;
//! * [`starvation`] — SPQ emulation via WRR with waiting-time-derived
//!   weights (Kleinrock priority-queue formulas);
//! * [`scheduler`] — [`scheduler::GuritaScheduler`], the deployable
//!   decentralized scheduler (Least-Blocking-Effect-First, Algorithm 1);
//! * [`local`] — [`local::GuritaAgent`], the same scheme behind the
//!   host-agent interface of the decentralized control plane;
//! * [`plus`] — [`plus::GuritaPlus`], the idealized variant with exact
//!   per-stage information ahead of time (the paper's Figure 8 oracle).
//!
//! # Example
//!
//! ```
//! use gurita::scheduler::{GuritaConfig, GuritaScheduler};
//! use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec, units};
//! use gurita_sim::runtime::{SimConfig, Simulation};
//! use gurita_sim::topology::BigSwitch;
//!
//! let job = JobSpec::new(
//!     0,
//!     0.0,
//!     vec![CoflowSpec::new(vec![FlowSpec::new(
//!         HostId(0),
//!         HostId(1),
//!         2.0 * units::MB,
//!     )])],
//!     JobDag::chain(1)?,
//! )?;
//! let mut sim = Simulation::new(BigSwitch::new(4, units::GBPS_10), SimConfig::default());
//! let mut gurita = GuritaScheduler::new(GuritaConfig::default());
//! let result = sim.run(vec![job], &mut gurita);
//! assert_eq!(result.jobs.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ava;
pub mod blocking;
pub mod flowtable;
pub mod hr;
pub mod local;
pub mod plus;
pub mod rules;
pub mod scheduler;
pub mod starvation;
pub mod thresholds;
