//! Prometheus text-format (exposition format version 0.0.4) encoding
//! of [`RegistrySnapshot`]s.
//!
//! Output per family:
//!
//! ```text
//! # HELP gurita_jct_seconds Job completion time.
//! # TYPE gurita_jct_seconds histogram
//! gurita_jct_seconds_bucket{category="I",le="0.001"} 0
//! ...
//! gurita_jct_seconds_bucket{category="I",le="+Inf"} 3
//! gurita_jct_seconds_sum{category="I"} 1.5
//! gurita_jct_seconds_count{category="I"} 3
//! ```
//!
//! Histogram buckets are cumulative (`le` upper bounds), as the format
//! requires; HELP text has `\` and newlines escaped; label values have
//! `\`, `"`, and newlines escaped.

use crate::{FamilySnapshot, RegistrySnapshot, SeriesSnapshot};
use std::fmt::Write as _;

/// Escapes a HELP string (`\` and newline).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\`, `"`, newline).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a sample value the way Prometheus expects: integral values
/// without a trailing `.0`, everything else in shortest-roundtrip form.
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a label set `{k="v",...}`, with an optional extra `le`
/// label appended; empty label sets render as nothing.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn encode_series(out: &mut String, name: &str, kind: &str, s: &SeriesSnapshot) {
    match (&s.histogram, kind) {
        (Some(h), "histogram") => {
            let mut cum = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cum += c;
                let le = match h.bounds.get(i) {
                    Some(b) => fmt_value(*b),
                    None => "+Inf".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    label_block(&s.labels, Some(&le))
                );
            }
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                label_block(&s.labels, None),
                fmt_value(h.sum)
            );
            let _ = writeln!(out, "{name}_count{} {cum}", label_block(&s.labels, None));
        }
        _ => {
            let _ = writeln!(
                out,
                "{name}{} {}",
                label_block(&s.labels, None),
                fmt_value(s.value)
            );
        }
    }
}

fn encode_family(out: &mut String, f: &FamilySnapshot) {
    if !f.help.is_empty() {
        let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
    }
    let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
    for s in &f.series {
        encode_series(out, &f.name, &f.kind, s);
    }
}

/// Encodes a snapshot as Prometheus text format 0.0.4. The output ends
/// with a newline, as scrapers require.
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for f in &snap.families {
        encode_family(&mut out, f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BucketSpec, Registry};

    #[test]
    fn scalar_families_encode() {
        let r = Registry::new();
        r.counter("gurita_events_total", "Engine events.", &[])
            .add(7);
        r.gauge("gurita_pace_lag_seconds", "Pace lag.", &[])
            .set(0.25);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# HELP gurita_events_total Engine events.\n"));
        assert!(text.contains("# TYPE gurita_events_total counter\n"));
        assert!(
            text.contains("\ngurita_events_total 7\n")
                || text.starts_with("gurita_events_total 7\n")
                || text.contains("gurita_events_total 7\n")
        );
        assert!(text.contains("gurita_pace_lag_seconds 0.25\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let r = Registry::new();
        let h = r.histogram(
            "gurita_jct_seconds",
            "JCT.",
            &[("category", "I")],
            BucketSpec {
                lo: 1.0,
                segments: 1,
                subs: 2,
            },
        );
        h.observe(0.5);
        h.observe(1.2);
        h.observe(99.0);
        let text = prometheus_text(&r.snapshot());
        // bounds: 1.0, 1.5, 2.0 then +Inf
        assert!(text.contains("gurita_jct_seconds_bucket{category=\"I\",le=\"1\"} 1\n"));
        assert!(text.contains("gurita_jct_seconds_bucket{category=\"I\",le=\"1.5\"} 2\n"));
        assert!(text.contains("gurita_jct_seconds_bucket{category=\"I\",le=\"2\"} 2\n"));
        assert!(text.contains("gurita_jct_seconds_bucket{category=\"I\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("gurita_jct_seconds_count{category=\"I\"} 3\n"));
        assert!(text.contains("gurita_jct_seconds_sum{category=\"I\"} 100.7\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("gurita_x_total", "", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("gurita_x_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"));
    }
}
