//! Allocation-free live metrics for the gurita service path.
//!
//! The crate provides three lock-free instruments — [`Counter`],
//! [`Gauge`], and a fixed-bucket log-linear [`Histogram`] — plus a
//! [`Registry`] that names them, snapshot types that freeze a
//! consistent point-in-time view, and a Prometheus text-format
//! (exposition 0.0.4) encoder over snapshots.
//!
//! Design constraints, in order:
//!
//! 1. **Record-path cost.** Instruments are plain relaxed atomics; a
//!    histogram observation is one binary search over a precomputed
//!    bound table (~7 comparisons for the default 64-bucket scheme)
//!    plus two fetch-adds and one CAS-add for the sum. No allocation,
//!    no locks, no formatting on the hot path.
//! 2. **Shared handles.** Every instrument lives behind an [`Arc`], so
//!    the recording side (a `TelemetrySink` owned mutably by the
//!    engine) and the reading side (the daemon's serve loop answering
//!    `metrics` requests mid-run) can hold the same instrument without
//!    coordination. Reads are tearing-free per-field; a snapshot is a
//!    monotone view, not a cross-instrument transaction — exactly the
//!    consistency Prometheus scrapes assume.
//! 3. **Mergeability.** Two histograms built from the same
//!    [`BucketSpec`] merge by bucket-wise addition, which is
//!    associative and commutative; sharded recorders can therefore be
//!    combined without rank error beyond the bucket width.
//!
//! Bucket scheme: log-linear, as in HdrHistogram. The value axis is
//! covered by power-of-two segments starting at `lo`, each segment cut
//! into `subs` equal-width linear buckets, with an underflow bucket
//! (`≤ lo`) below and a `+Inf` bucket above. Relative quantile error
//! is bounded by `1/subs` within the covered range.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod encode;

/// A monotonically increasing event count.
///
/// All operations are relaxed: counters are independent statistics,
/// not synchronization points.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (CAS loop; gauges are written rarely).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// The log-linear bucket layout shared by a histogram and everything
/// it merges with.
///
/// Buckets: one underflow bucket with upper bound `lo`, then
/// `segments × subs` finite buckets — segment `s` spans
/// `(lo·2^s, lo·2^(s+1)]` cut into `subs` equal linear pieces — and an
/// implicit `+Inf` bucket. Two histograms are mergeable iff their
/// specs are equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSpec {
    /// Upper bound of the first (underflow) bucket; start of the
    /// log-linear range. Must be finite and positive.
    pub lo: f64,
    /// Number of power-of-two segments after `lo`.
    pub segments: u32,
    /// Linear subdivisions per segment (relative error bound `1/subs`).
    pub subs: u32,
}

impl BucketSpec {
    /// A spec for durations in seconds: 1 ms to ~65 s (16 doublings),
    /// 4 subdivisions each — 65 finite bounds, ≤25% relative error.
    pub fn seconds() -> Self {
        Self {
            lo: 1e-3,
            segments: 16,
            subs: 4,
        }
    }

    /// A spec for dimensionless ratios (e.g. slowdown factors):
    /// 1/16 to 4096 (16 doublings from 0.0625), 4 subdivisions each.
    pub fn ratio() -> Self {
        Self {
            lo: 0.0625,
            segments: 16,
            subs: 4,
        }
    }

    /// The finite upper bounds (ascending, deduplicated); the `+Inf`
    /// bucket is implicit.
    pub fn bounds(&self) -> Vec<f64> {
        assert!(
            self.lo.is_finite() && self.lo > 0.0,
            "BucketSpec::lo must be finite and positive"
        );
        assert!(self.segments > 0 && self.subs > 0, "empty BucketSpec");
        let mut out = Vec::with_capacity(1 + (self.segments * self.subs) as usize);
        out.push(self.lo);
        for s in 0..self.segments {
            let base = self.lo * (2f64).powi(s as i32);
            let step = base / self.subs as f64;
            for j in 1..=self.subs {
                out.push(base + step * j as f64);
            }
        }
        out
    }
}

/// A fixed-bucket log-linear histogram with lock-free observation.
///
/// `counts` has one slot per finite bound plus a final `+Inf` slot.
/// `sum` accumulates observed values as f64 bits via CAS.
#[derive(Debug)]
pub struct Histogram {
    spec: BucketSpec,
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram over `spec`.
    pub fn new(spec: BucketSpec) -> Self {
        let bounds = spec.bounds();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            spec,
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The bucket layout.
    pub fn spec(&self) -> BucketSpec {
        self.spec
    }

    /// Records one observation. NaN is dropped; negative values land
    /// in the underflow bucket; values past the last bound land in
    /// `+Inf`.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        // First bucket whose upper bound admits v (le semantics).
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }

    /// Adds every observation of `other` into `self`. Panics if the
    /// specs differ (the bucket layout is the merge contract).
    pub fn merge(&self, other: &Histogram) {
        assert!(
            self.spec == other.spec,
            "cannot merge histograms with different bucket specs"
        );
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = f64::from_bits(other.sum_bits.load(Ordering::Relaxed));
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A frozen histogram: finite bucket upper bounds, per-bucket counts
/// (the final slot is `+Inf`), total count, and value sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the last
    /// slot is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) from bucket ranks:
    /// returns the upper bound of the bucket containing the rank (the
    /// standard Prometheus `histogram_quantile` convention, without
    /// intra-bucket interpolation for the `+Inf` and underflow
    /// buckets). Returns `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return f64::NAN;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(b) => {
                        // Linear interpolation inside the bucket, as
                        // histogram_quantile does.
                        let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                        let into = (rank - (seen - c)) as f64 / (*c).max(1) as f64;
                        lower + (b - lower) * into
                    }
                    // +Inf bucket: the last finite bound is the best
                    // statement we can make.
                    None => self.bounds.last().copied().unwrap_or(f64::INFINITY),
                };
            }
        }
        f64::NAN
    }

    /// Mean of observed values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-wise sum. Panics if the layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert!(
            self.bounds == other.bounds,
            "cannot merge snapshots with different bucket layouts"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// What a series measures; fixes the exposition `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone count.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// Names instruments and groups them into Prometheus metric families.
///
/// Registration hands back `Arc` instrument handles; the recording
/// side keeps the `Arc`s and never touches the registry again, so the
/// interior mutex only guards registration and snapshotting — never
/// the record path. Registering the same (name, labels) pair twice
/// returns the existing instrument, making registration idempotent.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    #[allow(clippy::too_many_arguments)] // private: three closures adapt one generic body per instrument kind
    fn register<T>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        fresh: impl FnOnce() -> Arc<T>,
        reuse: impl Fn(&Instrument) -> Option<Arc<T>>,
        wrap: impl Fn(Arc<T>) -> Instrument,
    ) -> Arc<T> {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(f.kind == kind, "metric `{name}` re-registered as {kind:?}");
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = family.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return reuse(&s.instrument).expect("kind checked above");
        }
        let inst = fresh();
        family.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            instrument: wrap(Arc::clone(&inst)),
        });
        inst
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            Kind::Counter,
            labels,
            || Arc::new(Counter::new()),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            Instrument::Counter,
        )
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            Kind::Gauge,
            labels,
            || Arc::new(Gauge::new()),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            Instrument::Gauge,
        )
    }

    /// Registers (or retrieves) a histogram series over `spec`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        spec: BucketSpec,
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            Kind::Histogram,
            labels,
            || Arc::new(Histogram::new(spec)),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            Instrument::Histogram,
        )
    }

    /// Freezes every registered series.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().expect("registry poisoned");
        RegistrySnapshot {
            families: families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind.as_str().to_owned(),
                    series: f
                        .series
                        .iter()
                        .map(|s| {
                            let (value, histogram) = match &s.instrument {
                                Instrument::Counter(c) => (c.get() as f64, None),
                                Instrument::Gauge(g) => (g.get(), None),
                                Instrument::Histogram(h) => (0.0, Some(h.snapshot())),
                            };
                            SeriesSnapshot {
                                labels: s.labels.clone(),
                                value,
                                histogram,
                            }
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// A frozen registry: every family with every series, serializable and
/// encodable to Prometheus text format via [`encode::prometheus_text`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All metric families, in registration order.
    pub families: Vec<FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Finds a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }
}

/// One frozen metric family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySnapshot {
    /// Metric name (`gurita_*` by convention in this workspace).
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// `counter` | `gauge` | `histogram` (the `# TYPE` line).
    pub kind: String,
    /// All series of the family, in registration order.
    pub series: Vec<SeriesSnapshot>,
}

impl FamilySnapshot {
    /// Finds a series whose labels contain `(key, value)`.
    pub fn series_with(&self, key: &str, value: &str) -> Option<&SeriesSnapshot> {
        self.series
            .iter()
            .find(|s| s.labels.iter().any(|(k, v)| k == key && v == value))
    }
}

/// One frozen series: label pairs plus either a scalar (`value`, for
/// counters/gauges) or a bucketed distribution (`histogram`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Scalar value (0 for histograms).
    pub value: f64,
    /// Bucketed distribution (None for counters/gauges).
    #[serde(default)]
    pub histogram: Option<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(1.5);
        g.add(-0.25);
        assert!((g.get() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for spec in [BucketSpec::seconds(), BucketSpec::ratio()] {
            let bounds = spec.bounds();
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{spec:?}");
            assert_eq!(bounds.len(), 1 + (spec.segments * spec.subs) as usize);
        }
    }

    #[test]
    fn observe_lands_on_le_boundary_bucket() {
        // `le` semantics: a value exactly on a bound counts in that
        // bucket, epsilon above goes to the next.
        let h = Histogram::new(BucketSpec {
            lo: 1.0,
            segments: 2,
            subs: 2,
        });
        // bounds: 1.0, 1.5, 2.0, 3.0, 4.0
        h.observe(1.0);
        h.observe(1.0 + 1e-12);
        h.observe(4.0);
        h.observe(4.1);
        h.observe(-3.0);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 0, 0, 1, 1]);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn quantiles_interpolate() {
        let h = Histogram::new(BucketSpec::seconds());
        for _ in 0..100 {
            h.observe(0.010);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        // 10ms falls in a bucket whose bounds bracket it within the
        // 25% relative error of the 4-subdivision scheme.
        assert!(p50 > 0.008 && p50 < 0.0125, "p50 = {p50}");
        assert!(s.quantile(0.99) >= p50);
        assert!((s.mean() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let s = Histogram::new(BucketSpec::seconds()).snapshot();
        assert!(s.quantile(0.5).is_nan());
        assert!(s.mean().is_nan());
    }

    #[test]
    fn merge_adds_bucketwise() {
        let spec = BucketSpec::seconds();
        let a = Histogram::new(spec);
        let b = Histogram::new(spec);
        a.observe(0.002);
        b.observe(0.002);
        b.observe(70.0); // +Inf bucket
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(*s.counts.last().expect("inf bucket"), 1);
    }

    #[test]
    #[should_panic(expected = "different bucket specs")]
    fn merge_rejects_mismatched_specs() {
        let a = Histogram::new(BucketSpec::seconds());
        let b = Histogram::new(BucketSpec::ratio());
        a.merge(&b);
    }

    #[test]
    fn registry_is_idempotent_and_kind_checked() {
        let r = Registry::new();
        let c1 = r.counter("gurita_events_total", "Events.", &[]);
        let c2 = r.counter("gurita_events_total", "Events.", &[]);
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].series.len(), 1);
        assert_eq!(snap.families[0].series[0].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn registry_rejects_kind_change() {
        let r = Registry::new();
        let _ = r.counter("gurita_x", "", &[]);
        let _ = r.gauge("gurita_x", "", &[]);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let r = Registry::new();
        let h = r.histogram(
            "gurita_jct_seconds",
            "Job completion time.",
            &[("category", "I")],
            BucketSpec::seconds(),
        );
        h.observe(0.5);
        let snap = r.snapshot();
        let tree = snap.to_value();
        let back = RegistrySnapshot::from_value(&tree).expect("roundtrip");
        assert_eq!(back, snap);
    }
}
