//! Property tests for the histogram algebra plus a strict line-format
//! checker for the Prometheus exposition output.

use gurita_metrics::encode::prometheus_text;
use gurita_metrics::{BucketSpec, Histogram, Registry};
use proptest::prelude::*;

/// Turns a u64 seed stream into a deterministic observation list mixing
/// underflow, in-range, boundary-exact, and overflow values.
fn observations(seed: u64, n: usize, spec: &BucketSpec) -> Vec<f64> {
    let bounds = spec.bounds();
    let hi = *bounds.last().expect("non-empty bounds");
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| match next() % 5 {
            0 => spec.lo / 2.0,                                   // underflow
            1 => bounds[(next() % bounds.len() as u64) as usize], // exactly on a bound
            2 => hi * 2.0,                                        // +Inf bucket
            3 => spec.lo * (1.0 + (next() % 1000) as f64 / 10.0),
            _ => hi * (next() % 1000) as f64 / 1000.0,
        })
        .collect()
}

fn filled(spec: BucketSpec, values: &[f64]) -> Histogram {
    let h = Histogram::new(spec);
    for v in values {
        h.observe(*v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): merge is associative bucket-for-bucket.
    #[test]
    fn histogram_merge_is_associative(seed in 1u64..1_000_000, na in 0usize..80, nb in 0usize..80, nc in 0usize..80) {
        let spec = BucketSpec::seconds();
        let a = observations(seed, na, &spec);
        let b = observations(seed.wrapping_mul(3), nb, &spec);
        let c = observations(seed.wrapping_mul(7), nc, &spec);

        let left = filled(spec, &a);
        left.merge(&filled(spec, &b));
        left.merge(&filled(spec, &c));

        let bc = filled(spec, &b);
        bc.merge(&filled(spec, &c));
        let right = filled(spec, &a);
        right.merge(&bc);

        let (ls, rs) = (left.snapshot(), right.snapshot());
        prop_assert_eq!(&ls.counts, &rs.counts);
        prop_assert_eq!(ls.count, rs.count);
        // Sums are added in a different order; identical inputs keep
        // them bit-equal here because each shard's sum is already
        // reduced before the merge applies one addition per shard —
        // but associativity of f64 addition is not guaranteed, so
        // compare with a tolerance.
        prop_assert!((ls.sum - rs.sum).abs() <= 1e-9 * ls.sum.abs().max(1.0));
    }

    /// Merging equals observing the concatenated stream (counts exactly).
    #[test]
    fn histogram_merge_equals_union(seed in 1u64..1_000_000, na in 0usize..120, nb in 0usize..120) {
        let spec = BucketSpec::ratio();
        let a = observations(seed, na, &spec);
        let b = observations(seed.wrapping_add(99), nb, &spec);
        let merged = filled(spec, &a);
        merged.merge(&filled(spec, &b));
        let both: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let direct = filled(spec, &both);
        prop_assert_eq!(merged.snapshot().counts, direct.snapshot().counts);
    }

    /// Every observation lands in the first bucket whose upper bound
    /// admits it (`le` semantics), and total count is conserved.
    #[test]
    fn bucket_boundaries_respect_le(seed in 1u64..1_000_000, n in 1usize..200) {
        let spec = BucketSpec::seconds();
        let values = observations(seed, n, &spec);
        let h = filled(spec, &values);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, n as u64);
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), n as u64);
        // Recompute the expected bucket for each value independently.
        let mut expected = vec![0u64; snap.bounds.len() + 1];
        for v in &values {
            let idx = snap.bounds.iter().position(|b| v <= b).unwrap_or(snap.bounds.len());
            expected[idx] += 1;
        }
        prop_assert_eq!(snap.counts, expected);
    }

    /// A quantile estimate brackets the true rank value to within one
    /// bucket: it is ≥ the greatest lower bound of the rank bucket and
    /// ≤ its upper bound.
    #[test]
    fn quantile_stays_within_rank_bucket(seed in 1u64..1_000_000, n in 1usize..150, qi in 0usize..3) {
        let spec = BucketSpec::seconds();
        let values = observations(seed, n, &spec);
        let h = filled(spec, &values);
        let snap = h.snapshot();
        let q = [0.5, 0.95, 0.99][qi];
        let est = snap.quantile(q);
        // Find the bucket holding the rank and check the estimate sits
        // inside its [lower, upper] span.
        let rank = (q * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in snap.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lower = if i == 0 { 0.0 } else { snap.bounds[i - 1] };
                let upper = snap.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                prop_assert!(est >= lower && est <= upper, "q{} est {} not in [{}, {}]", q, est, lower, upper);
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strict exposition-format checker
// ---------------------------------------------------------------------

/// Validates one Prometheus 0.0.4 text-format payload line by line:
/// metric-name and label-name character sets, quoted/escaped label
/// values, parseable sample values, HELP/TYPE ordering, cumulative
/// non-decreasing histogram buckets ending at `+Inf` with `_count`
/// equal to the `+Inf` bucket. Panics with a line-numbered message on
/// the first violation.
fn check_exposition(text: &str) {
    assert!(text.ends_with('\n'), "payload must end with a newline");
    let name_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .next()
                .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
                .unwrap()
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let label_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .next()
                .map(|c| c.is_ascii_alphabetic() || c == '_')
                .unwrap()
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    };
    // family name -> (type, saw samples, last cumulative bucket count per label-set)
    let mut current: Option<(String, String)> = None;
    let mut bucket_cum: std::collections::HashMap<String, (f64, f64)> = Default::default();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
            assert!(name_ok(name), "line {ln}: bad metric name in HELP: {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("line {ln}: TYPE missing kind"));
            assert!(name_ok(name), "line {ln}: bad metric name in TYPE: {name}");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                "line {ln}: bad TYPE kind: {kind}"
            );
            current = Some((name.to_owned(), kind.to_owned()));
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "line {ln}: unknown comment form: {line}"
        );
        // Sample line: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line {ln}: no value: {line}"));
        assert!(
            value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok(),
            "line {ln}: unparseable value: {value}"
        );
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("line {ln}: unterminated labels"));
                (n, Some(body))
            }
            None => (name_labels, None),
        };
        assert!(name_ok(name), "line {ln}: bad sample metric name: {name}");
        let mut le: Option<String> = None;
        let mut label_key = String::new();
        if let Some(body) = labels {
            // Parse k="v" pairs with escape handling.
            let mut chars = body.chars().peekable();
            loop {
                let mut key = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                    chars.next();
                }
                assert!(label_ok(&key), "line {ln}: bad label name: {key:?}");
                assert_eq!(chars.next(), Some('='), "line {ln}: label missing =");
                assert_eq!(chars.next(), Some('"'), "line {ln}: label value not quoted");
                let mut val = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            other => panic!("line {ln}: bad escape {other:?}"),
                        },
                        Some('"') => break,
                        Some(c) => val.push(c),
                        None => panic!("line {ln}: unterminated label value"),
                    }
                }
                if key == "le" {
                    le = Some(val.clone());
                } else {
                    label_key.push_str(&key);
                    label_key.push('=');
                    label_key.push_str(&val);
                    label_key.push(';');
                }
                match chars.next() {
                    Some(',') => continue,
                    None => break,
                    other => panic!("line {ln}: bad label separator {other:?}"),
                }
            }
        }
        // Family/type consistency.
        let (fam, kind) = current
            .clone()
            .unwrap_or_else(|| panic!("line {ln}: sample before TYPE"));
        if kind == "histogram" {
            let series = format!("{fam}\u{0}{label_key}");
            if name == format!("{fam}_bucket") {
                let le = le.unwrap_or_else(|| panic!("line {ln}: bucket without le"));
                let v: f64 = value.parse().expect("checked");
                let entry = bucket_cum.entry(series).or_insert((0.0, f64::NEG_INFINITY));
                assert!(v >= entry.0, "line {ln}: bucket counts not cumulative");
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse()
                        .unwrap_or_else(|_| panic!("line {ln}: bad le {le}"))
                };
                assert!(bound > entry.1, "line {ln}: le bounds not increasing");
                *entry = (v, bound);
            } else if name == format!("{fam}_count") {
                let (cum, last_bound) = bucket_cum
                    .get(&series)
                    .copied()
                    .unwrap_or_else(|| panic!("line {ln}: _count before buckets"));
                assert_eq!(
                    last_bound,
                    f64::INFINITY,
                    "line {ln}: bucket list did not end at +Inf"
                );
                assert_eq!(
                    value.parse::<f64>().expect("checked"),
                    cum,
                    "line {ln}: _count != +Inf bucket"
                );
            } else {
                assert_eq!(
                    name,
                    format!("{fam}_sum"),
                    "line {ln}: unexpected histogram sample {name}"
                );
            }
        } else {
            assert_eq!(name, fam, "line {ln}: sample {name} outside family {fam}");
            assert!(le.is_none(), "line {ln}: le label on non-histogram");
        }
    }
}

/// Golden test: a registry exercising every instrument kind encodes to
/// a payload the strict checker accepts, with the exact expected lines.
#[test]
fn exposition_golden() {
    let r = Registry::new();
    r.counter("gurita_events_total", "Engine events processed.", &[])
        .add(12345);
    r.gauge("gurita_pending_events", "Event-queue depth.", &[])
        .set(17.0);
    let h = r.histogram(
        "gurita_jct_seconds",
        "Job completion time.",
        &[("category", "I")],
        BucketSpec {
            lo: 1.0,
            segments: 1,
            subs: 2,
        },
    );
    h.observe(0.5);
    h.observe(1.2);
    h.observe(9.0);
    let text = prometheus_text(&r.snapshot());
    check_exposition(&text);
    let expected = "\
# HELP gurita_events_total Engine events processed.
# TYPE gurita_events_total counter
gurita_events_total 12345
# HELP gurita_pending_events Event-queue depth.
# TYPE gurita_pending_events gauge
gurita_pending_events 17
# HELP gurita_jct_seconds Job completion time.
# TYPE gurita_jct_seconds histogram
gurita_jct_seconds_bucket{category=\"I\",le=\"1\"} 1
gurita_jct_seconds_bucket{category=\"I\",le=\"1.5\"} 2
gurita_jct_seconds_bucket{category=\"I\",le=\"2\"} 2
gurita_jct_seconds_bucket{category=\"I\",le=\"+Inf\"} 3
gurita_jct_seconds_sum{category=\"I\"} 10.7
gurita_jct_seconds_count{category=\"I\"} 3
";
    assert_eq!(text, expected);
}

/// The checker itself rejects malformed payloads (meta-test so the
/// golden test means something).
#[test]
fn checker_rejects_malformed() {
    let bad = [
        "gurita_x 1\n",                                   // sample before TYPE
        "# TYPE gurita_x gauge\ngurita_x one\n",          // unparseable value
        "# TYPE gurita_x gauge\ngurita-x{a=\"b\"} 1\n",   // bad name
        "# TYPE gurita_x histogram\ngurita_x_bucket{le=\"1\"} 2\ngurita_x_bucket{le=\"2\"} 1\ngurita_x_count 1\n", // non-cumulative
    ];
    for payload in bad {
        assert!(
            std::panic::catch_unwind(|| check_exposition(payload)).is_err(),
            "checker accepted malformed payload: {payload:?}"
        );
    }
}

/// Randomized registries always encode to checker-clean payloads.
#[test]
fn exposition_always_validates() {
    for seed in 1u64..20 {
        let r = Registry::new();
        let spec = BucketSpec::seconds();
        for c in ["I", "II", "III", "IV"] {
            let h = r.histogram("gurita_jct_seconds", "JCT.", &[("category", c)], spec);
            for v in observations(seed, 40, &spec) {
                h.observe(v);
            }
        }
        r.counter("gurita_control_drops_total", "Drops.", &[])
            .add(seed);
        r.gauge("gurita_events_per_sec", "Throughput.", &[])
            .set(seed as f64 * 1.5);
        check_exposition(&prometheus_text(&r.snapshot()));
    }
}
