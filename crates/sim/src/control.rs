//! Control-plane layering: *who* computes priorities, from *which* view,
//! and *how* decisions reach the hosts.
//!
//! The paper's headline property is that Gurita is decentralized — each
//! sender host works from locally observable per-stage state, with no
//! centralized controller in the loop. This module makes that a
//! first-class, testable axis instead of a docstring claim:
//!
//! ```text
//!                    ┌────────────────────────────┐
//!    event loop ───▶ │        ControlPlane        │ ───▶ priority table
//!                    └─────┬────────────────┬─────┘      (CoflowId → queue)
//!                          │                │
//!                 ┌────────▼──────┐  ┌──────▼────────────────────────┐
//!                 │  Centralized  │  │         Decentralized         │
//!                 │  (wraps any   │  │  HostAgent per sender host:   │
//!                 │  `Scheduler`, │  │  LocalObservation → report;   │
//!                 │  global view, │  │  reports merge into a cluster │
//!                 │  instant)     │  │  view; the decision table is  │
//!                 └───────────────┘  │  delivered after a configured │
//!                                    │  `control_latency` via timed  │
//!                                    │  `ControlUpdate` events       │
//!                                    └───────────────────────────────┘
//! ```
//!
//! # Staleness model
//!
//! The decentralized plane separates *reporting* from *acting*:
//!
//! * **Report uplink** — each decision point, every sender host digests
//!   its [`LocalObservation`] (only the coflows with flows sourced
//!   there, with local sent-bytes and age counters) into a
//!   [`HostReport`]. Reports merge into a cluster-wide view
//!   ([`merge_reports`]) from which the scheme computes a fresh
//!   [`PriorityTable`].
//! * **Decision downlink** — with `control_latency > 0` the fresh table
//!   is *not* applied immediately: it is queued and the runtime delivers
//!   it through the event loop after the configured latency. Until
//!   delivery, hosts keep (re-)applying the **last delivered** table —
//!   i.e. they act on a stale view, the behavior that separates
//!   decentralized schemes from idealized instantaneous ones.
//!
//! Consecutive identical tables are deduplicated (no event is scheduled
//! when the decision did not change), so the event count stays
//! proportional to actual priority churn.
//!
//! # Adapter guarantees
//!
//! [`Centralized`] is bit-for-bit today's behavior: one global
//! [`Observation`] plus the [`Oracle`], one cluster-wide
//! [`Scheduler::assign`], applied instantly. [`Decentralized`] with
//! `control_latency == 0` applies each fresh table immediately and
//! schedules no events, so for a scheme whose decision is a pure
//! function of the merged view it is **result-identical** to the same
//! scheme run centralized ([`merge_reports`] reconstructs the global
//! observation exactly, floating-point summation order included). Both
//! guarantees are pinned by cross-scheduler tests.

use crate::sched::{CoflowObs, JobObs, Observation, Oracle, QueuePolicy, Scheduler};
use gurita_model::{CoflowId, HostId, JobId};
use std::collections::{HashMap, VecDeque};

/// A priority decision: the queue for each listed coflow. Entries for
/// coflows that completed while the table was in flight are skipped at
/// application time; active coflows absent from the table keep their
/// current queue.
pub type PriorityTable = Vec<(CoflowId, usize)>;

/// What one sender host can observe at a decision point: the active
/// coflows that have at least one flow *sourced at this host*, with
/// per-flow byte counters restricted to those local flows, plus the
/// job-level facts a host learns from the coflows it carries (arrival,
/// completed stages — parents invoke children, so this is locally
/// observable, exactly as the receiver-side information model in
/// [`crate::sched`] argues).
#[derive(Debug, Clone)]
pub struct LocalObservation {
    /// The observing sender host.
    pub host: HostId,
    /// Current simulation time (hosts share a clock).
    pub now: f64,
    /// Active coflows with flows sourced here, ascending [`CoflowId`];
    /// `flows` lists only the local flows, and the per-coflow aggregates
    /// (`bytes_received`, `open_flows`, `max_flow_bytes_received`) cover
    /// only those.
    pub coflows: Vec<CoflowObs>,
    /// Jobs owning the coflows above, ascending [`JobId`];
    /// `bytes_received` counts completed bytes plus *local* active
    /// bytes, and `active_coflows` indexes into this view's `coflows`.
    pub jobs: Vec<JobObs>,
}

/// What a host sends to its peers: the verbatim local counters. Kept as
/// a distinct type so schemes can later compress or quantize the uplink
/// without touching the plane.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// The reporting host.
    pub host: HostId,
    /// Reported per-coflow observations (local flows only).
    pub coflows: Vec<CoflowObs>,
    /// Reported job-level facts.
    pub jobs: Vec<JobObs>,
}

impl HostReport {
    /// A report carrying the local observation verbatim.
    pub fn verbatim(local: LocalObservation) -> Self {
        Self {
            host: local.host,
            coflows: local.coflows,
            jobs: local.jobs,
        }
    }
}

/// A per-host scheduling agent: the unit the decentralized plane runs
/// one of per sender host.
///
/// Agents play two roles. In the *host* role, [`HostAgent::report`]
/// digests the local observation into the report sent to peers. In the
/// *head* role (one designated agent per plane, holding the scheme's
/// decision state), [`HostAgent::decide`] turns the merged cluster view
/// into a [`PriorityTable`]. The oracle handed to `decide` is always
/// [`Oracle::deny`] — a ported scheme that reaches for clairvoyant
/// state panics instead of silently cheating.
pub trait HostAgent {
    /// Display name (used in result tables, e.g. `gurita@local`).
    fn name(&self) -> String;

    /// Number of priority queues the agent uses.
    fn num_queues(&self) -> usize;

    /// Whether live flows may be re-prioritized in both directions (see
    /// [`Scheduler::reprioritizes_live_flows`]). Defaults to `false` —
    /// the TCP-reordering rule is the decentralized default.
    fn reprioritizes_live_flows(&self) -> bool {
        false
    }

    /// Host role: digest the local view into the report sent to peers.
    /// Defaults to the verbatim counters.
    fn report(&mut self, local: LocalObservation) -> HostReport {
        HostReport::verbatim(local)
    }

    /// Head role: priorities from the merged cluster view. `oracle` is
    /// always denying; it is passed so ported `Scheduler` code compiles
    /// unchanged and the no-clairvoyance claim is enforced at run time.
    fn decide(&mut self, merged: &Observation, oracle: &Oracle<'_>) -> PriorityTable;

    /// Service policy for the agent's queues, derived from
    /// `decide`-time state (same contract as
    /// [`Scheduler::queue_policy`]).
    fn queue_policy(&mut self) -> QueuePolicy {
        QueuePolicy::Strict
    }

    /// Notifies the head agent that a coflow completed.
    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        let _ = (coflow, job, now);
    }

    /// Notifies the head agent that a job completed.
    fn on_job_completed(&mut self, job: JobId, now: f64) {
        let _ = (job, now);
    }
}

/// Reconstructs the cluster-wide [`Observation`] from per-host reports.
///
/// The merge is deterministic and — for reports produced by the
/// runtime's per-host view builder — reproduces the centralized
/// observation *exactly*, floating-point bit patterns included:
/// coflows are ordered by ascending id (the runtime's activation
/// order), each coflow's flows by ascending id (creation order), and
/// per-coflow/per-job byte totals are re-accumulated in that order, so
/// every f64 sum replays the same additions the global builder performs.
pub fn merge_reports(now: f64, reports: &[HostReport]) -> Observation {
    let mut fragments: HashMap<CoflowId, CoflowObs> = HashMap::new();
    let mut job_meta: HashMap<JobId, JobObs> = HashMap::new();
    for r in reports {
        for c in &r.coflows {
            fragments
                .entry(c.id)
                .and_modify(|m| m.flows.extend_from_slice(&c.flows))
                .or_insert_with(|| c.clone());
        }
        for j in &r.jobs {
            job_meta.entry(j.id).or_insert_with(|| j.clone());
        }
    }
    let mut coflows: Vec<CoflowObs> = fragments.into_values().collect();
    coflows.sort_unstable_by_key(|c| c.id);
    for c in &mut coflows {
        c.flows.sort_unstable_by_key(|f| f.id);
        let mut bytes = 0.0f64;
        let mut max_flow = 0.0f64;
        let mut open = 0usize;
        for f in &c.flows {
            bytes += f.bytes_received;
            max_flow = max_flow.max(f.bytes_received);
            open += usize::from(f.open);
        }
        c.bytes_received = bytes;
        c.max_flow_bytes_received = max_flow;
        c.open_flows = open;
    }
    let mut job_index: HashMap<JobId, usize> = HashMap::new();
    let mut jobs: Vec<JobObs> = Vec::new();
    for (ci, c) in coflows.iter().enumerate() {
        let j = *job_index.entry(c.job).or_insert_with(|| {
            let meta = &job_meta[&c.job];
            jobs.push(JobObs {
                id: c.job,
                arrival: meta.arrival,
                completed_coflows: meta.completed_coflows,
                completed_stages: meta.completed_stages,
                bytes_received: meta.completed_bytes,
                completed_bytes: meta.completed_bytes,
                active_coflows: Vec::new(),
            });
            jobs.len() - 1
        });
        jobs[j].bytes_received += c.bytes_received;
        jobs[j].active_coflows.push(ci);
    }
    jobs.sort_unstable_by_key(|j| j.id);
    Observation { now, coflows, jobs }
}

/// Input handed to [`ControlPlane::decide`] at a decision point. The
/// runtime asks the plane which variant it needs via
/// [`ControlPlane::needs_local_views`] before building either.
pub enum ControlInput<'a> {
    /// The centralized path: one global observation plus the oracle.
    Global {
        /// Cluster-wide observation.
        obs: &'a Observation,
        /// Clairvoyant side channel.
        oracle: &'a Oracle<'a>,
    },
    /// The decentralized path: one local view per sender host with at
    /// least one active flow.
    Local {
        /// Current simulation time.
        now: f64,
        /// The configured decision-propagation latency
        /// ([`crate::runtime::SimConfig::control_latency`]).
        latency: f64,
        /// Per-host views, in deterministic first-flow order.
        views: Vec<LocalObservation>,
    },
}

/// What the plane wants done after a decision point.
pub struct ControlOutput {
    /// Queue assignments to apply *now* (for the decentralized plane,
    /// the last *delivered* table — hosts acting on their stale view).
    pub assignments: PriorityTable,
    /// If set, the runtime schedules a `ControlUpdate` event
    /// `control_latency` from now carrying this token; on firing it
    /// calls [`ControlPlane::deliver`] with it.
    pub schedule_update: Option<u64>,
}

/// The coordination layer: turns runtime state into queue assignments.
///
/// Two implementations ship: [`Centralized`] (today's behavior, wraps
/// any [`Scheduler`]) and [`Decentralized`] (per-host agents, merged
/// reports, delayed delivery). The runtime drives either through this
/// object-safe interface.
pub trait ControlPlane {
    /// Display name of the scheme (used in result tables).
    fn name(&self) -> String;

    /// Number of priority queues in the scheme's assignments.
    fn num_queues(&self) -> usize;

    /// Whether live flows may be re-prioritized in both directions.
    fn reprioritizes_live_flows(&self) -> bool {
        false
    }

    /// Whether [`ControlPlane::decide`] needs [`ControlInput::Local`]
    /// (per-host views) instead of [`ControlInput::Global`].
    fn needs_local_views(&self) -> bool {
        false
    }

    /// One decision point: consume the input, return assignments to
    /// apply now and (optionally) a delayed-delivery request.
    fn decide(&mut self, input: ControlInput<'_>) -> ControlOutput;

    /// A `ControlUpdate` event fired: the table scheduled under `token`
    /// reaches the hosts. Returns the newly current table (the runtime
    /// applies it at the same decision point via
    /// [`ControlOutput::assignments`], so implementations may simply
    /// record it). Default: ignore (the centralized plane never
    /// schedules updates).
    fn deliver(&mut self, token: u64) -> Option<PriorityTable> {
        let _ = token;
        None
    }

    /// Service policy for the scheme's queues, derived from
    /// `decide`-time state (see [`Scheduler::queue_policy`]'s contract:
    /// the runtime queries this once per rate recomputation with no
    /// observation available).
    fn queue_policy(&mut self) -> QueuePolicy {
        QueuePolicy::Strict
    }

    /// Priority tables computed but not yet delivered to the hosts —
    /// read by telemetry epoch samples, never by scheduling logic.
    /// Default: 0 (centralized planes deliver instantaneously).
    fn pending_updates(&self) -> usize {
        0
    }

    /// Notifies the plane that a coflow completed.
    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        let _ = (coflow, job, now);
    }

    /// Notifies the plane that a job completed.
    fn on_job_completed(&mut self, job: JobId, now: f64) {
        let _ = (job, now);
    }
}

/// The centralized coordination layer: wraps any [`Scheduler`] and
/// reproduces the pre-refactor behavior bit-for-bit — one global
/// observation, one cluster-wide `assign`, applied instantly (the
/// `control_latency` knob does not apply; the paper grants centralized
/// schemes instantaneous information).
pub struct Centralized<S: Scheduler> {
    inner: S,
}

impl<S: Scheduler> Centralized<S> {
    /// Wraps a scheduler. `S` may be a concrete type, `&mut dyn
    /// Scheduler`, or `Box<dyn Scheduler>` (blanket impls forward).
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// Borrow the wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap the scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> ControlPlane for Centralized<S> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn num_queues(&self) -> usize {
        self.inner.num_queues()
    }

    fn reprioritizes_live_flows(&self) -> bool {
        self.inner.reprioritizes_live_flows()
    }

    fn decide(&mut self, input: ControlInput<'_>) -> ControlOutput {
        match input {
            ControlInput::Global { obs, oracle } => {
                let assignment = self.inner.assign(obs, oracle);
                assert_eq!(
                    assignment.len(),
                    obs.coflows.len(),
                    "scheduler must assign a queue to every active coflow"
                );
                ControlOutput {
                    assignments: obs
                        .coflows
                        .iter()
                        .zip(assignment)
                        .map(|(c, q)| (c.id, q))
                        .collect(),
                    schedule_update: None,
                }
            }
            ControlInput::Local { .. } => {
                panic!("Centralized control plane requires the global observation")
            }
        }
    }

    fn queue_policy(&mut self) -> QueuePolicy {
        // Per the `Scheduler::queue_policy` contract the observation is
        // never read, so the empty default stands in for it.
        self.inner.queue_policy(&Observation::default())
    }

    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        self.inner.on_coflow_completed(coflow, job, now);
    }

    fn on_job_completed(&mut self, job: JobId, now: f64) {
        self.inner.on_job_completed(job, now);
    }
}

/// The decentralized coordination layer: one [`HostAgent`] per sender
/// host plus a designated *head* agent holding the scheme's decision
/// state (mirroring the paper's head-receiver role). See the
/// [module docs](crate::control) for the staleness model.
pub struct Decentralized {
    head: Box<dyn HostAgent>,
    factory: Box<dyn FnMut() -> Box<dyn HostAgent>>,
    agents: HashMap<HostId, Box<dyn HostAgent>>,
    /// The last table delivered to (and therefore acted on by) hosts.
    current: PriorityTable,
    /// The last table computed and either applied (zero latency) or
    /// queued for delivery — used to dedup unchanged decisions.
    last_emitted: PriorityTable,
    /// Tables in flight: `(token, table)`, delivery-ordered.
    pending: VecDeque<(u64, PriorityTable)>,
    next_token: u64,
}

impl std::fmt::Debug for Decentralized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Decentralized")
            .field("head", &self.head.name())
            .field("agents", &self.agents.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Decentralized {
    /// Creates the plane from an agent factory. One agent is minted per
    /// sender host on first sight; one more (the first) becomes the
    /// head. All agents must be the same scheme (the factory is the
    /// single source).
    pub fn new<F>(mut factory: F) -> Self
    where
        F: FnMut() -> Box<dyn HostAgent> + 'static,
    {
        let head = factory();
        Self {
            head,
            factory: Box::new(factory),
            agents: HashMap::new(),
            current: PriorityTable::new(),
            last_emitted: PriorityTable::new(),
            pending: VecDeque::new(),
            next_token: 0,
        }
    }

    /// Number of distinct sender hosts seen so far (agents minted).
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Tables currently in flight to the hosts.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }
}

impl ControlPlane for Decentralized {
    fn name(&self) -> String {
        self.head.name()
    }

    fn num_queues(&self) -> usize {
        self.head.num_queues()
    }

    fn reprioritizes_live_flows(&self) -> bool {
        self.head.reprioritizes_live_flows()
    }

    fn needs_local_views(&self) -> bool {
        true
    }

    fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    fn decide(&mut self, input: ControlInput<'_>) -> ControlOutput {
        let ControlInput::Local {
            now,
            latency,
            views,
        } = input
        else {
            panic!("Decentralized control plane requires per-host views")
        };
        let Self {
            agents, factory, ..
        } = self;
        let reports: Vec<HostReport> = views
            .into_iter()
            .map(|view| {
                agents
                    .entry(view.host)
                    .or_insert_with(|| factory())
                    .report(view)
            })
            .collect();
        let merged = merge_reports(now, &reports);
        let table = self.head.decide(&merged, &Oracle::deny());
        if latency <= 0.0 {
            // Instantaneous delivery: no event traffic, each fresh table
            // acts immediately — result-identical to `Centralized` for
            // ported schemes (pinned by tests).
            self.current = table;
            self.last_emitted.clone_from(&self.current);
            return ControlOutput {
                assignments: self.current.clone(),
                schedule_update: None,
            };
        }
        let schedule_update = if table != self.last_emitted {
            let token = self.next_token;
            self.next_token += 1;
            self.pending.push_back((token, table.clone()));
            self.last_emitted = table;
            Some(token)
        } else {
            None
        };
        // Hosts keep acting on the last *delivered* table — new flows of
        // known coflows are tagged with the stale priority, exactly what
        // a sender with a lagging view would do.
        ControlOutput {
            assignments: self.current.clone(),
            schedule_update,
        }
    }

    fn deliver(&mut self, token: u64) -> Option<PriorityTable> {
        let idx = self.pending.iter().position(|(t, _)| *t == token)?;
        let (_, table) = self.pending.remove(idx)?;
        self.current = table;
        Some(self.current.clone())
    }

    fn queue_policy(&mut self) -> QueuePolicy {
        self.head.queue_policy()
    }

    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        // Decision state lives in the head agent; per-host agents are
        // stateless reporters in the shipped schemes.
        self.head.on_coflow_completed(coflow, job, now);
    }

    fn on_job_completed(&mut self, job: JobId, now: f64) {
        self.head.on_job_completed(job, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FlowObs;
    use gurita_model::FlowId;

    fn flow(id: usize, bytes: f64, open: bool) -> FlowObs {
        FlowObs {
            id: FlowId(id),
            bytes_received: bytes,
            open,
        }
    }

    fn coflow_fragment(id: usize, job: usize, flows: Vec<FlowObs>) -> CoflowObs {
        CoflowObs {
            id: CoflowId(id),
            job: JobId(job),
            dag_vertex: 0,
            dag_stage: 0,
            activated_at: 0.0,
            open_flows: flows.iter().filter(|f| f.open).count(),
            bytes_received: flows.iter().map(|f| f.bytes_received).sum(),
            max_flow_bytes_received: flows.iter().fold(0.0, |m, f| m.max(f.bytes_received)),
            flows,
        }
    }

    fn job_fragment(id: usize, completed_bytes: f64, local_bytes: f64) -> JobObs {
        JobObs {
            id: JobId(id),
            arrival: 0.0,
            completed_coflows: 1,
            completed_stages: 1,
            bytes_received: completed_bytes + local_bytes,
            completed_bytes,
            active_coflows: vec![0],
        }
    }

    #[test]
    fn merge_reassembles_split_coflows() {
        // Coflow 7 is split across hosts 0 and 1; coflow 3 lives only on
        // host 1. The merge must order coflows and flows by id and
        // rebuild the aggregates from all fragments.
        let r0 = HostReport {
            host: HostId(0),
            coflows: vec![coflow_fragment(7, 2, vec![flow(11, 4.0, true)])],
            jobs: vec![job_fragment(2, 100.0, 4.0)],
        };
        let r1 = HostReport {
            host: HostId(1),
            coflows: vec![
                coflow_fragment(3, 1, vec![flow(5, 1.0, true), flow(6, 2.0, false)]),
                coflow_fragment(7, 2, vec![flow(10, 8.0, true)]),
            ],
            jobs: vec![job_fragment(1, 0.0, 3.0), job_fragment(2, 100.0, 8.0)],
        };
        let merged = merge_reports(1.5, &[r0, r1]);
        assert_eq!(merged.now, 1.5);
        assert_eq!(merged.coflows.len(), 2);
        assert_eq!(merged.coflows[0].id, CoflowId(3));
        assert_eq!(merged.coflows[1].id, CoflowId(7));
        let c7 = &merged.coflows[1];
        assert_eq!(
            c7.flows.iter().map(|f| f.id).collect::<Vec<_>>(),
            vec![FlowId(10), FlowId(11)]
        );
        assert_eq!(c7.bytes_received, 12.0);
        assert_eq!(c7.max_flow_bytes_received, 8.0);
        assert_eq!(c7.open_flows, 2);
        let c3 = &merged.coflows[0];
        assert_eq!(c3.open_flows, 1);
        // Jobs sorted by id; bytes = completed + all active fragments.
        assert_eq!(merged.jobs.len(), 2);
        assert_eq!(merged.jobs[0].id, JobId(1));
        assert_eq!(merged.jobs[1].id, JobId(2));
        assert_eq!(merged.jobs[1].bytes_received, 112.0);
        assert_eq!(merged.jobs[1].completed_bytes, 100.0);
        assert_eq!(merged.jobs[0].active_coflows, vec![0]);
        assert_eq!(merged.jobs[1].active_coflows, vec![1]);
        // Lookup invariant holds on the merged view.
        assert!(merged.job(JobId(2)).is_some());
    }

    struct CountingAgent {
        decisions: usize,
    }

    impl HostAgent for CountingAgent {
        fn name(&self) -> String {
            "counting".into()
        }
        fn num_queues(&self) -> usize {
            2
        }
        fn decide(&mut self, merged: &Observation, _oracle: &Oracle<'_>) -> PriorityTable {
            self.decisions += 1;
            merged
                .coflows
                .iter()
                .map(|c| (c.id, usize::from(c.bytes_received > 5.0)))
                .collect()
        }
    }

    fn view(host: usize, coflow: usize, bytes: f64) -> LocalObservation {
        LocalObservation {
            host: HostId(host),
            now: 0.0,
            coflows: vec![coflow_fragment(coflow, 0, vec![flow(coflow, bytes, true)])],
            jobs: vec![job_fragment(0, 0.0, bytes)],
        }
    }

    #[test]
    fn zero_latency_applies_fresh_tables_without_events() {
        let mut plane = Decentralized::new(|| Box::new(CountingAgent { decisions: 0 }));
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.0,
            views: vec![view(0, 0, 1.0), view(1, 1, 9.0)],
        });
        assert_eq!(out.assignments, vec![(CoflowId(0), 0), (CoflowId(1), 1)]);
        assert!(out.schedule_update.is_none());
        assert_eq!(plane.num_agents(), 2);
        assert_eq!(plane.pending_updates(), 0);
    }

    #[test]
    fn positive_latency_delays_delivery_and_dedups() {
        let mut plane = Decentralized::new(|| Box::new(CountingAgent { decisions: 0 }));
        let views = || vec![view(0, 0, 9.0)];
        // First decision: nothing delivered yet, one update scheduled.
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.01,
            views: views(),
        });
        assert!(out.assignments.is_empty(), "nothing delivered yet");
        let token = out.schedule_update.expect("fresh table scheduled");
        // Same decision again: deduplicated, no second event.
        let out2 = plane.decide(ControlInput::Local {
            now: 0.005,
            latency: 0.01,
            views: views(),
        });
        assert!(
            out2.schedule_update.is_none(),
            "unchanged table re-scheduled"
        );
        // Delivery makes the table current; later decisions apply it.
        assert_eq!(
            plane.deliver(token),
            Some(vec![(CoflowId(0), 1)]),
            "delivered table"
        );
        let out3 = plane.decide(ControlInput::Local {
            now: 0.02,
            latency: 0.01,
            views: views(),
        });
        assert_eq!(out3.assignments, vec![(CoflowId(0), 1)]);
        assert!(plane.deliver(999).is_none(), "unknown token ignored");
    }
}
