//! Control-plane layering: *who* computes priorities, from *which* view,
//! and *how* decisions reach the hosts.
//!
//! The paper's headline property is that Gurita is decentralized — each
//! sender host works from locally observable per-stage state, with no
//! centralized controller in the loop. This module makes that a
//! first-class, testable axis instead of a docstring claim:
//!
//! ```text
//!                    ┌────────────────────────────┐
//!    event loop ───▶ │        ControlPlane        │ ───▶ priority table
//!                    └─────┬────────────────┬─────┘      (CoflowId → queue)
//!                          │                │
//!                 ┌────────▼──────┐  ┌──────▼────────────────────────┐
//!                 │  Centralized  │  │         Decentralized         │
//!                 │  (wraps any   │  │  HostAgent per sender host:   │
//!                 │  `Scheduler`, │  │  LocalObservation → report;   │
//!                 │  global view, │  │  reports merge into a cluster │
//!                 │  instant)     │  │  view; the decision table is  │
//!                 └───────────────┘  │  delivered after a configured │
//!                                    │  `control_latency` via timed  │
//!                                    │  `ControlUpdate` events       │
//!                                    └───────────────────────────────┘
//! ```
//!
//! # Staleness model
//!
//! The decentralized plane separates *reporting* from *acting*:
//!
//! * **Report uplink** — each decision point, every sender host digests
//!   its [`LocalObservation`] (only the coflows with flows sourced
//!   there, with local sent-bytes and age counters) into a
//!   [`HostReport`]. Reports merge into a cluster-wide view
//!   ([`merge_reports`]) from which the scheme computes a fresh
//!   [`PriorityTable`].
//! * **Decision downlink** — with `control_latency > 0` the fresh table
//!   is *not* applied immediately: it is queued and the runtime delivers
//!   it through the event loop after the configured latency. Until
//!   delivery, hosts keep (re-)applying the **last delivered** table —
//!   i.e. they act on a stale view, the behavior that separates
//!   decentralized schemes from idealized instantaneous ones.
//!
//! Consecutive identical tables are deduplicated (no event is scheduled
//! when the decision did not change), so the event count stays
//! proportional to actual priority churn.
//!
//! # Adapter guarantees
//!
//! [`Centralized`] is bit-for-bit today's behavior: one global
//! [`Observation`] plus the [`Oracle`], one cluster-wide
//! [`Scheduler::assign`], applied instantly. [`Decentralized`] with
//! `control_latency == 0` applies each fresh table immediately and
//! schedules no events, so for a scheme whose decision is a pure
//! function of the merged view it is **result-identical** to the same
//! scheme run centralized ([`merge_reports`] reconstructs the global
//! observation exactly, floating-point summation order included). Both
//! guarantees are pinned by cross-scheduler tests.

use crate::faults::{ControlFaultEvent, ControlFaults, SplitMix64};
use crate::sched::{CoflowObs, JobObs, Observation, Oracle, QueuePolicy, Scheduler};
use crate::stats::ControlResilience;
use crate::telemetry::TraceRecord;
use gurita_model::{CoflowId, HostId, JobId};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A priority decision: the queue for each listed coflow. Entries for
/// coflows that completed while the table was in flight are skipped at
/// application time; active coflows absent from the table keep their
/// current queue.
pub type PriorityTable = Vec<(CoflowId, usize)>;

/// What one sender host can observe at a decision point: the active
/// coflows that have at least one flow *sourced at this host*, with
/// per-flow byte counters restricted to those local flows, plus the
/// job-level facts a host learns from the coflows it carries (arrival,
/// completed stages — parents invoke children, so this is locally
/// observable, exactly as the receiver-side information model in
/// [`crate::sched`] argues).
#[derive(Debug, Clone)]
pub struct LocalObservation {
    /// The observing sender host.
    pub host: HostId,
    /// Current simulation time (hosts share a clock).
    pub now: f64,
    /// Active coflows with flows sourced here, ascending [`CoflowId`];
    /// `flows` lists only the local flows, and the per-coflow aggregates
    /// (`bytes_received`, `open_flows`, `max_flow_bytes_received`) cover
    /// only those.
    pub coflows: Vec<CoflowObs>,
    /// Jobs owning the coflows above, ascending [`JobId`];
    /// `bytes_received` counts completed bytes plus *local* active
    /// bytes, and `active_coflows` indexes into this view's `coflows`.
    pub jobs: Vec<JobObs>,
}

/// What a host sends to its peers: the verbatim local counters. Kept as
/// a distinct type so schemes can later compress or quantize the uplink
/// without touching the plane.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// The reporting host.
    pub host: HostId,
    /// Reported per-coflow observations (local flows only).
    pub coflows: Vec<CoflowObs>,
    /// Reported job-level facts.
    pub jobs: Vec<JobObs>,
}

impl HostReport {
    /// A report carrying the local observation verbatim.
    pub fn verbatim(local: LocalObservation) -> Self {
        Self {
            host: local.host,
            coflows: local.coflows,
            jobs: local.jobs,
        }
    }
}

/// A per-host scheduling agent: the unit the decentralized plane runs
/// one of per sender host.
///
/// Agents play two roles. In the *host* role, [`HostAgent::report`]
/// digests the local observation into the report sent to peers. In the
/// *head* role (one designated agent per plane, holding the scheme's
/// decision state), [`HostAgent::decide`] turns the merged cluster view
/// into a [`PriorityTable`]. The oracle handed to `decide` is always
/// [`Oracle::deny`] — a ported scheme that reaches for clairvoyant
/// state panics instead of silently cheating.
pub trait HostAgent {
    /// Display name (used in result tables, e.g. `gurita@local`).
    fn name(&self) -> String;

    /// Number of priority queues the agent uses.
    fn num_queues(&self) -> usize;

    /// Whether live flows may be re-prioritized in both directions (see
    /// [`Scheduler::reprioritizes_live_flows`]). Defaults to `false` —
    /// the TCP-reordering rule is the decentralized default.
    fn reprioritizes_live_flows(&self) -> bool {
        false
    }

    /// Host role: digest the local view into the report sent to peers.
    /// Defaults to the verbatim counters.
    fn report(&mut self, local: LocalObservation) -> HostReport {
        HostReport::verbatim(local)
    }

    /// Head role: priorities from the merged cluster view. `oracle` is
    /// always denying; it is passed so ported `Scheduler` code compiles
    /// unchanged and the no-clairvoyance claim is enforced at run time.
    fn decide(&mut self, merged: &Observation, oracle: &Oracle<'_>) -> PriorityTable;

    /// Service policy for the agent's queues, derived from
    /// `decide`-time state (same contract as
    /// [`Scheduler::queue_policy`]).
    fn queue_policy(&mut self) -> QueuePolicy {
        QueuePolicy::Strict
    }

    /// Notifies the head agent that a coflow completed.
    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        let _ = (coflow, job, now);
    }

    /// Notifies the head agent that a job completed.
    fn on_job_completed(&mut self, job: JobId, now: f64) {
        let _ = (job, now);
    }
}

/// Reconstructs the cluster-wide [`Observation`] from per-host reports.
///
/// The merge is deterministic and — for reports produced by the
/// runtime's per-host view builder — reproduces the centralized
/// observation *exactly*, floating-point bit patterns included:
/// coflows are ordered by ascending id (the runtime's activation
/// order), each coflow's flows by ascending id (creation order), and
/// per-coflow/per-job byte totals are re-accumulated in that order, so
/// every f64 sum replays the same additions the global builder performs.
pub fn merge_reports(now: f64, reports: &[HostReport]) -> Observation {
    let mut fragments: HashMap<CoflowId, CoflowObs> = HashMap::new();
    let mut job_meta: HashMap<JobId, JobObs> = HashMap::new();
    for r in reports {
        for c in &r.coflows {
            fragments
                .entry(c.id)
                .and_modify(|m| m.flows.extend_from_slice(&c.flows))
                .or_insert_with(|| c.clone());
        }
        for j in &r.jobs {
            job_meta.entry(j.id).or_insert_with(|| j.clone());
        }
    }
    let mut coflows: Vec<CoflowObs> = fragments.into_values().collect();
    coflows.sort_unstable_by_key(|c| c.id);
    for c in &mut coflows {
        c.flows.sort_unstable_by_key(|f| f.id);
        let mut bytes = 0.0f64;
        let mut max_flow = 0.0f64;
        let mut open = 0usize;
        for f in &c.flows {
            bytes += f.bytes_received;
            max_flow = max_flow.max(f.bytes_received);
            open += usize::from(f.open);
        }
        c.bytes_received = bytes;
        c.max_flow_bytes_received = max_flow;
        c.open_flows = open;
    }
    let mut job_index: HashMap<JobId, usize> = HashMap::new();
    let mut jobs: Vec<JobObs> = Vec::new();
    for (ci, c) in coflows.iter().enumerate() {
        let j = *job_index.entry(c.job).or_insert_with(|| {
            let meta = &job_meta[&c.job];
            jobs.push(JobObs {
                id: c.job,
                arrival: meta.arrival,
                completed_coflows: meta.completed_coflows,
                completed_stages: meta.completed_stages,
                bytes_received: meta.completed_bytes,
                completed_bytes: meta.completed_bytes,
                active_coflows: Vec::new(),
            });
            jobs.len() - 1
        });
        jobs[j].bytes_received += c.bytes_received;
        jobs[j].active_coflows.push(ci);
    }
    jobs.sort_unstable_by_key(|j| j.id);
    Observation { now, coflows, jobs }
}

/// Input handed to [`ControlPlane::decide`] at a decision point. The
/// runtime asks the plane which variant it needs via
/// [`ControlPlane::needs_local_views`] before building either.
pub enum ControlInput<'a> {
    /// The centralized path: one global observation plus the oracle.
    Global {
        /// Cluster-wide observation.
        obs: &'a Observation,
        /// Clairvoyant side channel.
        oracle: &'a Oracle<'a>,
    },
    /// The decentralized path: one local view per sender host with at
    /// least one active flow.
    Local {
        /// Current simulation time.
        now: f64,
        /// The configured decision-propagation latency
        /// ([`crate::runtime::SimConfig::control_latency`]).
        latency: f64,
        /// Per-host views, in deterministic first-flow order.
        views: Vec<LocalObservation>,
    },
}

/// What the plane wants done after a decision point.
#[derive(Default)]
pub struct ControlOutput {
    /// Queue assignments to apply *now* (for the decentralized plane,
    /// the last *delivered* table — hosts acting on their stale view).
    pub assignments: PriorityTable,
    /// If set, the runtime schedules a `ControlUpdate` event
    /// `control_latency` from now carrying this token; on firing it
    /// calls [`ControlPlane::deliver`] with it.
    pub schedule_update: Option<u64>,
    /// Per-sender-host tables, applied only to the flows *sourced at*
    /// each listed host. Populated only by fault-armed decentralized
    /// planes (where hosts may hold diverging tables); empty on every
    /// legacy path, where `assignments` applies cluster-wide.
    pub host_assignments: Vec<(HostId, PriorityTable)>,
    /// Protocol timers to schedule: `(delay_from_now, token)` pairs.
    /// The runtime turns each into a `ControlTimer` event and routes it
    /// back through [`ControlPlane::on_timer`]. Empty on legacy paths.
    pub timers: Vec<(f64, u64)>,
    /// Control-protocol trace records; the runtime forwards them to the
    /// telemetry sink when one is armed. Built only on fault paths, so
    /// healthy runs pay nothing.
    pub trace: Vec<TraceRecord>,
}

/// Side effects of one control-protocol step
/// ([`ControlPlane::on_timer`]): follow-up timers plus trace records.
#[derive(Debug, Default)]
pub struct ControlEffects {
    /// `(delay_from_now, token)` pairs to schedule as `ControlTimer`
    /// events.
    pub timers: Vec<(f64, u64)>,
    /// Trace records for the telemetry sink.
    pub trace: Vec<TraceRecord>,
}

/// The coordination layer: turns runtime state into queue assignments.
///
/// Two implementations ship: [`Centralized`] (today's behavior, wraps
/// any [`Scheduler`]) and [`Decentralized`] (per-host agents, merged
/// reports, delayed delivery). The runtime drives either through this
/// object-safe interface.
pub trait ControlPlane {
    /// Display name of the scheme (used in result tables).
    fn name(&self) -> String;

    /// Number of priority queues in the scheme's assignments.
    fn num_queues(&self) -> usize;

    /// Whether live flows may be re-prioritized in both directions.
    fn reprioritizes_live_flows(&self) -> bool {
        false
    }

    /// Whether [`ControlPlane::decide`] needs [`ControlInput::Local`]
    /// (per-host views) instead of [`ControlInput::Global`].
    fn needs_local_views(&self) -> bool {
        false
    }

    /// One decision point: consume the input, return assignments to
    /// apply now and (optionally) a delayed-delivery request.
    fn decide(&mut self, input: ControlInput<'_>) -> ControlOutput;

    /// A `ControlUpdate` event fired: the table scheduled under `token`
    /// reaches the hosts. Returns the newly current table (the runtime
    /// applies it at the same decision point via
    /// [`ControlOutput::assignments`], so implementations may simply
    /// record it). Default: ignore (the centralized plane never
    /// schedules updates).
    fn deliver(&mut self, token: u64) -> Option<PriorityTable> {
        let _ = token;
        None
    }

    /// Service policy for the scheme's queues, derived from
    /// `decide`-time state (see [`Scheduler::queue_policy`]'s contract:
    /// the runtime queries this once per rate recomputation with no
    /// observation available).
    fn queue_policy(&mut self) -> QueuePolicy {
        QueuePolicy::Strict
    }

    /// Priority tables computed but not yet delivered to the hosts —
    /// read by telemetry epoch samples, never by scheduling logic.
    /// Default: 0 (centralized planes deliver instantaneously).
    fn pending_updates(&self) -> usize {
        0
    }

    /// Arms a control-fault profile for the run. Default: ignore — the
    /// centralized plane models an in-band controller with no separate
    /// control channel, so control faults do not apply to it (only
    /// [`Decentralized`] implements this).
    fn arm_control_faults(&mut self, faults: &ControlFaults) {
        let _ = faults;
    }

    /// A `ControlTimer` event fired: run the protocol step registered
    /// under `token` (delivery, ack receipt, or retry check) and return
    /// any follow-up timers plus trace records. Default: nothing
    /// (planes without a fault profile never schedule timers).
    fn on_timer(&mut self, token: u64, now: f64) -> ControlEffects {
        let _ = (token, now);
        ControlEffects::default()
    }

    /// A scheduled [`ControlFaultEvent`] fired (agent crash/restart,
    /// partition edge). Returns trace records describing the
    /// transition. Default: ignore.
    fn control_fault(&mut self, event: &ControlFaultEvent, now: f64) -> Vec<TraceRecord> {
        let _ = (event, now);
        Vec::new()
    }

    /// End-of-run resilience counters, with any still-open degraded
    /// windows closed at `now`. `None` when the plane never armed a
    /// fault profile (the engine then leaves
    /// [`crate::stats::RunResult::control`] at its all-zero default).
    fn resilience(&self, now: f64) -> Option<ControlResilience> {
        let _ = now;
        None
    }

    /// Notifies the plane that a coflow completed.
    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        let _ = (coflow, job, now);
    }

    /// Notifies the plane that a job completed.
    fn on_job_completed(&mut self, job: JobId, now: f64) {
        let _ = (job, now);
    }
}

/// The centralized coordination layer: wraps any [`Scheduler`] and
/// reproduces the pre-refactor behavior bit-for-bit — one global
/// observation, one cluster-wide `assign`, applied instantly (the
/// `control_latency` knob does not apply; the paper grants centralized
/// schemes instantaneous information).
pub struct Centralized<S: Scheduler> {
    inner: S,
}

impl<S: Scheduler> Centralized<S> {
    /// Wraps a scheduler. `S` may be a concrete type, `&mut dyn
    /// Scheduler`, or `Box<dyn Scheduler>` (blanket impls forward).
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// Borrow the wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap the scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> ControlPlane for Centralized<S> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn num_queues(&self) -> usize {
        self.inner.num_queues()
    }

    fn reprioritizes_live_flows(&self) -> bool {
        self.inner.reprioritizes_live_flows()
    }

    fn decide(&mut self, input: ControlInput<'_>) -> ControlOutput {
        match input {
            ControlInput::Global { obs, oracle } => {
                let assignment = self.inner.assign(obs, oracle);
                assert_eq!(
                    assignment.len(),
                    obs.coflows.len(),
                    "scheduler must assign a queue to every active coflow"
                );
                ControlOutput {
                    assignments: obs
                        .coflows
                        .iter()
                        .zip(assignment)
                        .map(|(c, q)| (c.id, q))
                        .collect(),
                    ..ControlOutput::default()
                }
            }
            ControlInput::Local { .. } => {
                panic!("Centralized control plane requires the global observation")
            }
        }
    }

    fn queue_policy(&mut self) -> QueuePolicy {
        // Per the `Scheduler::queue_policy` contract the observation is
        // never read, so the empty default stands in for it.
        self.inner.queue_policy(&Observation::default())
    }

    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        self.inner.on_coflow_completed(coflow, job, now);
    }

    fn on_job_completed(&mut self, job: JobId, now: f64) {
        self.inner.on_job_completed(job, now);
    }
}

/// Per-host delivery channel state under a fault profile: what the host
/// has applied, when, and whether its agent is alive.
#[derive(Debug, Clone, Default)]
struct HostChannel {
    /// Highest sequence number the host has applied, `None` before the
    /// first successful delivery (and after a restart).
    applied_seq: Option<u64>,
    /// Time the applied table last matched the coordinator's latest
    /// decision (refreshed each unpartitioned decision point while the
    /// host is current — staleness measures lag behind the newest
    /// decision, not table age).
    applied_at: f64,
    /// The host's applied table; what it schedules on while not
    /// degraded.
    table: PriorityTable,
    /// Highest sequence number ever transmitted toward this host; the
    /// coordinator sends once per (host, seq) and lets retries redrive.
    sent_seq: u64,
    /// The host's agent is down: no reports, deliveries lost, frozen
    /// table.
    crashed: bool,
    /// Start of the host's open degraded (local-fallback) window.
    degraded_since: Option<f64>,
}

impl HostChannel {
    fn new(now: f64) -> Self {
        Self {
            applied_at: now,
            ..Self::default()
        }
    }
}

/// An in-flight protocol step, keyed by timer token.
#[derive(Debug, Clone)]
enum TimerPayload {
    /// A table transmission arrives at `host`.
    Deliver {
        host: usize,
        seq: u64,
        table: PriorityTable,
    },
    /// The host's ack for `seq` arrives back at the coordinator.
    Ack { host: usize, seq: u64 },
    /// Ack-timeout check for transmission number `attempt` of `seq`.
    Retry { host: usize, seq: u64, attempt: u32 },
}

/// The armed control-fault machinery of a [`Decentralized`] plane.
/// Present only when a non-null [`ControlFaults`] profile was armed;
/// its absence keeps the legacy decide path untouched (the zero-fault
/// bit-for-bit guarantee).
struct FaultState {
    profile: ControlFaults,
    rng: SplitMix64,
    /// Host index → channel state, ordered for deterministic iteration.
    channels: BTreeMap<usize, HostChannel>,
    /// Sequence number of the newest decision.
    latest_seq: u64,
    /// The newest decided table (what retransmissions carry).
    latest_table: PriorityTable,
    /// Coordinator currently partitioned away.
    partitioned: bool,
    /// Channel one-way latency, captured from the decide input.
    latency: f64,
    /// Timer token → pending protocol step.
    payloads: HashMap<u64, TimerPayload>,
    next_token: u64,
    /// Host index → highest acked sequence number.
    acked: HashMap<usize, u64>,
    resilience: ControlResilience,
}

impl FaultState {
    fn new(profile: ControlFaults) -> Self {
        Self {
            rng: SplitMix64::new(profile.seed),
            profile,
            channels: BTreeMap::new(),
            latest_seq: 0,
            latest_table: PriorityTable::new(),
            partitioned: false,
            latency: 0.0,
            payloads: HashMap::new(),
            next_token: 0,
            acked: HashMap::new(),
            resilience: ControlResilience::default(),
        }
    }

    fn mint_token(&mut self, payload: TimerPayload) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.payloads.insert(token, payload);
        token
    }

    /// One transmission of `latest_table` toward `host` through the
    /// lossy channel: rolls drop/reorder/duplicate, schedules the
    /// delivery timer(s) that survive, and always schedules the
    /// ack-timeout check for this attempt with capped exponential
    /// backoff.
    fn transmit(
        &mut self,
        host: usize,
        seq: u64,
        attempt: u32,
        now: f64,
        timers: &mut Vec<(f64, u64)>,
        trace: &mut Vec<TraceRecord>,
    ) {
        self.resilience.messages_sent += 1;
        let dropped = self.rng.next_f64() < self.profile.drop_prob;
        let reordered = self.rng.next_f64() < self.profile.reorder_prob;
        let duplicated = self.rng.next_f64() < self.profile.duplicate_prob;
        if dropped {
            self.resilience.messages_dropped += 1;
            trace.push(TraceRecord::ControlDropped { t: now, host, seq });
        } else {
            let delay = self.latency
                + if reordered {
                    self.profile.reorder_delay
                } else {
                    0.0
                };
            let table = self.latest_table.clone();
            let token = self.mint_token(TimerPayload::Deliver { host, seq, table });
            timers.push((delay, token));
        }
        if duplicated {
            self.resilience.messages_duplicated += 1;
            let table = self.latest_table.clone();
            let token = self.mint_token(TimerPayload::Deliver { host, seq, table });
            timers.push((self.latency, token));
        }
        let backoff = (self.profile.ack_timeout * self.profile.backoff_factor.powi(attempt as i32))
            .min(self.profile.max_backoff);
        let token = self.mint_token(TimerPayload::Retry { host, seq, attempt });
        timers.push((backoff, token));
    }
}

/// The decentralized coordination layer: one [`HostAgent`] per sender
/// host plus a designated *head* agent holding the scheme's decision
/// state (mirroring the paper's head-receiver role). See the
/// [module docs](crate::control) for the staleness model.
pub struct Decentralized {
    head: Box<dyn HostAgent>,
    factory: Box<dyn FnMut() -> Box<dyn HostAgent>>,
    agents: HashMap<HostId, Box<dyn HostAgent>>,
    /// The last table delivered to (and therefore acted on by) hosts.
    current: PriorityTable,
    /// The last table computed and either applied (zero latency) or
    /// queued for delivery — used to dedup unchanged decisions.
    last_emitted: PriorityTable,
    /// Tables in flight: `(token, table)`, delivery-ordered.
    pending: VecDeque<(u64, PriorityTable)>,
    next_token: u64,
    /// Armed control-fault machinery; `None` on the legacy path.
    faults: Option<FaultState>,
}

impl std::fmt::Debug for Decentralized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Decentralized")
            .field("head", &self.head.name())
            .field("agents", &self.agents.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Decentralized {
    /// Creates the plane from an agent factory. One agent is minted per
    /// sender host on first sight; one more (the first) becomes the
    /// head. All agents must be the same scheme (the factory is the
    /// single source).
    pub fn new<F>(mut factory: F) -> Self
    where
        F: FnMut() -> Box<dyn HostAgent> + 'static,
    {
        let head = factory();
        Self {
            head,
            factory: Box::new(factory),
            agents: HashMap::new(),
            current: PriorityTable::new(),
            last_emitted: PriorityTable::new(),
            pending: VecDeque::new(),
            next_token: 0,
            faults: None,
        }
    }

    /// Number of distinct sender hosts seen so far (agents minted).
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Tables currently in flight to the hosts: legacy `ControlUpdate`
    /// deliveries plus, when a fault profile is armed, protocol
    /// deliveries still on the wire.
    pub fn pending_updates(&self) -> usize {
        let in_flight = self.faults.as_ref().map_or(0, |fs| {
            fs.payloads
                .values()
                .filter(|p| matches!(p, TimerPayload::Deliver { .. }))
                .count()
        });
        self.pending.len() + in_flight
    }

    /// The decision point under an armed fault profile: digest reports
    /// from live hosts, decide (unless partitioned), push the new table
    /// through the lossy ack/retry channel, and emit per-host tables
    /// down the degradation ladder — applied table → frozen table
    /// (crashed agent) → local fallback (staleness bound exceeded).
    fn decide_with_faults(
        &mut self,
        now: f64,
        latency: f64,
        views: Vec<LocalObservation>,
    ) -> ControlOutput {
        let Self {
            head,
            agents,
            factory,
            faults,
            ..
        } = self;
        let fs = faults
            .as_mut()
            .expect("decide_with_faults requires an armed profile");
        fs.latency = latency;
        let mut out = ControlOutput::default();

        // Digest local views into reports. Crashed hosts neither report
        // nor decide; they are remembered for the output pass below.
        let mut reports: Vec<HostReport> = Vec::new();
        let mut report_idx: HashMap<usize, usize> = HashMap::new();
        let mut present: Vec<usize> = Vec::new();
        for view in views {
            let h = view.host.index();
            present.push(h);
            let ch = fs
                .channels
                .entry(h)
                .or_insert_with(|| HostChannel::new(now));
            if ch.crashed {
                continue;
            }
            report_idx.insert(h, reports.len());
            reports.push(
                agents
                    .entry(view.host)
                    .or_insert_with(|| factory())
                    .report(view),
            );
        }
        present.sort_unstable();

        if !fs.partitioned {
            let merged = merge_reports(now, &reports);
            let table = head.decide(&merged, &Oracle::deny());
            if table != fs.latest_table || fs.latest_seq == 0 {
                fs.latest_seq += 1;
                fs.latest_table = table;
            }
            let latest = fs.latest_seq;
            // Transmit to every live reporting host that has not yet
            // been sent the newest table (covers fresh decisions and
            // newly-seen hosts catching up), and refresh the staleness
            // clock of hosts already current: staleness measures lag
            // behind the latest decision, so an unchanged table must
            // not age into spurious degradation.
            for &h in &present {
                let ch = fs.channels.get_mut(&h).expect("channel minted above");
                if ch.crashed {
                    continue;
                }
                let needs_send = ch.sent_seq < latest;
                if needs_send {
                    ch.sent_seq = latest;
                }
                if ch.applied_seq == Some(latest) {
                    ch.applied_at = now;
                }
                if needs_send {
                    fs.transmit(h, latest, 0, now, &mut out.timers, &mut out.trace);
                }
            }
        }

        // Output pass: one table per present host, down the ladder.
        for &h in &present {
            let ch = fs.channels.get_mut(&h).expect("channel minted above");
            if ch.crashed {
                // Frozen: the crashed agent *is* the local scheduler,
                // so the host keeps its last-applied table.
                out.host_assignments.push((HostId(h), ch.table.clone()));
                continue;
            }
            let staleness = now - ch.applied_at;
            if staleness > fs.resilience.max_table_staleness {
                fs.resilience.max_table_staleness = staleness;
            }
            if staleness > fs.profile.staleness_bound {
                if ch.degraded_since.is_none() {
                    ch.degraded_since = Some(now);
                    fs.resilience.degraded_entries += 1;
                }
                // Local fallback: the host's own agent decides from its
                // own report alone — the scheme run per host.
                let idx = report_idx[&h];
                let local = merge_reports(now, std::slice::from_ref(&reports[idx]));
                let table = agents
                    .get_mut(&HostId(h))
                    .expect("agent minted at digestion")
                    .decide(&local, &Oracle::deny());
                out.host_assignments.push((HostId(h), table));
            } else {
                if let Some(since) = ch.degraded_since.take() {
                    fs.resilience.degraded_time += now - since;
                    out.trace.push(TraceRecord::ControlDegraded {
                        t: now,
                        host: h,
                        dur: now - since,
                    });
                }
                out.host_assignments.push((HostId(h), ch.table.clone()));
            }
        }
        out
    }
}

impl ControlPlane for Decentralized {
    fn name(&self) -> String {
        self.head.name()
    }

    fn num_queues(&self) -> usize {
        self.head.num_queues()
    }

    fn reprioritizes_live_flows(&self) -> bool {
        self.head.reprioritizes_live_flows()
    }

    fn needs_local_views(&self) -> bool {
        true
    }

    fn pending_updates(&self) -> usize {
        Decentralized::pending_updates(self)
    }

    fn arm_control_faults(&mut self, faults: &ControlFaults) {
        // A null profile can never perturb the run; leaving the legacy
        // path untouched is what pins the zero-fault bit-for-bit
        // identity (proptested in `tests/tests/control_faults.rs`).
        if !faults.is_null() {
            self.faults = Some(FaultState::new(faults.clone()));
        }
    }

    fn on_timer(&mut self, token: u64, now: f64) -> ControlEffects {
        let mut fx = ControlEffects::default();
        let Some(fs) = self.faults.as_mut() else {
            return fx;
        };
        let Some(payload) = fs.payloads.remove(&token) else {
            return fx;
        };
        match payload {
            TimerPayload::Deliver { host, seq, table } => {
                let ch = fs
                    .channels
                    .entry(host)
                    .or_insert_with(|| HostChannel::new(now));
                if ch.crashed {
                    // Lost on the floor of a dead agent; the restart
                    // resync (sent_seq reset) re-drives delivery.
                } else if ch.applied_seq.is_some_and(|a| a >= seq) {
                    fs.resilience.messages_deduped += 1;
                    fx.trace
                        .push(TraceRecord::ControlDeduped { t: now, host, seq });
                } else {
                    ch.applied_seq = Some(seq);
                    ch.applied_at = now;
                    ch.table = table;
                    fx.trace
                        .push(TraceRecord::ControlApplied { t: now, host, seq });
                    // The ack rides the same lossy channel back.
                    if fs.rng.next_f64() < fs.profile.drop_prob {
                        fs.resilience.acks_lost += 1;
                    } else {
                        let latency = fs.latency;
                        let token = fs.mint_token(TimerPayload::Ack { host, seq });
                        fx.timers.push((latency, token));
                    }
                }
            }
            TimerPayload::Ack { host, seq } => {
                if fs.partitioned {
                    // The coordinator is unreachable; the ack is lost
                    // and the retry timer keeps driving.
                    fs.resilience.acks_lost += 1;
                } else {
                    let e = fs.acked.entry(host).or_insert(0);
                    *e = (*e).max(seq);
                }
            }
            TimerPayload::Retry { host, seq, attempt } => {
                let superseded = seq != fs.latest_seq;
                let acked = fs.acked.get(&host).is_some_and(|&a| a >= seq);
                let crashed = fs.channels.get(&host).is_some_and(|c| c.crashed);
                if superseded || acked || crashed {
                    // Nothing to redrive: a newer table took over, the
                    // host confirmed receipt, or the restart resync
                    // will re-send from the decision loop.
                } else if attempt >= fs.profile.max_retries {
                    fs.resilience.retries_abandoned += 1;
                } else {
                    fs.resilience.messages_retried += 1;
                    fx.trace.push(TraceRecord::ControlRetransmit {
                        t: now,
                        host,
                        seq,
                        attempt: attempt + 1,
                    });
                    fs.transmit(host, seq, attempt + 1, now, &mut fx.timers, &mut fx.trace);
                }
            }
        }
        fx
    }

    fn control_fault(&mut self, event: &ControlFaultEvent, now: f64) -> Vec<TraceRecord> {
        let mut trace = Vec::new();
        let Some(fs) = self.faults.as_mut() else {
            return trace;
        };
        match *event {
            ControlFaultEvent::AgentCrash { host } => {
                let h = host.index();
                let ch = fs
                    .channels
                    .entry(h)
                    .or_insert_with(|| HostChannel::new(now));
                ch.crashed = true;
                // A crashed host is frozen, not degraded: close any
                // open fallback window.
                if let Some(since) = ch.degraded_since.take() {
                    fs.resilience.degraded_time += now - since;
                    trace.push(TraceRecord::ControlDegraded {
                        t: now,
                        host: h,
                        dur: now - since,
                    });
                }
                fs.resilience.agent_crashes += 1;
                trace.push(TraceRecord::AgentCrashed { t: now, host: h });
            }
            ControlFaultEvent::AgentRestart { host } => {
                let h = host.index();
                let ch = fs
                    .channels
                    .entry(h)
                    .or_insert_with(|| HostChannel::new(now));
                ch.crashed = false;
                ch.applied_seq = None;
                ch.table = PriorityTable::new();
                ch.applied_at = now;
                ch.sent_seq = 0;
                fs.acked.remove(&h);
                fs.resilience.agent_restarts += 1;
                trace.push(TraceRecord::AgentRestarted { t: now, host: h });
            }
            ControlFaultEvent::PartitionStart => {
                fs.partitioned = true;
                fs.resilience.partitions += 1;
                trace.push(TraceRecord::Partition {
                    t: now,
                    active: true,
                });
            }
            ControlFaultEvent::PartitionEnd => {
                fs.partitioned = false;
                trace.push(TraceRecord::Partition {
                    t: now,
                    active: false,
                });
            }
        }
        trace
    }

    fn resilience(&self, now: f64) -> Option<ControlResilience> {
        let fs = self.faults.as_ref()?;
        let mut res = fs.resilience.clone();
        for ch in fs.channels.values() {
            if let Some(since) = ch.degraded_since {
                res.degraded_time += now - since;
            }
        }
        Some(res)
    }

    fn decide(&mut self, input: ControlInput<'_>) -> ControlOutput {
        let ControlInput::Local {
            now,
            latency,
            views,
        } = input
        else {
            panic!("Decentralized control plane requires per-host views")
        };
        if self.faults.is_some() {
            return self.decide_with_faults(now, latency, views);
        }
        let Self {
            agents, factory, ..
        } = self;
        let reports: Vec<HostReport> = views
            .into_iter()
            .map(|view| {
                agents
                    .entry(view.host)
                    .or_insert_with(|| factory())
                    .report(view)
            })
            .collect();
        let merged = merge_reports(now, &reports);
        let table = self.head.decide(&merged, &Oracle::deny());
        if latency <= 0.0 {
            // Instantaneous delivery: no event traffic, each fresh table
            // acts immediately — result-identical to `Centralized` for
            // ported schemes (pinned by tests).
            self.current = table;
            self.last_emitted.clone_from(&self.current);
            return ControlOutput {
                assignments: self.current.clone(),
                ..ControlOutput::default()
            };
        }
        let schedule_update = if table != self.last_emitted {
            let token = self.next_token;
            self.next_token += 1;
            self.pending.push_back((token, table.clone()));
            self.last_emitted = table;
            Some(token)
        } else {
            None
        };
        // Hosts keep acting on the last *delivered* table — new flows of
        // known coflows are tagged with the stale priority, exactly what
        // a sender with a lagging view would do.
        ControlOutput {
            assignments: self.current.clone(),
            schedule_update,
            ..ControlOutput::default()
        }
    }

    fn deliver(&mut self, token: u64) -> Option<PriorityTable> {
        let idx = self.pending.iter().position(|(t, _)| *t == token)?;
        let (_, table) = self.pending.remove(idx)?;
        self.current = table;
        Some(self.current.clone())
    }

    fn queue_policy(&mut self) -> QueuePolicy {
        self.head.queue_policy()
    }

    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        // Decision state lives in the head agent; per-host agents are
        // stateless reporters in the shipped schemes.
        self.head.on_coflow_completed(coflow, job, now);
    }

    fn on_job_completed(&mut self, job: JobId, now: f64) {
        self.head.on_job_completed(job, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FlowObs;
    use gurita_model::FlowId;

    fn flow(id: usize, bytes: f64, open: bool) -> FlowObs {
        FlowObs {
            id: FlowId(id),
            bytes_received: bytes,
            open,
        }
    }

    fn coflow_fragment(id: usize, job: usize, flows: Vec<FlowObs>) -> CoflowObs {
        CoflowObs {
            id: CoflowId(id),
            job: JobId(job),
            dag_vertex: 0,
            dag_stage: 0,
            activated_at: 0.0,
            open_flows: flows.iter().filter(|f| f.open).count(),
            bytes_received: flows.iter().map(|f| f.bytes_received).sum(),
            max_flow_bytes_received: flows.iter().fold(0.0, |m, f| m.max(f.bytes_received)),
            flows,
        }
    }

    fn job_fragment(id: usize, completed_bytes: f64, local_bytes: f64) -> JobObs {
        JobObs {
            id: JobId(id),
            arrival: 0.0,
            completed_coflows: 1,
            completed_stages: 1,
            bytes_received: completed_bytes + local_bytes,
            completed_bytes,
            active_coflows: vec![0],
        }
    }

    #[test]
    fn merge_reassembles_split_coflows() {
        // Coflow 7 is split across hosts 0 and 1; coflow 3 lives only on
        // host 1. The merge must order coflows and flows by id and
        // rebuild the aggregates from all fragments.
        let r0 = HostReport {
            host: HostId(0),
            coflows: vec![coflow_fragment(7, 2, vec![flow(11, 4.0, true)])],
            jobs: vec![job_fragment(2, 100.0, 4.0)],
        };
        let r1 = HostReport {
            host: HostId(1),
            coflows: vec![
                coflow_fragment(3, 1, vec![flow(5, 1.0, true), flow(6, 2.0, false)]),
                coflow_fragment(7, 2, vec![flow(10, 8.0, true)]),
            ],
            jobs: vec![job_fragment(1, 0.0, 3.0), job_fragment(2, 100.0, 8.0)],
        };
        let merged = merge_reports(1.5, &[r0, r1]);
        assert_eq!(merged.now, 1.5);
        assert_eq!(merged.coflows.len(), 2);
        assert_eq!(merged.coflows[0].id, CoflowId(3));
        assert_eq!(merged.coflows[1].id, CoflowId(7));
        let c7 = &merged.coflows[1];
        assert_eq!(
            c7.flows.iter().map(|f| f.id).collect::<Vec<_>>(),
            vec![FlowId(10), FlowId(11)]
        );
        assert_eq!(c7.bytes_received, 12.0);
        assert_eq!(c7.max_flow_bytes_received, 8.0);
        assert_eq!(c7.open_flows, 2);
        let c3 = &merged.coflows[0];
        assert_eq!(c3.open_flows, 1);
        // Jobs sorted by id; bytes = completed + all active fragments.
        assert_eq!(merged.jobs.len(), 2);
        assert_eq!(merged.jobs[0].id, JobId(1));
        assert_eq!(merged.jobs[1].id, JobId(2));
        assert_eq!(merged.jobs[1].bytes_received, 112.0);
        assert_eq!(merged.jobs[1].completed_bytes, 100.0);
        assert_eq!(merged.jobs[0].active_coflows, vec![0]);
        assert_eq!(merged.jobs[1].active_coflows, vec![1]);
        // Lookup invariant holds on the merged view.
        assert!(merged.job(JobId(2)).is_some());
    }

    struct CountingAgent {
        decisions: usize,
    }

    impl HostAgent for CountingAgent {
        fn name(&self) -> String {
            "counting".into()
        }
        fn num_queues(&self) -> usize {
            2
        }
        fn decide(&mut self, merged: &Observation, _oracle: &Oracle<'_>) -> PriorityTable {
            self.decisions += 1;
            merged
                .coflows
                .iter()
                .map(|c| (c.id, usize::from(c.bytes_received > 5.0)))
                .collect()
        }
    }

    fn view(host: usize, coflow: usize, bytes: f64) -> LocalObservation {
        LocalObservation {
            host: HostId(host),
            now: 0.0,
            coflows: vec![coflow_fragment(coflow, 0, vec![flow(coflow, bytes, true)])],
            jobs: vec![job_fragment(0, 0.0, bytes)],
        }
    }

    #[test]
    fn zero_latency_applies_fresh_tables_without_events() {
        let mut plane = Decentralized::new(|| Box::new(CountingAgent { decisions: 0 }));
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.0,
            views: vec![view(0, 0, 1.0), view(1, 1, 9.0)],
        });
        assert_eq!(out.assignments, vec![(CoflowId(0), 0), (CoflowId(1), 1)]);
        assert!(out.schedule_update.is_none());
        assert_eq!(plane.num_agents(), 2);
        assert_eq!(plane.pending_updates(), 0);
    }

    #[test]
    fn positive_latency_delays_delivery_and_dedups() {
        let mut plane = Decentralized::new(|| Box::new(CountingAgent { decisions: 0 }));
        let views = || vec![view(0, 0, 9.0)];
        // First decision: nothing delivered yet, one update scheduled.
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.01,
            views: views(),
        });
        assert!(out.assignments.is_empty(), "nothing delivered yet");
        let token = out.schedule_update.expect("fresh table scheduled");
        // Same decision again: deduplicated, no second event.
        let out2 = plane.decide(ControlInput::Local {
            now: 0.005,
            latency: 0.01,
            views: views(),
        });
        assert!(
            out2.schedule_update.is_none(),
            "unchanged table re-scheduled"
        );
        // Delivery makes the table current; later decisions apply it.
        assert_eq!(
            plane.deliver(token),
            Some(vec![(CoflowId(0), 1)]),
            "delivered table"
        );
        let out3 = plane.decide(ControlInput::Local {
            now: 0.02,
            latency: 0.01,
            views: views(),
        });
        assert_eq!(out3.assignments, vec![(CoflowId(0), 1)]);
        assert!(plane.deliver(999).is_none(), "unknown token ignored");
    }

    fn armed_plane(profile: &ControlFaults) -> Decentralized {
        let mut plane = Decentralized::new(|| Box::new(CountingAgent { decisions: 0 }));
        plane.arm_control_faults(profile);
        plane
    }

    #[test]
    fn arming_a_null_profile_leaves_the_legacy_path() {
        let mut plane = Decentralized::new(|| Box::new(CountingAgent { decisions: 0 }));
        plane.arm_control_faults(&ControlFaults::default());
        assert!(plane.faults.is_none(), "null profile must not arm");
        assert!(plane.resilience(0.0).is_none());
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.0,
            views: vec![view(0, 0, 9.0)],
        });
        assert_eq!(out.assignments, vec![(CoflowId(0), 1)]);
        assert!(out.host_assignments.is_empty());
        assert!(out.timers.is_empty());
    }

    #[test]
    fn duplicate_deliveries_are_deduped_by_sequence() {
        let profile = ControlFaults {
            duplicate_prob: 1.0,
            ack_timeout: 1.0,
            max_backoff: 1.0,
            ..ControlFaults::default()
        };
        let mut plane = armed_plane(&profile);
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.01,
            views: vec![view(0, 0, 9.0)],
        });
        assert!(
            out.assignments.is_empty(),
            "fault path bypasses the uniform table"
        );
        // Original + duplicate delivery at the wire latency, plus the
        // ack-timeout retry check a full second out.
        assert_eq!(out.timers.len(), 3);
        let delivers: Vec<u64> = out
            .timers
            .iter()
            .filter(|&&(d, _)| d < 1.0)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(delivers.len(), 2);
        let fx = plane.on_timer(delivers[0], 0.01);
        assert!(
            fx.trace
                .iter()
                .any(|r| matches!(r, TraceRecord::ControlApplied { .. })),
            "first copy applies"
        );
        assert_eq!(fx.timers.len(), 1, "ack scheduled");
        let fx2 = plane.on_timer(delivers[1], 0.01);
        assert!(
            fx2.trace
                .iter()
                .any(|r| matches!(r, TraceRecord::ControlDeduped { .. })),
            "second copy deduped"
        );
        assert!(fx2.timers.is_empty(), "duplicates do not re-ack");
        let res = plane
            .resilience(0.02)
            .expect("armed plane reports resilience");
        assert_eq!(res.messages_sent, 1);
        assert_eq!(res.messages_duplicated, 1);
        assert_eq!(res.messages_deduped, 1);
        // The applied table lands as a per-host assignment next decision.
        let out2 = plane.decide(ControlInput::Local {
            now: 0.02,
            latency: 0.01,
            views: vec![view(0, 0, 9.0)],
        });
        assert_eq!(
            out2.host_assignments,
            vec![(HostId(0), vec![(CoflowId(0), 1)])]
        );
    }

    #[test]
    fn retries_back_off_capped_and_abandon() {
        let profile = ControlFaults {
            drop_prob: 1.0,
            ack_timeout: 0.01,
            backoff_factor: 2.0,
            max_backoff: 0.03,
            max_retries: 3,
            ..ControlFaults::default()
        };
        let mut plane = armed_plane(&profile);
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.0,
            views: vec![view(0, 0, 9.0)],
        });
        // Everything drops: the only timer is the attempt-0 retry check.
        assert_eq!(out.timers.len(), 1);
        let (mut delay, mut token) = out.timers[0];
        let mut delays = Vec::new();
        let mut now = 0.0;
        loop {
            delays.push(delay);
            now += delay;
            let fx = plane.on_timer(token, now);
            match fx.timers.as_slice() {
                [] => break,
                &[(d, t)] => {
                    delay = d;
                    token = t;
                }
                more => panic!("unexpected timers {more:?}"),
            }
        }
        // Exponential backoff, capped at max_backoff, abandoned after
        // max_retries redrives.
        assert_eq!(delays, vec![0.01, 0.02, 0.03, 0.03]);
        let res = plane.resilience(now).expect("armed");
        assert_eq!(res.messages_sent, 4);
        assert_eq!(res.messages_dropped, 4);
        assert_eq!(res.messages_retried, 3);
        assert_eq!(res.retries_abandoned, 1);
    }

    #[test]
    fn staleness_bound_degrades_to_local_scheduling() {
        let profile = ControlFaults {
            drop_prob: 1.0, // nothing ever lands
            staleness_bound: 0.05,
            ..ControlFaults::default()
        };
        let mut plane = armed_plane(&profile);
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.01,
            views: vec![view(0, 0, 9.0)],
        });
        // Within the bound the (empty) applied table holds.
        assert_eq!(out.host_assignments, vec![(HostId(0), vec![])]);
        let out2 = plane.decide(ControlInput::Local {
            now: 0.1,
            latency: 0.01,
            views: vec![view(0, 0, 9.0)],
        });
        // Past the bound the host's own agent decides from its own report.
        assert_eq!(
            out2.host_assignments,
            vec![(HostId(0), vec![(CoflowId(0), 1)])]
        );
        let res = plane.resilience(0.2).expect("armed");
        assert_eq!(res.degraded_entries, 1);
        assert!(res.max_table_staleness >= 0.1);
        assert!(
            res.degraded_time >= 0.1 - 1e-9,
            "open degraded window accrues up to now: {}",
            res.degraded_time
        );
    }

    #[test]
    fn crash_freezes_table_and_restart_resyncs() {
        // Lossless channel; the (far-future) scheduled crash only makes
        // the profile non-null — the crash under test is injected by
        // hand below.
        let profile = ControlFaults {
            ack_timeout: 1.0,
            max_backoff: 1.0,
            crashes: vec![crate::faults::AgentCrash {
                host: HostId(0),
                at: 1e9,
                restart_after: None,
            }],
            ..ControlFaults::default()
        };
        let mut plane = armed_plane(&profile);
        let views = || vec![view(0, 0, 9.0), view(1, 1, 1.0)];
        let out = plane.decide(ControlInput::Local {
            now: 0.0,
            latency: 0.01,
            views: views(),
        });
        let delivers: Vec<u64> = out
            .timers
            .iter()
            .filter(|&&(d, _)| d < 1.0)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(delivers.len(), 2, "one delivery per host");
        for t in delivers {
            plane.on_timer(t, 0.01);
        }
        let table = vec![(CoflowId(0), 1), (CoflowId(1), 0)];
        let out1 = plane.decide(ControlInput::Local {
            now: 0.02,
            latency: 0.01,
            views: views(),
        });
        assert_eq!(
            out1.host_assignments,
            vec![(HostId(0), table.clone()), (HostId(1), table.clone())]
        );
        // Crash host 0: it stops reporting and keeps its frozen table
        // even as the cluster's decision moves on.
        plane.control_fault(&ControlFaultEvent::AgentCrash { host: HostId(0) }, 0.03);
        let shifted = || vec![view(0, 0, 9.0), view(1, 1, 7.0)];
        let out2 = plane.decide(ControlInput::Local {
            now: 0.04,
            latency: 0.01,
            views: shifted(),
        });
        assert_eq!(
            out2.host_assignments[0],
            (HostId(0), table.clone()),
            "frozen"
        );
        // Restart resyncs: the next decision re-drives delivery.
        plane.control_fault(&ControlFaultEvent::AgentRestart { host: HostId(0) }, 0.05);
        let out3 = plane.decide(ControlInput::Local {
            now: 0.06,
            latency: 0.01,
            views: shifted(),
        });
        assert!(
            out3.timers.iter().any(|&(d, _)| d < 1.0),
            "restarted host is re-sent the latest table"
        );
        let res = plane.resilience(0.06).expect("armed");
        assert_eq!(res.agent_crashes, 1);
        assert_eq!(res.agent_restarts, 1);
    }
}
