//! Zero-overhead instrumentation: lifecycle tracing, epoch-sampled time
//! series, and a Chrome `trace_event` (Perfetto-loadable) exporter.
//!
//! The engine owns a `Probe` (crate-private) that forwards structured
//! [`TraceRecord`]s to a caller-supplied [`TelemetrySink`]. Telemetry is
//! **observational only**: probes read engine state, never schedule
//! events, and never touch any value that feeds a scheduling decision —
//! a run with a sink attached produces a [`crate::stats::RunResult`]
//! bit-for-bit identical to the same run without one (property-tested in
//! `tests/tests/telemetry.rs`).
//!
//! Telemetry is armed only when **both** hold:
//!
//! 1. [`crate::runtime::SimConfig::telemetry`] is `Some(TelemetryConfig)`;
//! 2. the run is started through a `*_traced` entry point (e.g.
//!    [`crate::runtime::Simulation::run_traced`]) with a sink.
//!
//! Otherwise every probe call site reduces to one branch on a `None`
//! option — no allocation, no sampling, no per-flow work — so the
//! default configuration pays nothing for the layer's existence (the
//! 48-pod gate in `results/BENCH_sim.json` tracks this).
//!
//! The starvation watch (contiguous zero-rate time per active coflow) is
//! deliberately *not* part of this module's on/off switch: it feeds
//! [`crate::stats::CoflowResult::starved_total`] and must be identical
//! whether or not a sink is attached, so the engine maintains it
//! unconditionally (two comparisons per rate write).

use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Telemetry knobs, carried in [`crate::runtime::SimConfig::telemetry`].
///
/// `SimConfig::telemetry = None` (the default) disables the layer
/// entirely; `Some(TelemetryConfig::default())` enables it with epoch
/// samples at the scheduler tick interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Seconds between [`EpochSample`]s. `0.0` (the default) samples at
    /// the run's `tick_interval`. Sampling piggybacks on processed
    /// events — it never schedules events of its own — so on an idle
    /// stretch the next sample lands with the next event.
    pub sample_interval: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            sample_interval: 0.0,
        }
    }
}

/// One structured telemetry record, emitted in simulation-time order.
///
/// Serialized as an externally tagged JSON object (one line per record
/// in [`JsonlSink`]): `{"FlowStart":{"t":0.5,...}}`. Every payload
/// carries the simulation time `t` as its first field. Identifiers are
/// raw indices (`FlowId::index()` etc.) so downstream tooling needs no
/// knowledge of the model crate's newtypes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A flow opened (its coflow activated). `parked` flags flows born
    /// during an outage with no live path.
    FlowStart {
        /// Simulation time.
        t: f64,
        /// Flow index.
        flow: usize,
        /// Owning coflow index.
        coflow: usize,
        /// Owning job index.
        job: usize,
        /// Sender host index.
        src: usize,
        /// Receiver host index.
        dst: usize,
        /// Flow volume in bytes.
        bytes: f64,
        /// Started parked on a dead path (waits for a recovery).
        parked: bool,
    },
    /// A live flow lost its last live path and parked at zero rate.
    FlowPark {
        /// Simulation time.
        t: f64,
        /// Flow index.
        flow: usize,
        /// Owning coflow index.
        coflow: usize,
    },
    /// A parked flow resumed after a recovery.
    FlowResume {
        /// Simulation time.
        t: f64,
        /// Flow index.
        flow: usize,
        /// Owning coflow index.
        coflow: usize,
        /// The resume moved the flow onto a fresh path.
        rerouted: bool,
    },
    /// A flow delivered its last byte.
    FlowComplete {
        /// Simulation time.
        t: f64,
        /// Flow index.
        flow: usize,
        /// Owning coflow index.
        coflow: usize,
        /// Flow volume in bytes.
        bytes: f64,
    },
    /// A coflow activated (all DAG children completed).
    CoflowActivate {
        /// Simulation time.
        t: f64,
        /// Coflow index.
        coflow: usize,
        /// Owning job index.
        job: usize,
        /// DAG vertex within the job.
        dag_vertex: usize,
        /// Number of flows.
        width: usize,
        /// Total bytes across the coflow's flows.
        bytes: f64,
    },
    /// A coflow completed; carries its final starvation account.
    CoflowComplete {
        /// Simulation time.
        t: f64,
        /// Coflow index.
        coflow: usize,
        /// Owning job index.
        job: usize,
        /// Coflow completion time (activation → completion).
        cct: f64,
        /// Total time the active coflow spent at zero aggregate rate.
        starved_total: f64,
        /// Longest contiguous zero-rate interval.
        starved_max: f64,
    },
    /// A starvation interval closed: the coflow had been at zero
    /// aggregate rate for `dur` seconds ending at `t`. Only intervals of
    /// positive width are reported.
    CoflowStarved {
        /// Simulation time the interval ended.
        t: f64,
        /// Coflow index.
        coflow: usize,
        /// Interval width in seconds.
        dur: f64,
    },
    /// A job's last root coflow completed.
    JobComplete {
        /// Simulation time.
        t: f64,
        /// Job index.
        job: usize,
        /// Job completion time (arrival → completion).
        jct: f64,
    },
    /// A priority table moved a coflow between queues.
    PriorityMove {
        /// Simulation time.
        t: f64,
        /// Coflow index.
        coflow: usize,
        /// Previous queue index.
        from: usize,
        /// New queue index.
        to: usize,
    },
    /// A delayed priority table reached the hosts
    /// (see [`crate::runtime::SimConfig::control_latency`]).
    ControlDelivered {
        /// Simulation time of delivery.
        t: f64,
        /// The control plane's update token.
        token: u64,
        /// Measured decision age: delivery time minus the time the table
        /// was computed. Equals the configured `control_latency` unless
        /// the plane re-schedules tokens.
        staleness: f64,
    },
    /// A scheduled fault was applied, with the engine's reaction.
    FaultApplied {
        /// Simulation time.
        t: f64,
        /// Flows moved to a fresh path.
        rerouted: usize,
        /// Flows left with no live path and parked.
        parked: usize,
        /// Parked flows resumed by this recovery.
        resumed: usize,
    },
    /// A control-plane table delivery was lost to the channel's drop
    /// probability (control-fault runs only).
    ControlDropped {
        /// Simulation time of the (failed) transmission.
        t: f64,
        /// Destination host index.
        host: usize,
        /// Sequence number of the lost table.
        seq: u64,
    },
    /// A host rejected a delivered table as stale or duplicate by
    /// sequence number.
    ControlDeduped {
        /// Simulation time of the rejection.
        t: f64,
        /// Host index.
        host: usize,
        /// Sequence number of the rejected delivery.
        seq: u64,
    },
    /// The coordinator retransmitted an unacked table.
    ControlRetransmit {
        /// Simulation time of the retransmission.
        t: f64,
        /// Destination host index.
        host: usize,
        /// Sequence number being retransmitted.
        seq: u64,
        /// Retry attempt (1 = first retransmission).
        attempt: u32,
    },
    /// A host applied a sequence-numbered table.
    ControlApplied {
        /// Simulation time of application.
        t: f64,
        /// Host index.
        host: usize,
        /// Sequence number applied.
        seq: u64,
    },
    /// A host left the degraded (local-fallback) state: it had been
    /// scheduling on local decisions for `dur` seconds ending at `t`.
    ControlDegraded {
        /// Simulation time the degraded window closed.
        t: f64,
        /// Host index.
        host: usize,
        /// Window width in seconds.
        dur: f64,
    },
    /// A host's scheduling agent crashed (scheduled control fault).
    AgentCrashed {
        /// Simulation time.
        t: f64,
        /// Host index.
        host: usize,
    },
    /// A crashed agent restarted with empty state.
    AgentRestarted {
        /// Simulation time.
        t: f64,
        /// Host index.
        host: usize,
    },
    /// The coordinator partition state changed.
    Partition {
        /// Simulation time.
        t: f64,
        /// `true` when the partition starts, `false` when it heals.
        active: bool,
    },
    /// An epoch-sampled snapshot of queue/link/allocator state.
    Epoch(EpochSample),
}

impl TraceRecord {
    /// The record's simulation time.
    pub fn time(&self) -> f64 {
        match self {
            TraceRecord::FlowStart { t, .. }
            | TraceRecord::FlowPark { t, .. }
            | TraceRecord::FlowResume { t, .. }
            | TraceRecord::FlowComplete { t, .. }
            | TraceRecord::CoflowActivate { t, .. }
            | TraceRecord::CoflowComplete { t, .. }
            | TraceRecord::CoflowStarved { t, .. }
            | TraceRecord::JobComplete { t, .. }
            | TraceRecord::PriorityMove { t, .. }
            | TraceRecord::ControlDelivered { t, .. }
            | TraceRecord::FaultApplied { t, .. }
            | TraceRecord::ControlDropped { t, .. }
            | TraceRecord::ControlDeduped { t, .. }
            | TraceRecord::ControlRetransmit { t, .. }
            | TraceRecord::ControlApplied { t, .. }
            | TraceRecord::ControlDegraded { t, .. }
            | TraceRecord::AgentCrashed { t, .. }
            | TraceRecord::AgentRestarted { t, .. }
            | TraceRecord::Partition { t, .. } => *t,
            TraceRecord::Epoch(s) => s.t,
        }
    }
}

/// One sampled snapshot of the engine's dynamic state. Samples are taken
/// after event processing whenever at least `sample_interval` seconds of
/// simulation time have passed since the previous sample.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// Simulation time of the sample.
    pub t: f64,
    /// Events processed so far.
    pub events: u64,
    /// Pending events in the event queue.
    pub event_queue_depth: usize,
    /// Open (uncompleted) flows, including parked ones.
    pub active_flows: usize,
    /// Flows currently parked on dead paths.
    pub parked_flows: usize,
    /// Active (incomplete) coflows.
    pub active_coflows: usize,
    /// Active coflows currently at zero aggregate rate (see the
    /// starvation watch in [`crate::stats::CoflowResult`]).
    pub starved_coflows: usize,
    /// Open unparked flows per priority queue (SPQ/WRR queue index).
    pub queue_occupancy: Vec<usize>,
    /// Fraction of the total allocated rate served per queue; all zeros
    /// when nothing is flowing.
    pub queue_service_share: Vec<f64>,
    /// Links carrying at least one flow with a finite nonzero rate.
    pub links_busy: usize,
    /// Max over busy links of `rate_sum / effective_capacity`.
    pub max_link_utilization: f64,
    /// Mean utilization over busy links (0 when none are busy).
    pub mean_link_utilization: f64,
    /// Priority tables computed but not yet delivered to the hosts
    /// (decentralized planes with nonzero `control_latency`; 0 for
    /// centralized planes).
    pub pending_control_updates: usize,
    /// Links currently degraded or failed by the fault overlay.
    pub degraded_links: usize,
    /// Cumulative full-pass rate recomputations (discipline changes or
    /// `force_full_recompute`).
    pub alloc_full_passes: u64,
    /// Cumulative incremental (dirty-component) recomputations.
    pub alloc_incremental_passes: u64,
    /// Cumulative flows re-rated across all recomputations — the
    /// incremental BFS component sizes, summed.
    pub alloc_component_flows: u64,
    /// Cumulative dirty seed links consumed by incremental passes.
    pub alloc_seed_links: u64,
    /// Distinct links touched by the most recent recompute epoch,
    /// summed over its per-component allocator calls in component-index
    /// order (the allocator's dense-remap widths).
    pub alloc_touched_links: usize,
    /// Water-filling passes run by the most recent recompute epoch (one
    /// per non-empty priority queue under SPQ, one under WRR, per
    /// component), summed over its per-component calls.
    pub alloc_waterfill_passes: u64,
    /// Cumulative `Allocator::allocate_into` calls: one per full pass,
    /// one per dirty component of each incremental epoch. With
    /// `alloc_incremental_passes` this yields the mean component count
    /// per epoch — the available intra-run parallelism (see
    /// [`SimConfig::threads`](crate::runtime::SimConfig::threads)).
    #[serde(default)]
    pub alloc_component_calls: u64,
    /// Cumulative recompute epochs fanned across the worker pool (0
    /// when `SimConfig::threads` is 1 or every epoch stayed below the
    /// dispatch threshold).
    #[serde(default)]
    pub alloc_parallel_epochs: u64,
}

/// Receives [`TraceRecord`]s from an instrumented run.
///
/// Contract: `record` is called in simulation-time order; `flush` is
/// called exactly once, after the run drains (including on error paths
/// that return a partial result — but not on panics; the file sinks
/// carry their own drop-time safety nets: [`JsonlSink`]'s buffered
/// writer flushes on drop, and [`ChromeTraceSink`] writes its buffered
/// document from `Drop` if `flush` never ran). Sinks must not assume
/// anything about wall-clock time and must not fail the run: IO errors
/// are held internally (see [`JsonlSink::finish`]).
pub trait TelemetrySink: std::fmt::Debug {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);
    /// The run is over; write out buffered state.
    fn flush(&mut self) {}
}

/// Crate-private probe state owned by the engine: the sink (if armed),
/// the sampling cadence, cumulative allocator counters, and the
/// issue-time map backing ControlUpdate staleness measurement. All
/// fields are touched only when `on()` — the disabled path carries the
/// struct but never writes it.
#[derive(Debug)]
pub(crate) struct Probe<'a> {
    pub(crate) sink: Option<&'a mut dyn TelemetrySink>,
    pub(crate) sample_interval: f64,
    pub(crate) next_sample: f64,
    /// ControlUpdate token → simulation time the table was computed.
    pub(crate) control_issued: HashMap<u64, f64>,
    pub(crate) full_passes: u64,
    pub(crate) incremental_passes: u64,
    pub(crate) component_flows: u64,
    pub(crate) seed_links: u64,
    pub(crate) component_calls: u64,
    pub(crate) parallel_epochs: u64,
}

impl<'a> Probe<'a> {
    pub(crate) fn new(sink: Option<&'a mut dyn TelemetrySink>, sample_interval: f64) -> Self {
        Self {
            sink,
            sample_interval,
            next_sample: 0.0,
            control_issued: HashMap::new(),
            full_passes: 0,
            incremental_passes: 0,
            component_flows: 0,
            seed_links: 0,
            component_calls: 0,
            parallel_epochs: 0,
        }
    }

    /// Whether telemetry is armed. Every probe call site branches on
    /// this first; when `false` the layer costs exactly this check.
    #[inline]
    pub(crate) fn on(&self) -> bool {
        self.sink.is_some()
    }

    pub(crate) fn emit(&mut self, rec: &TraceRecord) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(rec);
        }
    }

    pub(crate) fn flush(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }
}

/// In-memory sink: collects every record. The reference sink for tests
/// and programmatic consumers.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every record received, in emission order.
    pub records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected epoch samples, in order.
    pub fn samples(&self) -> impl Iterator<Item = &EpochSample> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Epoch(s) => Some(s),
            _ => None,
        })
    }

    /// Lifecycle events (everything but epoch samples), in order.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records
            .iter()
            .filter(|r| !matches!(r, TraceRecord::Epoch(_)))
    }
}

impl TelemetrySink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(rec.clone());
    }
}

/// Counting sink that discards record contents — the cheapest possible
/// "telemetry on" sink, used to measure the armed layer's intrinsic
/// overhead (record construction + dispatch) in the bench harness.
#[derive(Debug, Default)]
pub struct NullSink {
    /// Number of records received.
    pub records: u64,
}

impl NullSink {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TelemetrySink for NullSink {
    fn record(&mut self, _rec: &TraceRecord) {
        self.records += 1;
    }
}

/// Fans every record out to several sinks (e.g. JSONL + Chrome trace in
/// one run).
#[derive(Debug, Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink to the fan-out.
    #[must_use]
    pub fn with(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// The wrapped sinks, for post-run inspection.
    pub fn into_sinks(self) -> Vec<Box<dyn TelemetrySink>> {
        self.sinks
    }
}

impl TelemetrySink for MultiSink {
    fn record(&mut self, rec: &TraceRecord) {
        for s in &mut self.sinks {
            s.record(rec);
        }
    }
    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// Streams records as JSON Lines: one externally tagged [`TraceRecord`]
/// object per line, written through a buffered file writer.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    out: Option<std::io::BufWriter<std::fs::File>>,
    error: Option<std::io::Error>,
    records: u64,
}

impl JsonlSink {
    /// Creates (truncates) `path` for writing.
    ///
    /// # Errors
    ///
    /// Any file-creation error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(Self {
            path,
            out: Some(std::io::BufWriter::new(file)),
            error: None,
            records: 0,
        })
    }

    /// Flushes and reports the first IO error hit during the run, if
    /// any. Call after the run; the sink is unusable afterwards.
    ///
    /// # Errors
    ///
    /// The first write/flush error encountered.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if let Some(mut out) = self.out.take() {
            out.flush()?;
        }
        Ok(self.path)
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        if let Some(out) = self.out.as_mut() {
            let line = match serde_json::to_string(rec) {
                Ok(l) => l,
                Err(e) => {
                    self.error = Some(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("serialize trace record: {e:?}"),
                    ));
                    return;
                }
            };
            if let Err(e) = out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
            {
                self.error = Some(e);
                return;
            }
            self.records += 1;
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Exports the run as a Chrome `trace_event` JSON file — the format
/// Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
/// directly. See EXPERIMENTS.md for capture instructions.
///
/// Mapping (timestamps in microseconds of simulation time):
///
/// * coflows → complete (`"X"`) slices on pid 1, one track per coflow;
/// * flows → complete slices on pid 2, one track per flow;
/// * starvation intervals → complete slices on pid 3, per coflow;
/// * ControlUpdate deliveries → instant (`"i"`) events on pid 1;
/// * control faults (pid 4): drops/retransmits/partition edges as
///   instants, degraded windows and agent crash→restart windows as
///   complete slices, one track per host;
/// * epoch samples → counter (`"C"`) tracks on pid 1 (active flows,
///   event-queue depth, starved coflows, mean link utilization).
///
/// Events buffer in memory and are written at [`TelemetrySink::flush`];
/// open-ended spans (flows alive at the end of a partial run) are
/// dropped, matching Chrome's own handling of unterminated slices.
#[derive(Debug)]
pub struct ChromeTraceSink {
    path: PathBuf,
    events: Vec<Value>,
    /// flow index → (start time, coflow).
    open_flows: HashMap<usize, (f64, usize)>,
    /// coflow index → activation time.
    open_coflows: HashMap<usize, f64>,
    /// host index → agent crash time (open crash windows).
    open_crashes: HashMap<usize, f64>,
    error: Option<std::io::Error>,
    /// Set once [`TelemetrySink::flush`] has written the file, so the
    /// [`Drop`] safety net does not clobber it with an empty document.
    flushed: bool,
}

const TRACE_PID_COFLOWS: f64 = 1.0;
const TRACE_PID_FLOWS: f64 = 2.0;
const TRACE_PID_STARVATION: f64 = 3.0;
const TRACE_PID_CONTROL: f64 = 4.0;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// A complete ("X") trace event: a slice from `start` to `end` seconds.
fn slice(name: String, cat: &str, pid: f64, tid: f64, start: f64, end: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("cat", Value::Str(cat.to_owned())),
        ("ph", Value::Str("X".to_owned())),
        ("ts", Value::Num(start * 1e6)),
        ("dur", Value::Num((end - start).max(0.0) * 1e6)),
        ("pid", Value::Num(pid)),
        ("tid", Value::Num(tid)),
    ])
}

/// An instant ("i") event on the control-faults process.
fn control_instant(name: String, t: f64, tid: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("cat", Value::Str("control-fault".to_owned())),
        ("ph", Value::Str("i".to_owned())),
        ("s", Value::Str("g".to_owned())),
        ("ts", Value::Num(t * 1e6)),
        ("pid", Value::Num(TRACE_PID_CONTROL)),
        ("tid", Value::Num(tid)),
    ])
}

/// A counter ("C") sample on its own named track.
fn counter(name: &str, t: f64, value: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_owned())),
        ("ph", Value::Str("C".to_owned())),
        ("ts", Value::Num(t * 1e6)),
        ("pid", Value::Num(TRACE_PID_COFLOWS)),
        ("args", obj(vec![("value", Value::Num(value))])),
    ])
}

impl ChromeTraceSink {
    /// Buffers a trace destined for `path`; the file is created at
    /// flush time.
    pub fn new(path: impl AsRef<Path>) -> Self {
        let mut events = Vec::new();
        for (pid, name) in [
            (TRACE_PID_COFLOWS, "coflows"),
            (TRACE_PID_FLOWS, "flows"),
            (TRACE_PID_STARVATION, "starvation"),
            (TRACE_PID_CONTROL, "control-faults"),
        ] {
            events.push(obj(vec![
                ("name", Value::Str("process_name".to_owned())),
                ("ph", Value::Str("M".to_owned())),
                ("pid", Value::Num(pid)),
                ("args", obj(vec![("name", Value::Str(name.to_owned()))])),
            ]));
        }
        Self {
            path: path.as_ref().to_path_buf(),
            events,
            open_flows: HashMap::new(),
            open_coflows: HashMap::new(),
            open_crashes: HashMap::new(),
            error: None,
            flushed: false,
        }
    }

    /// Reports the flush error, if any, and returns the output path.
    ///
    /// # Errors
    ///
    /// The error [`TelemetrySink::flush`] hit, if any.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.flushed = true; // consuming the sink ends its lifecycle
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(std::mem::take(&mut self.path)),
        }
    }
}

impl TelemetrySink for ChromeTraceSink {
    fn record(&mut self, rec: &TraceRecord) {
        match *rec {
            TraceRecord::FlowStart {
                t, flow, coflow, ..
            } => {
                self.open_flows.insert(flow, (t, coflow));
            }
            TraceRecord::FlowComplete { t, flow, .. } => {
                if let Some((start, coflow)) = self.open_flows.remove(&flow) {
                    self.events.push(slice(
                        format!("flow {flow} (coflow {coflow})"),
                        "flow",
                        TRACE_PID_FLOWS,
                        flow as f64,
                        start,
                        t,
                    ));
                }
            }
            TraceRecord::CoflowActivate { t, coflow, .. } => {
                self.open_coflows.insert(coflow, t);
            }
            TraceRecord::CoflowComplete { t, coflow, job, .. } => {
                if let Some(start) = self.open_coflows.remove(&coflow) {
                    self.events.push(slice(
                        format!("coflow {coflow} (job {job})"),
                        "coflow",
                        TRACE_PID_COFLOWS,
                        coflow as f64,
                        start,
                        t,
                    ));
                }
            }
            TraceRecord::CoflowStarved { t, coflow, dur } => {
                self.events.push(slice(
                    format!("starved (coflow {coflow})"),
                    "starvation",
                    TRACE_PID_STARVATION,
                    coflow as f64,
                    t - dur,
                    t,
                ));
            }
            TraceRecord::ControlDelivered {
                t,
                token,
                staleness,
            } => {
                self.events.push(obj(vec![
                    ("name", Value::Str(format!("control update {token}"))),
                    ("cat", Value::Str("control".to_owned())),
                    ("ph", Value::Str("i".to_owned())),
                    ("s", Value::Str("g".to_owned())),
                    ("ts", Value::Num(t * 1e6)),
                    ("pid", Value::Num(TRACE_PID_COFLOWS)),
                    ("tid", Value::Num(0.0)),
                    (
                        "args",
                        obj(vec![("staleness_us", Value::Num(staleness * 1e6))]),
                    ),
                ]));
            }
            TraceRecord::ControlDropped { t, host, seq } => {
                self.events.push(control_instant(
                    format!("drop seq {seq} (host {host})"),
                    t,
                    host as f64,
                ));
            }
            TraceRecord::ControlRetransmit {
                t,
                host,
                seq,
                attempt,
            } => {
                self.events.push(control_instant(
                    format!("retry {attempt} seq {seq} (host {host})"),
                    t,
                    host as f64,
                ));
            }
            TraceRecord::ControlDegraded { t, host, dur } => {
                self.events.push(slice(
                    format!("degraded (host {host})"),
                    "control-fault",
                    TRACE_PID_CONTROL,
                    host as f64,
                    t - dur,
                    t,
                ));
            }
            TraceRecord::AgentCrashed { t, host } => {
                self.open_crashes.insert(host, t);
            }
            TraceRecord::AgentRestarted { t, host } => {
                if let Some(start) = self.open_crashes.remove(&host) {
                    self.events.push(slice(
                        format!("agent crashed (host {host})"),
                        "control-fault",
                        TRACE_PID_CONTROL,
                        host as f64,
                        start,
                        t,
                    ));
                }
            }
            TraceRecord::Partition { t, active } => {
                let name = if active {
                    "partition start"
                } else {
                    "partition end"
                };
                self.events.push(control_instant(name.to_owned(), t, -1.0));
            }
            TraceRecord::Epoch(ref s) => {
                self.events
                    .push(counter("active_flows", s.t, s.active_flows as f64));
                self.events.push(counter(
                    "event_queue_depth",
                    s.t,
                    s.event_queue_depth as f64,
                ));
                self.events
                    .push(counter("starved_coflows", s.t, s.starved_coflows as f64));
                self.events.push(counter(
                    "mean_link_utilization",
                    s.t,
                    s.mean_link_utilization,
                ));
            }
            _ => {}
        }
    }

    fn flush(&mut self) {
        self.flushed = true;
        let doc = obj(vec![
            ("traceEvents", Value::Seq(std::mem::take(&mut self.events))),
            ("displayTimeUnit", Value::Str("ms".to_owned())),
        ]);
        let json = match serde_json::to_string(&doc) {
            Ok(j) => j,
            Err(e) => {
                self.error = Some(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("serialize chrome trace: {e:?}"),
                ));
                return;
            }
        };
        if let Err(e) = std::fs::write(&self.path, json) {
            self.error = Some(e);
        }
    }
}

/// Safety net for abnormal exits: a sink dropped without
/// [`TelemetrySink::flush`] (a panic unwinding the run, a daemon loop
/// aborting early) still writes whatever it buffered, so a partial
/// trace survives for debugging. The happy path is unaffected —
/// `flush` marks the sink done and the `Drop` becomes a no-op. Errors
/// here are swallowed: panicking in `Drop` during an unwind would
/// abort the process.
impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        if !self.flushed {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_start(t: f64, flow: usize) -> TraceRecord {
        TraceRecord::FlowStart {
            t,
            flow,
            coflow: 0,
            job: 0,
            src: 0,
            dst: 1,
            bytes: 100.0,
            parked: false,
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let sample = EpochSample {
            t: 1.5,
            events: 10,
            event_queue_depth: 3,
            active_flows: 2,
            parked_flows: 0,
            active_coflows: 1,
            starved_coflows: 0,
            queue_occupancy: vec![2, 0],
            queue_service_share: vec![1.0, 0.0],
            links_busy: 4,
            max_link_utilization: 1.0,
            mean_link_utilization: 0.5,
            pending_control_updates: 0,
            degraded_links: 0,
            alloc_full_passes: 1,
            alloc_incremental_passes: 5,
            alloc_component_flows: 9,
            alloc_seed_links: 12,
            alloc_touched_links: 4,
            alloc_waterfill_passes: 2,
            alloc_component_calls: 6,
            alloc_parallel_epochs: 2,
        };
        for rec in [
            flow_start(0.25, 7),
            TraceRecord::CoflowStarved {
                t: 2.0,
                coflow: 3,
                dur: 0.5,
            },
            TraceRecord::ControlDelivered {
                t: 1.0,
                token: 42,
                staleness: 0.01,
            },
            TraceRecord::ControlDropped {
                t: 1.1,
                host: 4,
                seq: 9,
            },
            TraceRecord::ControlDeduped {
                t: 1.2,
                host: 4,
                seq: 8,
            },
            TraceRecord::ControlRetransmit {
                t: 1.3,
                host: 4,
                seq: 9,
                attempt: 2,
            },
            TraceRecord::ControlApplied {
                t: 1.4,
                host: 4,
                seq: 9,
            },
            TraceRecord::ControlDegraded {
                t: 1.5,
                host: 4,
                dur: 0.25,
            },
            TraceRecord::AgentCrashed { t: 1.6, host: 5 },
            TraceRecord::AgentRestarted { t: 1.7, host: 5 },
            TraceRecord::Partition {
                t: 1.8,
                active: true,
            },
            TraceRecord::Epoch(sample),
        ] {
            let json = serde_json::to_string(&rec).unwrap();
            let back: TraceRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn memory_sink_separates_events_from_samples() {
        let mut sink = MemorySink::new();
        sink.record(&flow_start(0.0, 1));
        sink.record(&TraceRecord::Epoch(EpochSample {
            t: 0.5,
            events: 1,
            event_queue_depth: 0,
            active_flows: 1,
            parked_flows: 0,
            active_coflows: 1,
            starved_coflows: 0,
            queue_occupancy: vec![1],
            queue_service_share: vec![1.0],
            links_busy: 2,
            max_link_utilization: 0.9,
            mean_link_utilization: 0.9,
            pending_control_updates: 0,
            degraded_links: 0,
            alloc_full_passes: 1,
            alloc_incremental_passes: 0,
            alloc_component_flows: 1,
            alloc_seed_links: 2,
            alloc_touched_links: 2,
            alloc_waterfill_passes: 1,
            alloc_component_calls: 1,
            alloc_parallel_epochs: 0,
        }));
        assert_eq!(sink.events().count(), 1);
        assert_eq!(sink.samples().count(), 1);
    }

    #[test]
    fn chrome_sink_emits_slices_and_counters() {
        let dir = std::env::temp_dir().join("gurita_chrome_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let mut sink = ChromeTraceSink::new(&path);
        sink.record(&TraceRecord::CoflowActivate {
            t: 0.0,
            coflow: 0,
            job: 0,
            dag_vertex: 0,
            width: 1,
            bytes: 100.0,
        });
        sink.record(&flow_start(0.0, 1));
        sink.record(&TraceRecord::FlowComplete {
            t: 1.0,
            flow: 1,
            coflow: 0,
            bytes: 100.0,
        });
        sink.record(&TraceRecord::CoflowComplete {
            t: 1.0,
            coflow: 0,
            job: 0,
            cct: 1.0,
            starved_total: 0.0,
            starved_max: 0.0,
        });
        sink.flush();
        let written = std::fs::read_to_string(sink.finish().unwrap()).unwrap();
        let doc: Value = serde_json::from_str(&written).unwrap();
        let Value::Map(fields) = &doc else {
            panic!("trace must be a JSON object");
        };
        let (_, events) = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents present");
        let Value::Seq(events) = events else {
            panic!("traceEvents must be an array");
        };
        // 4 process_name metadata + flow slice + coflow slice.
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn chrome_sink_maps_control_fault_records() {
        let dir = std::env::temp_dir().join("gurita_chrome_control_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let mut sink = ChromeTraceSink::new(&path);
        sink.record(&TraceRecord::ControlDropped {
            t: 0.5,
            host: 2,
            seq: 1,
        });
        sink.record(&TraceRecord::ControlRetransmit {
            t: 0.6,
            host: 2,
            seq: 1,
            attempt: 1,
        });
        sink.record(&TraceRecord::AgentCrashed { t: 1.0, host: 3 });
        sink.record(&TraceRecord::AgentRestarted { t: 2.0, host: 3 });
        sink.record(&TraceRecord::ControlDegraded {
            t: 3.0,
            host: 2,
            dur: 0.5,
        });
        sink.record(&TraceRecord::Partition {
            t: 4.0,
            active: true,
        });
        // Applied/deduped records are counters-only (no chrome mapping).
        sink.record(&TraceRecord::ControlApplied {
            t: 4.5,
            host: 2,
            seq: 2,
        });
        sink.flush();
        let written = std::fs::read_to_string(sink.finish().unwrap()).unwrap();
        let doc: Value = serde_json::from_str(&written).unwrap();
        let Value::Map(fields) = &doc else {
            panic!("trace must be a JSON object");
        };
        let (_, events) = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents present");
        let Value::Seq(events) = events else {
            panic!("traceEvents must be an array");
        };
        // 4 metadata + drop + retry + crash slice + degraded slice +
        // partition instant.
        assert_eq!(events.len(), 9);
    }
}
