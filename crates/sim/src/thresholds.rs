//! Exponentially-spaced priority thresholds.
//!
//! The paper maps a job's per-stage blocking effect Ψ_J(s) onto the `K`
//! priority queues of commodity switches through a set of thresholds
//! θ_0 < θ_1 < … determined "using exponentially-spaced as recommended
//! by \[Aalo\]": a coflow transmits in queue `q` while
//! θ_{q−1} < Ψ_J(s) ≤ θ_q, is demoted as Ψ grows past each θ, and is
//! assigned the lowest queue once Ψ exceeds the last threshold.

use serde::{Deserialize, Serialize};

/// An exponentially-spaced threshold ladder: `θ_q = base × factor^q`.
///
/// # Example
///
/// ```
/// use gurita_sim::thresholds::ThresholdLadder;
/// let t = ThresholdLadder::exponential(4, 1e7, 10.0);
/// assert_eq!(t.num_queues(), 4);
/// assert_eq!(t.queue_for(0.0), 0);       // nothing observed yet
/// assert_eq!(t.queue_for(5e6), 0);
/// assert_eq!(t.queue_for(5e7), 1);
/// assert_eq!(t.queue_for(5e9), 3);       // beyond the ladder: lowest
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdLadder {
    /// θ_0 … θ_{K−2}; queue K−1 is everything above the last value.
    thresholds: Vec<f64>,
}

impl ThresholdLadder {
    /// Builds a ladder for `num_queues` queues with `θ_q = base ×
    /// factor^q` for `q = 0 … num_queues−2`.
    ///
    /// # Panics
    ///
    /// Panics unless `num_queues >= 1`, `base > 0`, and `factor > 1`.
    pub fn exponential(num_queues: usize, base: f64, factor: f64) -> Self {
        assert!(num_queues >= 1, "at least one queue required");
        assert!(base > 0.0, "base threshold must be positive");
        assert!(factor > 1.0, "factor must exceed 1");
        let thresholds = (0..num_queues.saturating_sub(1))
            .map(|q| base * factor.powi(q as i32))
            .collect();
        Self { thresholds }
    }

    /// Builds a ladder from explicit ascending thresholds; queues =
    /// `thresholds.len() + 1`.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are not strictly ascending and positive.
    pub fn from_thresholds(thresholds: Vec<f64>) -> Self {
        for w in thresholds.windows(2) {
            assert!(w[0] < w[1], "thresholds must be strictly ascending");
        }
        if let Some(&first) = thresholds.first() {
            assert!(first > 0.0, "thresholds must be positive");
        }
        Self { thresholds }
    }

    /// Number of priority queues this ladder distinguishes.
    pub fn num_queues(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// The queue for a blocking-effect (or accumulated-bytes) value:
    /// the first queue whose threshold the value does not exceed.
    pub fn queue_for(&self, value: f64) -> usize {
        self.thresholds
            .iter()
            .position(|&t| value <= t)
            .unwrap_or(self.thresholds.len())
    }

    /// The raw thresholds (θ_0 … θ_{K−2}).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_spacing() {
        let t = ThresholdLadder::exponential(4, 10.0, 10.0);
        assert_eq!(t.thresholds(), &[10.0, 100.0, 1000.0]);
        assert_eq!(t.num_queues(), 4);
    }

    #[test]
    fn queue_mapping_is_monotone() {
        let t = ThresholdLadder::exponential(8, 1.0, 2.0);
        let mut last = 0;
        for i in 0..20 {
            let q = t.queue_for(1.5f64.powi(i));
            assert!(q >= last, "demotion only as value grows");
            last = q;
        }
        assert_eq!(t.queue_for(f64::INFINITY), 7);
    }

    #[test]
    fn boundaries_are_inclusive_below() {
        let t = ThresholdLadder::exponential(3, 10.0, 10.0);
        assert_eq!(t.queue_for(10.0), 0);
        assert_eq!(t.queue_for(10.0 + 1e-9), 1);
        assert_eq!(t.queue_for(100.0), 1);
        assert_eq!(t.queue_for(100.1), 2);
    }

    #[test]
    fn single_queue_ladder() {
        let t = ThresholdLadder::exponential(1, 5.0, 2.0);
        assert_eq!(t.num_queues(), 1);
        assert_eq!(t.queue_for(1e18), 0);
    }

    #[test]
    fn explicit_thresholds() {
        let t = ThresholdLadder::from_thresholds(vec![1.0, 5.0, 7.0]);
        assert_eq!(t.num_queues(), 4);
        assert_eq!(t.queue_for(6.0), 2);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unordered_thresholds() {
        let _ = ThresholdLadder::from_thresholds(vec![5.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_non_expanding_factor() {
        let _ = ThresholdLadder::exponential(4, 1.0, 1.0);
    }
}
