//! The simulation event loop.
//!
//! [`Simulation::run`] drives a set of [`JobSpec`]s through the fabric
//! under a pluggable [`Scheduler`]:
//!
//! 1. when a job arrives, its DAG's leaf coflows activate and their flows
//!    open;
//! 2. flows progress fluidly at rates computed by
//!    [`crate::bandwidth::allocate`] under the scheduler's queue
//!    assignment and service policy;
//! 3. when all flows of a coflow finish, the coflow completes; parents
//!    whose children have all completed activate immediately (so
//!    parallel chains advance independently, as the paper requires);
//! 4. the job completes when all its root coflows do.
//!
//! The scheduler is consulted after every event batch and at a periodic
//! δ tick (the paper's receiver→head-receiver update interval). Priority
//! changes respect the paper's TCP-reordering rule unless the scheduler
//! opts out: live flows may be demoted immediately, promotions apply
//! only to flows that start later.

use crate::bandwidth::{Allocator, Demands, Discipline};
use crate::calendar::CalendarQueue;
use crate::control::{Centralized, ControlInput, ControlPlane, LocalObservation};
use crate::faults::{
    resalt_live_path, ControlFaultEvent, ControlFaults, FaultOverlay, FaultSchedule, TimedFault,
};
use crate::pool::{effective_threads, WorkerPool};
use crate::sched::{CoflowObs, FlowObs, JobObs, Observation, Oracle, QueuePolicy, Scheduler};
use crate::stats::{CoflowResult, FaultRecord, JobResult, RunResult};
use crate::telemetry::{EpochSample, Probe, TelemetryConfig, TelemetrySink, TraceRecord};
use crate::topology::{Fabric, LinkId, PathArena, PathRef};
use crate::SimError;
use gurita_model::{CoflowId, FlowId, HostId, JobId, JobSpec};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex};

/// Simulation tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Scheduler update interval δ in seconds (the paper's periodic
    /// receiver→HR update). Default: 5 ms.
    pub tick_interval: f64,
    /// Safety bound on processed events; the run aborts with
    /// [`SimError::EventBudgetExhausted`] beyond it. Default: 100 million.
    pub max_events: u64,
    /// A flow completes when its remaining volume drops to or below this
    /// many bytes. Default: 0.1 bytes — far below a packet, so completion
    /// times are exact to sub-microsecond at any realistic rate, while
    /// avoiding the floating-point stall of a vanishing residue.
    pub completion_eps: f64,
    /// Collect per-link byte counters into
    /// [`RunResult::link_bytes`]. Off by default (it adds `O(path)`
    /// work per flow per event).
    pub collect_link_stats: bool,
    /// Disable component-incremental rate recomputation and re-waterfill
    /// every flow after every event, as the pre-incremental engine did.
    /// Off by default; useful as a safety valve and as the reference
    /// behavior for equivalence tests. Full passes use the *same
    /// canonical per-component semantics* as incremental ones: every
    /// unparked flow is grouped into its connected flow↔link component
    /// and each component is waterfilled independently, so the freeze
    /// order inside a component never depends on how the pass was
    /// triggered. (Before PR 9 a full pass was one merged waterfill,
    /// whose `EPS`-slack stale-candidate recheck could couple freeze
    /// order across independent components at exact floating-point ties
    /// — incremental agreed with it only to ~1e-9 relative. The merged
    /// path is gone; both modes now produce identical rates.)
    pub force_full_recompute: bool,
    /// Worker threads for intra-run parallel work: the disjoint
    /// flow↔link components of one recompute epoch — incremental *or*
    /// full-pass — are waterfilled concurrently on a scoped worker
    /// pool, each with its own [`Allocator`] scratch, and merged in
    /// component-index order; large epochs additionally overlap the
    /// component-discovery BFS with allocation (the caller discovers
    /// component `i+1` while workers waterfill component `i`), and the
    /// per-event flow-advance sweep fans over fixed index-ordered
    /// chunks of the flow table. `1` (the default) runs everything on
    /// the calling thread; `0` resolves to one worker per available
    /// core (see [`crate::pool::effective_threads`]).
    ///
    /// Results are **bit-for-bit identical** at every thread count:
    /// every epoch waterfills per component (components are disjoint by
    /// construction, so each call sees exactly the same demand
    /// subsequence, link capacities, and discipline regardless of where
    /// or when it runs), streamed discovery assembles results in
    /// discovery-index order, and the fanned advance updates each flow
    /// independently with link-byte accounting merged in chunk order.
    /// Parallelism only changes wall-clock time — pinned by the
    /// serial-vs-parallel equality property tests, including forced
    /// full passes.
    pub threads: usize,
    /// Decision-propagation latency of a decentralized control plane, in
    /// seconds: a fresh priority table computed from merged per-host
    /// reports reaches the sender hosts this much later (as a timed
    /// `ControlUpdate` event), so hosts act on a *stale* view in the
    /// interim. `0` (the default) delivers instantaneously with no event
    /// traffic — result-identical to the centralized adapter for ported
    /// schemes. Ignored by [`crate::control::Centralized`].
    pub control_latency: f64,
    /// Use the classic `BinaryHeap` event queue instead of the bucketed
    /// calendar queue. Off by default; the calendar queue pops events in
    /// the exact `(time, seq)` order the heap does, so results are
    /// bit-for-bit identical either way — this knob exists as a safety
    /// valve and as the reference behavior for the equivalence property
    /// tests, mirroring [`SimConfig::force_full_recompute`].
    pub force_binary_heap_events: bool,
    /// Arms the telemetry layer (see [`crate::telemetry`]): lifecycle
    /// event tracing and epoch-sampled time series, delivered to the
    /// sink passed to a `*_traced` entry point such as
    /// [`Simulation::run_traced`]. `None` (the default) disables all
    /// instrumentation — runs pay one branch per probe site and nothing
    /// else. Telemetry never perturbs scheduling: results are bit-for-
    /// bit identical with it on or off.
    pub telemetry: Option<TelemetryConfig>,
    /// Control-plane fault profile (see
    /// [`crate::faults::ControlFaults`]): lossy coordinator↔host
    /// channels, scheduled agent crashes, and coordinator partition
    /// windows, driven deterministically through the event loop. `None`
    /// (the default) or a null profile leaves the control plane on its
    /// exact legacy path. Ignored by [`crate::control::Centralized`]
    /// (an in-band controller has no separate control channel).
    pub control_faults: Option<ControlFaults>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            tick_interval: 5e-3,
            max_events: 100_000_000,
            completion_eps: 0.1,
            collect_link_stats: false,
            force_full_recompute: false,
            threads: 1,
            control_latency: 0.0,
            force_binary_heap_events: false,
            telemetry: None,
            control_faults: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EventKind {
    JobArrival(JobId),
    Tick,
    Completion {
        generation: u64,
    },
    /// Apply `fault_schedule[index]` to the fabric overlay.
    Fault {
        index: usize,
    },
    /// A delayed priority table reaches the hosts: hand `token` back to
    /// [`ControlPlane::deliver`] (see [`SimConfig::control_latency`]).
    ControlUpdate {
        token: u64,
    },
    /// A control-protocol timer (table delivery, ack receipt, or retry
    /// check under an armed fault profile): hand `token` back to
    /// [`ControlPlane::on_timer`].
    ControlTimer {
        token: u64,
    },
    /// Apply `control_timeline[index]` (agent crash/restart, partition
    /// edge) via [`ControlPlane::control_fault`].
    ControlFault {
        index: usize,
    },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, seq).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-event set: a bucketed [`CalendarQueue`] by default (O(1)
/// amortized), or the classic binary heap when
/// [`SimConfig::force_binary_heap_events`] is set. Both pop in the exact
/// same `(time, seq)` order.
#[derive(Debug)]
enum EventQueue {
    Heap(BinaryHeap<Event>),
    Calendar(CalendarQueue),
}

impl EventQueue {
    fn new(force_heap: bool) -> Self {
        if force_heap {
            EventQueue::Heap(BinaryHeap::new())
        } else {
            EventQueue::Calendar(CalendarQueue::new())
        }
    }

    fn push(&mut self, ev: Event) {
        match self {
            EventQueue::Heap(h) => h.push(ev),
            EventQueue::Calendar(c) => c.push(ev),
        }
    }

    fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Heap(h) => h.pop(),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    fn any(&self, mut f: impl FnMut(&Event) -> bool) -> bool {
        match self {
            EventQueue::Heap(h) => h.iter().any(&mut f),
            EventQueue::Calendar(c) => c.any(f),
        }
    }

    /// Timestamp of the next event without removing it (the calendar may
    /// advance its window cursor, which never changes pop order). Drives
    /// [`Engine::run_until`]'s horizon check.
    fn next_time(&mut self) -> Option<f64> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|e| e.time),
            EventQueue::Calendar(c) => c.next_time(),
        }
    }

    /// Pending events (telemetry epoch samples).
    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len(),
        }
    }
}

/// Cold per-flow state: identity, endpoints, queue assignment, and
/// lifecycle flags — everything the per-event sweeps do *not* touch.
/// The hot fields (rate, remaining, path, coflow id) live in the
/// index-aligned struct-of-arrays [`FlowHot`] block so the per-event
/// `advance_to` sweep and the completion/BFS scans stay cache-dense;
/// `flows[pos]` and `hot.*[pos]` always describe the same flow.
#[derive(Debug)]
struct FlowState {
    id: FlowId,
    src: HostId,
    dst: HostId,
    size: f64,
    queue: usize,
    fresh: bool,
    /// The flow's path crosses a hard-failed link and no detour exists;
    /// it holds its delivered bytes at zero rate until a recovery.
    parked: bool,
    /// Bumped every time the flow's rate is set; completion-index
    /// entries carry the stamp they were pushed under and go stale when
    /// it moves on.
    stamp: u64,
}

/// Hot per-flow state, struct-of-arrays: the four fields the per-event
/// hot loops read or write for *every* open flow. Splitting them out of
/// [`FlowState`] keeps each sweep's working set at 8 bytes per flow per
/// array instead of dragging the whole ~64-byte record through cache:
///
/// * `advance_to` sweeps `rate` × `remaining` (plus `path` with link
///   stats armed) — now a branch-poor, vectorizable kernel over dense
///   `f64` lanes, and independently fan-able in index chunks;
/// * the completion filter scans `remaining` / `path`;
/// * the dirty-component BFS and the demand views walk `path`;
/// * coflow attribution on completion/park reads `coflow`.
///
/// All four vectors are index-aligned with `Engine::flows` and mutate
/// in lock-step (`push` / `swap_remove`), so a flow-table position
/// indexes every array interchangeably.
#[derive(Debug, Default)]
struct FlowHot {
    rate: Vec<f64>,
    remaining: Vec<f64>,
    /// Interned route; resolve against the engine's [`PathArena`].
    path: Vec<PathRef>,
    coflow: Vec<CoflowId>,
}

impl FlowHot {
    fn push(&mut self, rate: f64, remaining: f64, path: PathRef, coflow: CoflowId) {
        self.rate.push(rate);
        self.remaining.push(remaining);
        self.path.push(path);
        self.coflow.push(coflow);
    }

    /// Removes position `pos` in lock-step with a
    /// `flows.swap_remove(pos)`, returning the removed hot fields.
    fn swap_remove(&mut self, pos: usize) -> (f64, f64, PathRef, CoflowId) {
        (
            self.rate.swap_remove(pos),
            self.remaining.swap_remove(pos),
            self.path.swap_remove(pos),
            self.coflow.swap_remove(pos),
        )
    }
}

/// Lazy completion-index entry: the predicted absolute finish time of a
/// flow at its current rate (`t_set + remaining_at_set / rate`, which is
/// invariant while the rate holds). Min-time first; stale entries
/// (superseded stamp or completed flow) are skipped on pop.
#[derive(Debug)]
struct FinishCand {
    time: f64,
    flow: FlowId,
    stamp: u64,
}

impl PartialEq for FinishCand {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.flow == other.flow && self.stamp == other.stamp
    }
}
impl Eq for FinishCand {}
impl PartialOrd for FinishCand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FinishCand {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, flow id) for deterministic tie order.
        // Finish times are non-negative and never NaN (`now +
        // remaining / rate` with `rate > 0`), so `total_cmp` — a
        // branch-free integer comparison — matches `partial_cmp`'s
        // numeric order exactly.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.flow.index().cmp(&self.flow.index()))
            .then_with(|| other.stamp.cmp(&self.stamp))
    }
}

/// Which rates the next recomputation must refresh. Events accumulate
/// seed links (the links they touched); the recompute pass expands them
/// to the affected flow↔link component(s). Discipline changes force a
/// full pass instead.
#[derive(Debug, Default)]
struct DirtyRates {
    /// Anything to do at all?
    any: bool,
    /// Recompute every flow (discipline/policy change or explicit
    /// request); `links` is irrelevant when set.
    full: bool,
    /// Seed link indices touched since the last recomputation
    /// (unsorted, may contain duplicates — the BFS dedups).
    links: Vec<usize>,
}

impl DirtyRates {
    fn mark_path(&mut self, path: &[LinkId]) {
        self.any = true;
        if !self.full {
            self.links.extend(path.iter().map(|l| l.index()));
        }
    }

    fn mark_link(&mut self, l: LinkId) {
        self.any = true;
        if !self.full {
            self.links.push(l.index());
        }
    }
}

/// Zero-copy [`Demands`] view over a subset of the engine's flow table:
/// demand `i` is flow-table position `subset[i]`. Paths come from the
/// hot SoA block, queues from the cold records; building one costs
/// three borrows, never a `Vec<Demand>` per event.
struct FlowDemandView<'a> {
    flows: &'a [FlowState],
    paths: &'a [PathRef],
    subset: &'a [usize],
    arena: &'a PathArena,
}

impl Demands for FlowDemandView<'_> {
    fn len(&self) -> usize {
        self.subset.len()
    }
    fn path(&self, i: usize) -> &[LinkId] {
        self.arena.get(self.paths[self.subset[i]])
    }
    fn queue(&self, i: usize) -> usize {
        self.flows[self.subset[i]].queue
    }
}

#[derive(Debug, Clone, Copy)]
struct FlowRecord {
    id: FlowId,
    /// Sender host — the host whose agent observes this flow under a
    /// decentralized control plane.
    src: HostId,
    bytes_done: f64,
    open: bool,
}

#[derive(Debug)]
struct CoflowState {
    id: CoflowId,
    job: JobId,
    dag_vertex: usize,
    dag_stage: usize,
    activated_at: f64,
    open_flows: usize,
    queue: usize,
    total_bytes: f64,
    /// All flows of the coflow (open and completed); completed entries
    /// retain their final byte counts for receiver-side observation.
    flows: Vec<FlowRecord>,
    // ---- starvation watch (see `crate::telemetry` module docs) ----
    /// Open flows currently holding a usable rate (`> FLOWING_EPS`).
    /// Purely observational — scheduling never reads it.
    flowing: usize,
    /// Start of the current zero-rate interval, `None` while flowing.
    /// Coflows are born starved (rates arrive with the same event's
    /// recomputation, so the initial interval has zero width unless the
    /// coflow starts parked or outprioritized).
    starved_since: Option<f64>,
    /// Sum of closed zero-rate intervals.
    starved_total: f64,
    /// Longest closed zero-rate interval.
    starved_max: f64,
}

#[derive(Debug)]
struct JobState {
    arrival: f64,
    /// Remaining (uncompleted) children per DAG vertex.
    pending_children: Vec<usize>,
    completed: Vec<bool>,
    completed_coflows: usize,
    /// `max completed stage + 1`, i.e. the count of fully entered stages.
    completed_stages: usize,
    remaining_coflows: usize,
    /// Bytes received by already-completed coflows.
    completed_bytes: f64,
    /// Flows of this job rerouted around failed links.
    fault_reroutes: usize,
    /// Flows of this job parked on failed links.
    fault_parks: usize,
}

/// A flow-level datacenter simulation over a fabric.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Simulation<F: Fabric> {
    fabric: F,
    config: SimConfig,
}

impl<F: Fabric> Simulation<F> {
    /// Creates a simulation over `fabric` with the given configuration.
    pub fn new(fabric: F, config: SimConfig) -> Self {
        Self { fabric, config }
    }

    /// Borrow the underlying fabric.
    pub fn fabric(&self) -> &F {
        &self.fabric
    }

    /// Runs `jobs` to completion under `scheduler` and returns the
    /// completion records.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (see [`SimConfig`]), if a
    /// job references a host outside the fabric, or if the scheduler
    /// returns a malformed assignment. Use [`Simulation::try_run`] for a
    /// fallible variant.
    pub fn run(&mut self, jobs: Vec<JobSpec>, scheduler: &mut dyn Scheduler) -> RunResult {
        self.try_run(jobs, scheduler)
            .expect("simulation failed; see SimError for details")
    }

    /// Fallible variant of [`Simulation::run`].
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownHost`] if a flow endpoint is outside the
    ///   fabric;
    /// * [`SimError::EventBudgetExhausted`] if the run does not finish
    ///   within `config.max_events` events.
    pub fn try_run(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut dyn Scheduler,
    ) -> Result<RunResult, SimError> {
        self.try_run_with_faults(jobs, scheduler, &FaultSchedule::new())
    }

    /// Runs `jobs` under `scheduler` while injecting `faults` at their
    /// scheduled times. See [`crate::faults`] for the fault model:
    /// degradations scale link capacities in place; hard failures
    /// reroute affected flows over fresh ECMP paths (delivered bytes
    /// preserved) or park them until the matching recovery.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; use
    /// [`Simulation::try_run_with_faults`] for the fallible variant.
    pub fn run_with_faults(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut dyn Scheduler,
        faults: &FaultSchedule,
    ) -> RunResult {
        self.try_run_with_faults(jobs, scheduler, faults)
            .expect("simulation failed; see SimError for details")
    }

    /// Fallible variant of [`Simulation::run_with_faults`].
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidFault`] if the schedule references unknown
    ///   links/hosts, uses a factor outside `(0, 1]`, or carries a
    ///   non-finite/negative time;
    /// * [`SimError::StrandedFlows`] if every in-flight flow ends up
    ///   parked on failed links with no recovery, arrival, or further
    ///   fault scheduled;
    /// * plus every error [`Simulation::try_run`] can produce.
    pub fn try_run_with_faults(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut dyn Scheduler,
        faults: &FaultSchedule,
    ) -> Result<RunResult, SimError> {
        // The classic scheduler entry points are sugar for the
        // centralized control plane — bit-for-bit the same decisions.
        let mut plane = Centralized::new(scheduler);
        self.try_run_control_with_faults(jobs, &mut plane, faults)
    }

    /// Runs `jobs` to completion under an explicit [`ControlPlane`] —
    /// the entry point for decentralized schemes (see
    /// [`crate::control::Decentralized`] and
    /// [`SimConfig::control_latency`]). [`Simulation::run`] is
    /// equivalent to running the scheduler wrapped in
    /// [`Centralized`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; use [`Simulation::try_run_control`]
    /// for the fallible variant.
    pub fn run_control(&mut self, jobs: Vec<JobSpec>, plane: &mut dyn ControlPlane) -> RunResult {
        self.try_run_control(jobs, plane)
            .expect("simulation failed; see SimError for details")
    }

    /// Fallible variant of [`Simulation::run_control`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::try_run`].
    pub fn try_run_control(
        &mut self,
        jobs: Vec<JobSpec>,
        plane: &mut dyn ControlPlane,
    ) -> Result<RunResult, SimError> {
        self.try_run_control_with_faults(jobs, plane, &FaultSchedule::new())
    }

    /// [`Simulation::run_control`] with a fault schedule injected.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; use
    /// [`Simulation::try_run_control_with_faults`] for the fallible
    /// variant.
    pub fn run_control_with_faults(
        &mut self,
        jobs: Vec<JobSpec>,
        plane: &mut dyn ControlPlane,
        faults: &FaultSchedule,
    ) -> RunResult {
        self.try_run_control_with_faults(jobs, plane, faults)
            .expect("simulation failed; see SimError for details")
    }

    /// Fallible variant of [`Simulation::run_control_with_faults`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::try_run_with_faults`].
    pub fn try_run_control_with_faults(
        &mut self,
        jobs: Vec<JobSpec>,
        plane: &mut dyn ControlPlane,
        faults: &FaultSchedule,
    ) -> Result<RunResult, SimError> {
        faults.validate(&self.fabric)?;
        if let Some(cf) = &self.config.control_faults {
            cf.validate(self.fabric.num_hosts())?;
        }
        Engine::new(&self.fabric, &self.config, jobs, plane, faults, None).run()
    }

    /// [`Simulation::run`] with telemetry delivered to `sink` — see
    /// [`crate::telemetry`]. Instrumentation is armed only when
    /// [`SimConfig::telemetry`] is `Some`; with it `None` the sink
    /// receives nothing and the run is indistinguishable from
    /// [`Simulation::run`]. Either way the returned result is
    /// bit-for-bit what the untraced entry point produces.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; use [`Simulation::try_run_traced`]
    /// for the fallible variant.
    pub fn run_traced(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn TelemetrySink,
    ) -> RunResult {
        self.try_run_traced(jobs, scheduler, sink)
            .expect("simulation failed; see SimError for details")
    }

    /// Fallible variant of [`Simulation::run_traced`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::try_run`].
    pub fn try_run_traced(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn TelemetrySink,
    ) -> Result<RunResult, SimError> {
        self.try_run_traced_with_faults(jobs, scheduler, &FaultSchedule::new(), sink)
    }

    /// [`Simulation::run_with_faults`] with telemetry delivered to
    /// `sink` (see [`Simulation::run_traced`] for the arming rules).
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::try_run_with_faults`].
    pub fn try_run_traced_with_faults(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut dyn Scheduler,
        faults: &FaultSchedule,
        sink: &mut dyn TelemetrySink,
    ) -> Result<RunResult, SimError> {
        let mut plane = Centralized::new(scheduler);
        self.try_run_control_with_faults_traced(jobs, &mut plane, faults, sink)
    }

    /// [`Simulation::run_control_with_faults`] with telemetry delivered
    /// to `sink` — the fully general traced entry point (see
    /// [`Simulation::run_traced`] for the arming rules).
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::try_run_with_faults`].
    pub fn try_run_control_with_faults_traced(
        &mut self,
        jobs: Vec<JobSpec>,
        plane: &mut dyn ControlPlane,
        faults: &FaultSchedule,
        sink: &mut dyn TelemetrySink,
    ) -> Result<RunResult, SimError> {
        faults.validate(&self.fabric)?;
        if let Some(cf) = &self.config.control_faults {
            cf.validate(self.fabric.num_hosts())?;
        }
        Engine::new(&self.fabric, &self.config, jobs, plane, faults, Some(sink)).run()
    }
}

/// A flow counts toward its coflow's `flowing` tally when its rate
/// exceeds this. Matches the completion index's "will complete" rate
/// threshold so the starvation watch and the event loop agree on what
/// "progress" means. Infinite rates (empty-path flows under a full
/// recompute) count as flowing.
const FLOWING_EPS: f64 = 1e-15;

/// Minimum total flows in a multi-component epoch before the pool is
/// woken (below it, condvar wakeup latency exceeds the waterfill work).
/// Purely a wall-clock heuristic: the serial fallback is the same
/// per-component loop, so the threshold can never change results.
const PAR_MIN_FLOWS: usize = 32;

/// Minimum open flows before the per-event advance sweep fans across
/// the pool. The sweep costs ~1 ns/flow, so below a few thousand flows
/// the condvar wakeup would eat the win. Wall-clock heuristic only:
/// each flow's update is independent, so the serial sweep and any
/// chunking produce bit-identical state.
const PAR_MIN_ADVANCE_FLOWS: usize = 1024;

/// Floor on the fanned advance sweep's chunk width (flows per task), so
/// a pathological `threads ≫ flows` setting cannot shred the sweep into
/// cache-line-sized tasks.
const MIN_ADVANCE_CHUNK: usize = 256;

/// Minimum dirty seed links before an incremental epoch takes the
/// streamed (BFS-overlapped) recompute path; smaller epochs — the
/// common completion/arrival case touching one short path — collect
/// their components first and then decide serial vs fanned as before.
/// Wall-clock heuristic only: the streamed path discovers the same
/// components in the same order and waterfills them with the same pure
/// per-component calls.
const PAR_MIN_SEED_LINKS: usize = 48;

/// Split-borrow scratch for the flow↔link component BFS, shared by the
/// batch collectors ([`Engine::collect_component`],
/// [`Engine::collect_full_components`]) and the streamed producer in
/// [`Engine::recompute_streamed`]. Expanding a link validates its
/// `link_flows` adjacency entries and compacts stale ones in place,
/// exactly as the pre-split inline BFS did.
struct ComponentBfs<'a> {
    flows: &'a [FlowState],
    paths: &'a [PathRef],
    flow_pos: &'a FlowPosMap,
    arena: &'a PathArena,
    link_flows: &'a mut [Vec<FlowId>],
    flow_mark: &'a mut [u64],
    link_mark: &'a mut [u64],
    stack: &'a mut Vec<usize>,
}

impl ComponentBfs<'_> {
    /// Drains the stack, appending every newly reached flow position to
    /// `out` (discovery order; callers sort the finished group).
    fn expand(&mut self, epoch: u64, out: &mut Vec<usize>) {
        while let Some(li) = self.stack.pop() {
            // Take the adjacency list out so we can mutate marks while
            // validating entries; put the compacted list back.
            let mut list = std::mem::take(&mut self.link_flows[li]);
            list.retain(|fid| {
                let Some(pos) = self.flow_pos.get(*fid) else {
                    return false; // completed
                };
                let path = self.arena.get(self.paths[pos]);
                if self.flows[pos].parked || !path.iter().any(|l| l.index() == li) {
                    return false; // parked or rerouted away
                }
                if self.flow_mark[pos] != epoch {
                    self.flow_mark[pos] = epoch;
                    out.push(pos);
                    for l in path {
                        let lj = l.index();
                        if self.link_mark[lj] != epoch {
                            self.link_mark[lj] = epoch;
                            self.stack.push(lj);
                        }
                    }
                }
                true
            });
            self.link_flows[li] = list;
        }
    }
}

/// Union-find `find` with path halving; indices are flow-table
/// positions, roots satisfy `parent[x] == x`. Used by the full-pass
/// component grouping (see [`Engine::collect_full_components`]).
#[inline]
fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let grand = parent[parent[x as usize] as usize];
        parent[x as usize] = grand;
        x = grand;
    }
    x
}

/// One connected component streamed from the BFS producer to the
/// waterfill workers: membership (sorted flow-table positions) plus a
/// recycled output buffer the worker fills with rates.
struct CompJob {
    index: usize,
    positions: Vec<usize>,
    rates: Vec<f64>,
}

/// A waterfilled component on its way back from a worker; `index`
/// restores discovery order so assembly is schedule-independent.
struct CompResult {
    index: usize,
    positions: Vec<usize>,
    rates: Vec<f64>,
    touched: usize,
    passes: u64,
}

/// Closes the streamed-component queue when the producer returns *or
/// unwinds*: workers blocked in `Condvar::wait` must always observe
/// `done`, or `WorkerPool::run_with` would never drain the batch.
struct CloseOnDrop<'a> {
    queue: &'a Mutex<(VecDeque<CompJob>, bool)>,
    ready: &'a Condvar,
}

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        // Recover from poisoning: this guard may run while unwinding.
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).1 = true;
        self.ready.notify_all();
    }
}

/// Dense flow-id → flow-table position map. Flow ids are handed out
/// densely by `Engine::next_flow_id`, so indexed slots beat a hash map
/// on the hot lookups (completion validation, dirty-component walks,
/// finish-heap compaction); `NONE` marks finished or unindexed ids.
#[derive(Debug, Default)]
struct FlowPosMap {
    slots: Vec<u32>,
}

impl FlowPosMap {
    const NONE: u32 = u32::MAX;

    fn get(&self, fid: FlowId) -> Option<usize> {
        match self.slots.get(fid.index()) {
            Some(&p) if p != Self::NONE => Some(p as usize),
            _ => None,
        }
    }

    fn insert(&mut self, fid: FlowId, pos: usize) {
        let i = fid.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, Self::NONE);
        }
        self.slots[i] = u32::try_from(pos).expect("flow table fits u32 positions");
    }

    fn remove(&mut self, fid: FlowId) -> Option<usize> {
        match self.slots.get_mut(fid.index()) {
            Some(p) if *p != Self::NONE => {
                let old = *p as usize;
                *p = Self::NONE;
                Some(old)
            }
            _ => None,
        }
    }
}

/// What a stepping call observed about the engine's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed (or a bounded run stopped with events
    /// still pending); the simulation can keep stepping.
    Advanced,
    /// Every submitted job has completed and no flow is in flight. An
    /// online engine stays usable: submitting another job un-drains it.
    Drained,
    /// Nothing to do: the event queue is empty (or, for
    /// [`Engine::run_until`], holds only events past the horizon) while
    /// jobs are still outstanding — the engine is waiting for
    /// submissions or for the horizon to move.
    Idle,
}

/// Live progress of a running job (see [`Engine::job_phase`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProgress {
    /// Coflows completed so far.
    pub completed_coflows: usize,
    /// Total coflows in the job's DAG.
    pub total_coflows: usize,
    /// Bytes of completed coflows.
    pub completed_bytes: f64,
    /// Total bytes across the whole job.
    pub total_bytes: f64,
}

/// Lifecycle phase of a job id inside a (possibly still running)
/// engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobPhase {
    /// Never submitted to this engine.
    NotSubmitted,
    /// Submitted; arrival event not yet processed.
    Pending,
    /// Activated and moving bytes.
    Running {
        /// Coflow/byte progress at the current virtual time.
        progress: JobProgress,
    },
    /// All coflows completed.
    Completed {
        /// Virtual time of completion.
        at: f64,
    },
    /// Cancelled via [`Engine::cancel_job`].
    Cancelled,
}

/// The live simulation core: a steppable discrete-event engine.
///
/// The offline entry points ([`Simulation::run`] and friends) construct
/// one internally, seed it with the whole workload, and drive it to
/// completion. Service mode constructs one with [`Engine::online`] and
/// drives it incrementally: [`Engine::submit_job`] admits work
/// mid-simulation through the same dirty-link incremental recompute an
/// arrival event uses, [`Engine::step`] / [`Engine::run_until`] /
/// [`Engine::run_for`] advance the clock, and [`Engine::finish`]
/// produces the [`RunResult`].
///
/// **Admission invariant** (property-tested): submitting the entire
/// workload via [`Engine::submit_job`] before the first step and then
/// running to drain yields a `RunResult` bit-for-bit identical to the
/// offline run of the same workload — event seq numbers, f64
/// accumulation order, everything.
pub struct Engine<'a, F: Fabric> {
    fabric: &'a F,
    config: &'a SimConfig,
    plane: &'a mut dyn ControlPlane,
    specs: HashMap<JobId, JobSpec>,

    queue: EventQueue,
    seq: u64,
    now: f64,
    events: u64,

    /// Fault / control-timeline events are pushed lazily on the first
    /// step so that pre-start [`Engine::submit_job`] calls receive the
    /// same seq numbers the offline constructor would assign.
    started: bool,
    /// Online engines skip the stranded-flow fail-fast (new submissions
    /// can arrive over the socket at any time, so "no arrival or
    /// recovery scheduled" does not imply a livelock) and accept
    /// submissions after a transient drain.
    online: bool,
    /// Jobs cancelled via [`Engine::cancel_job`]; pending arrival events
    /// for these ids are skipped.
    cancelled: HashSet<JobId>,
    /// Completion times of finished jobs (status queries + duplicate-id
    /// rejection after the spec is dropped).
    completed_at: HashMap<JobId, f64>,

    /// Shared interned path storage; every `FlowHot::path` entry
    /// resolves here. ECMP on a fat-tree yields few distinct routes, so
    /// the arena stays small while flows come and go.
    arena: PathArena,

    flows: Vec<FlowState>,
    /// Hot per-flow fields, index-aligned with `flows` (see [`FlowHot`]).
    hot: FlowHot,
    flow_pos: FlowPosMap,
    next_flow_id: usize,
    next_coflow_id: usize,

    coflows: HashMap<CoflowId, CoflowState>,
    active_coflows: Vec<CoflowId>,
    jobs_state: HashMap<JobId, JobState>,

    completion_generation: u64,
    dirty: DirtyRates,
    tick_pending: bool,
    /// Dense per-link byte counters (indexed by link id), populated only
    /// when [`SimConfig::collect_link_stats`] is set — one fabric-sized
    /// array beats the old `HashMap<usize, f64>`'s per-flow-per-link
    /// `entry()` probe in the advance sweep by an order of magnitude.
    /// Empty (never allocated) with stats off.
    link_bytes: Vec<f64>,

    fault_schedule: Vec<TimedFault>,
    overlay: FaultOverlay,
    /// Expanded control-fault timeline (crashes/partitions), indexed by
    /// `EventKind::ControlFault` events. Empty unless armed.
    control_timeline: Vec<(f64, ControlFaultEvent)>,

    // ---- hot-path scratch (reused across events; see DESIGN.md) ----
    /// Dense-array water-filling allocator, sized to the fabric.
    allocator: Allocator,
    /// Discipline used by the previous recomputation; a change forces a
    /// full recompute (relative queue weights shift globally).
    last_discipline: Option<Discipline>,
    /// link index → flows whose path crosses it. Entries are tombstoned
    /// lazily: a listed flow may have completed, parked, or rerouted
    /// away; readers validate against `flow_pos`/`path` and compact.
    link_flows: Vec<Vec<FlowId>>,
    /// Epoch stamps for BFS visited-sets (avoid O(L)/O(F) clears).
    link_mark: Vec<u64>,
    flow_mark: Vec<u64>,
    mark_epoch: u64,
    /// BFS worklist of link indices (scratch).
    bfs_stack: Vec<usize>,
    /// Full-pass union-find scratch: per-flow-position parent pointers
    /// (see [`Engine::collect_full_components`]).
    uf_parent: Vec<u32>,
    /// Full-pass scratch: link index → representative flow position of
    /// the flows seen crossing it this epoch (valid iff `link_mark`
    /// carries the current epoch).
    link_owner: Vec<u32>,
    /// Full-pass scratch: component sizes accumulated at union-find
    /// roots, converted in place into the scatter cursors.
    uf_counts: Vec<u32>,
    /// Full-pass scratch: unparked flow positions in ascending order,
    /// collected during the union sweep so the numbering and scatter
    /// sweeps skip parked entries without touching cold flow state.
    uf_live: Vec<u32>,
    /// Topology generation: bumped whenever the component structure's
    /// inputs change — a flow enters or leaves the table (positions
    /// shift on `swap_remove`), parks or resumes, or reroutes to a new
    /// path. Discipline changes and capacity overlays do NOT bump it:
    /// they change rates, never which flows share links.
    topo_gen: u64,
    /// `topo_gen` the cached full partition below was computed at;
    /// `u64::MAX` = no cached partition.
    full_gen: u64,
    /// Cached full-pass partition members (see
    /// [`Engine::collect_full_components`]): flagship Gurita shifts WRR
    /// weights with queue loads, so back-to-back discipline-change full
    /// passes over an unchanged topology are the common case and reuse
    /// this instead of re-running the union-find sweeps.
    full_comp: Vec<usize>,
    /// Cached full-pass partition bounds (pairs with `full_comp`).
    full_bounds: Vec<usize>,
    /// Flow positions under recomputation, grouped by connected
    /// component: component `c` is `component[comp_bounds[c] ..
    /// comp_bounds[c + 1]]`, each group sorted ascending (scratch).
    component: Vec<usize>,
    /// Component group boundaries into `component`; `comp_bounds[0] ==
    /// 0` always, one extra entry per non-empty component (scratch).
    comp_bounds: Vec<usize>,
    /// Rate output buffer for the allocator (scratch).
    rate_buf: Vec<f64>,
    /// Recycled per-component flow-position buffers for the streamed
    /// (BFS-overlapped) recompute path (scratch; see
    /// [`Engine::recompute_streamed`]).
    comp_pos_bufs: Vec<Vec<usize>>,
    /// Recycled per-component rate buffers for the streamed path
    /// (scratch).
    comp_rate_bufs: Vec<Vec<f64>>,
    /// Recycled per-chunk sparse `(link, bytes)` accumulators for the
    /// fanned stats-on advance sweep (scratch).
    advance_stat_bufs: Vec<Vec<(u32, f64)>>,
    /// Effective intra-run worker count (see [`SimConfig::threads`]).
    threads: usize,
    /// Parked worker threads for parallel recomputation; `None` when
    /// `threads == 1`.
    pool: Option<WorkerPool>,
    /// One waterfill scratch [`Allocator`] per pool worker slot, built
    /// lazily on the first parallel dispatch (each is fabric-sized).
    /// Each mutex is only ever locked by the worker owning the slot, so
    /// it is uncontended by construction.
    worker_alloc: Vec<Mutex<Allocator>>,
    /// Links touched / waterfill passes summed over the most recent
    /// recompute epoch's allocator calls, in component-index order —
    /// the telemetry view stays coherent whether the epoch ran
    /// per-component serial, batch-parallel, or streamed.
    last_alloc_touched: usize,
    last_alloc_passes: u64,
    /// Lazy completion index: predicted finish times keyed by rate stamp.
    finish_heap: BinaryHeap<FinishCand>,
    /// Global counter backing `FlowState::stamp`.
    rate_stamp: u64,

    result: RunResult,
    remaining_jobs: usize,

    /// Telemetry probe; armed only when [`SimConfig::telemetry`] is set
    /// *and* a sink was handed to a `*_traced` entry point. Disarmed it
    /// costs one branch per probe site.
    probe: Probe<'a>,
}

impl<'a, F: Fabric> Engine<'a, F> {
    fn new(
        fabric: &'a F,
        config: &'a SimConfig,
        jobs: Vec<JobSpec>,
        plane: &'a mut dyn ControlPlane,
        faults: &FaultSchedule,
        sink: Option<&'a mut dyn TelemetrySink>,
    ) -> Self {
        let mut queue = EventQueue::new(config.force_binary_heap_events);
        let mut seq = 0u64;
        let remaining_jobs = jobs.len();
        let mut specs = HashMap::with_capacity(jobs.len());
        for job in jobs {
            queue.push(Event {
                time: job.arrival(),
                seq,
                kind: EventKind::JobArrival(job.id()),
            });
            seq += 1;
            specs.insert(job.id(), job);
        }
        let fault_schedule = faults.events().to_vec();
        let mut control_timeline = Vec::new();
        if let Some(cf) = &config.control_faults {
            // Arm even a null profile (the plane ignores it) so the
            // plumbing is uniform; only non-null profiles change
            // behavior or schedule events.
            plane.arm_control_faults(cf);
            if !cf.is_null() {
                control_timeline = cf.timeline();
            }
        }
        // Fault / control-timeline events are pushed by `ensure_started`
        // on the first step, after any pre-start online submissions, so
        // both admission paths assign identical event seq numbers.
        let scheduler_name = plane.name();
        let sample_interval = config.telemetry.as_ref().map_or(config.tick_interval, |t| {
            if t.sample_interval > 0.0 {
                t.sample_interval
            } else {
                config.tick_interval
            }
        });
        let probe = Probe::new(
            if config.telemetry.is_some() {
                sink
            } else {
                None
            },
            sample_interval,
        );
        let threads = effective_threads(config.threads);
        Self {
            fabric,
            config,
            plane,
            specs,
            queue,
            seq,
            now: 0.0,
            events: 0,
            started: false,
            online: false,
            cancelled: HashSet::new(),
            completed_at: HashMap::new(),
            arena: PathArena::new(),
            flows: Vec::new(),
            hot: FlowHot::default(),
            flow_pos: FlowPosMap::default(),
            next_flow_id: 0,
            next_coflow_id: 0,
            coflows: HashMap::new(),
            active_coflows: Vec::new(),
            jobs_state: HashMap::new(),
            completion_generation: 0,
            dirty: DirtyRates::default(),
            tick_pending: false,
            link_bytes: if config.collect_link_stats {
                vec![0.0; fabric.num_links()]
            } else {
                Vec::new()
            },
            fault_schedule,
            overlay: FaultOverlay::new(),
            control_timeline,
            allocator: Allocator::new(fabric.num_links()),
            last_discipline: None,
            link_flows: vec![Vec::new(); fabric.num_links()],
            link_mark: vec![0; fabric.num_links()],
            flow_mark: Vec::new(),
            mark_epoch: 0,
            bfs_stack: Vec::new(),
            uf_parent: Vec::new(),
            link_owner: vec![0; fabric.num_links()],
            uf_counts: Vec::new(),
            uf_live: Vec::new(),
            topo_gen: 0,
            full_gen: u64::MAX,
            full_comp: Vec::new(),
            full_bounds: Vec::new(),
            component: Vec::new(),
            comp_bounds: Vec::new(),
            rate_buf: Vec::new(),
            comp_pos_bufs: Vec::new(),
            comp_rate_bufs: Vec::new(),
            advance_stat_bufs: Vec::new(),
            threads,
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
            worker_alloc: Vec::new(),
            last_alloc_touched: 0,
            last_alloc_passes: 0,
            finish_heap: BinaryHeap::new(),
            rate_stamp: 0,
            result: RunResult {
                scheduler: scheduler_name,
                ..RunResult::default()
            },
            remaining_jobs,
            probe,
        }
    }

    /// Creates an empty online engine over `fabric`: no jobs are
    /// seeded; admit work with [`Engine::submit_job`] and advance with
    /// [`Engine::step`] / [`Engine::run_until`] / [`Engine::run_for`].
    /// `faults` may carry a link/host fault schedule to inject (pass
    /// `&FaultSchedule::new()` for none); control-plane faults arm from
    /// `config.control_faults` exactly like the offline path.
    ///
    /// Online engines skip the stranded-flow fail-fast: with a live
    /// submission socket, "no arrival scheduled" does not imply the run
    /// can never drain.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] if `faults` or
    /// `config.control_faults` fail validation against the fabric.
    pub fn online(
        fabric: &'a F,
        config: &'a SimConfig,
        plane: &'a mut dyn ControlPlane,
        faults: &FaultSchedule,
    ) -> Result<Self, SimError> {
        faults.validate(fabric)?;
        if let Some(cf) = &config.control_faults {
            cf.validate(fabric.num_hosts())?;
        }
        let mut engine = Self::new(fabric, config, Vec::new(), plane, faults, None);
        engine.online = true;
        Ok(engine)
    }

    /// [`Engine::online`] with telemetry delivered to `sink` (armed only
    /// when `config.telemetry` is set, mirroring the `*_traced` offline
    /// entry points).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::online`].
    pub fn online_traced(
        fabric: &'a F,
        config: &'a SimConfig,
        plane: &'a mut dyn ControlPlane,
        faults: &FaultSchedule,
        sink: &'a mut dyn TelemetrySink,
    ) -> Result<Self, SimError> {
        faults.validate(fabric)?;
        if let Some(cf) = &config.control_faults {
            cf.validate(fabric.num_hosts())?;
        }
        let mut engine = Self::new(fabric, config, Vec::new(), plane, faults, Some(sink));
        engine.online = true;
        Ok(engine)
    }

    fn run(mut self) -> Result<RunResult, SimError> {
        let outcome = self.run_to_drained();
        // Flush even when the run errors out: the partial trace up to
        // the failure is exactly what one wants for debugging it.
        self.probe.flush();
        outcome?;
        Ok(self.into_result())
    }

    /// Finalizes the engine into its [`RunResult`]: flushes any armed
    /// telemetry sink and stamps makespan, event count, the control
    /// plane's resilience ledger, and the path-arena diagnostics. The
    /// service-mode counterpart of the offline epilogue — call after
    /// [`Engine::run_to_drained`] (or at daemon shutdown, for a partial
    /// result covering everything completed so far).
    pub fn finish(mut self) -> RunResult {
        self.probe.flush();
        self.into_result()
    }

    fn into_result(mut self) -> RunResult {
        self.result.makespan = self.now;
        self.result.events = self.events;
        if let Some(res) = self.plane.resilience(self.now) {
            self.result.control = res;
        }
        self.result.path_arena_unique = self.arena.unique_paths();
        self.result.path_arena_interns = self.arena.interns();
        self.result.path_arena_hit_rate = self.arena.hit_rate();
        self.result.path_arena_storage_bytes = self.arena.storage_bytes();
        if self.config.collect_link_stats {
            // Dense counters → sparse report: links that never moved a
            // byte are omitted (as the old hash-map accumulator omitted
            // links never touched). The stable sort on an index-ordered
            // input makes equal-byte ties deterministic, index-ascending.
            let mut v: Vec<(usize, f64)> = self
                .link_bytes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b != 0.0)
                .map(|(l, &b)| (l, b))
                .collect();
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("byte counts are finite"));
            self.result.link_bytes = v;
        }
        self.result
    }

    /// Pushes the deferred fault / control-timeline events on the first
    /// step. Deferral (rather than pushing in the constructor) is what
    /// makes the admission invariant hold: pre-start `submit_job` calls
    /// consume seq numbers first, exactly like the offline constructor's
    /// arrival loop, and the fault/control events follow.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for index in 0..self.fault_schedule.len() {
            self.queue.push(Event {
                time: self.fault_schedule[index].at,
                seq: self.seq,
                kind: EventKind::Fault { index },
            });
            self.seq += 1;
        }
        for index in 0..self.control_timeline.len() {
            self.queue.push(Event {
                time: self.control_timeline[index].0,
                seq: self.seq,
                kind: EventKind::ControlFault { index },
            });
            self.seq += 1;
        }
    }

    /// Runs the engine until every submitted job has completed (or the
    /// queue runs dry). Identical event ordering to the historical
    /// monolithic run loop; the offline entry points call this.
    pub fn run_to_drained(&mut self) -> Result<StepOutcome, SimError> {
        self.ensure_started();
        loop {
            match self.step_inner()? {
                StepOutcome::Advanced => {}
                done => return Ok(done),
            }
        }
    }

    /// Processes every pending event with timestamp `<= horizon`, then
    /// stops. The virtual clock ([`Engine::now`]) lands on the last
    /// processed event — it is never advanced past an event-free gap, so
    /// interleaving `run_until` calls with [`Engine::submit_job`] yields
    /// the same fluid-flow arithmetic (bit-for-bit) as one uninterrupted
    /// run. Drives the daemon's virtual-time pacing.
    pub fn run_until(&mut self, horizon: f64) -> Result<StepOutcome, SimError> {
        self.ensure_started();
        loop {
            match self.queue.next_time() {
                Some(t) if t <= horizon => {
                    // Keep draining even past a transient drain: stale
                    // ticks/completions inside the horizon are popped so
                    // the queue stays clean between submissions.
                    self.step_inner()?;
                }
                _ => {
                    return Ok(if self.drained() {
                        StepOutcome::Drained
                    } else {
                        StepOutcome::Idle
                    });
                }
            }
        }
    }

    /// Processes at most `max_steps` events — the daemon's
    /// as-fast-as-possible slice, bounded so command handling stays
    /// responsive. Returns [`StepOutcome::Advanced`] when the budget was
    /// exhausted with events still pending.
    pub fn run_for(&mut self, max_steps: u64) -> Result<StepOutcome, SimError> {
        self.ensure_started();
        for _ in 0..max_steps {
            match self.step_inner()? {
                StepOutcome::Advanced => {}
                done => return Ok(done),
            }
        }
        Ok(StepOutcome::Advanced)
    }

    /// Processes exactly one pending event (arrival, tick, completion,
    /// fault, or control message) and everything that cascades from it:
    /// completion harvesting, the scheduler decision point, and the
    /// incremental rate recompute.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        self.ensure_started();
        self.step_inner()
    }

    fn step_inner(&mut self) -> Result<StepOutcome, SimError> {
        let Some(ev) = self.queue.pop() else {
            return Ok(if self.drained() {
                StepOutcome::Drained
            } else {
                StepOutcome::Idle
            });
        };
        self.events += 1;
        if self.events > self.config.max_events {
            return Err(SimError::EventBudgetExhausted {
                max_events: self.config.max_events,
            });
        }
        debug_assert!(ev.time + 1e-12 >= self.now, "time must not run backwards");
        self.advance_to(ev.time);
        match ev.kind {
            EventKind::JobArrival(id) => {
                if self.cancelled.contains(&id) {
                    // Cancelled before arrival; the spec is gone and
                    // `remaining_jobs` was adjusted at cancel time.
                    return Ok(StepOutcome::Advanced);
                }
                self.activate_job(id)?;
            }
            EventKind::Tick => {
                self.tick_pending = false;
            }
            EventKind::Completion { generation } => {
                if generation != self.completion_generation {
                    // Stale prediction superseded by a rate change;
                    // skip the decision point like the historical
                    // loop's `continue`.
                    return Ok(StepOutcome::Advanced);
                }
            }
            EventKind::Fault { index } => self.apply_fault(index)?,
            EventKind::ControlUpdate { token } => {
                // The scheduled table becomes the hosts' current
                // view; the uniform decision point below applies it.
                let _ = self.plane.deliver(token);
                if self.probe.on() {
                    if let Some(issued) = self.probe.control_issued.remove(&token) {
                        self.probe.emit(&TraceRecord::ControlDelivered {
                            t: self.now,
                            token,
                            staleness: self.now - issued,
                        });
                    }
                }
            }
            EventKind::ControlTimer { token } => {
                // A protocol step (delivery/ack/retry) under an
                // armed fault profile; any applied table reaches
                // the flows at the decision point below.
                let fx = self.plane.on_timer(token, self.now);
                self.push_control_timers(&fx.timers);
                if self.probe.on() {
                    for rec in &fx.trace {
                        self.probe.emit(rec);
                    }
                }
            }
            EventKind::ControlFault { index } => {
                let event = self.control_timeline[index].1;
                let trace = self.plane.control_fault(&event, self.now);
                if self.probe.on() {
                    for rec in &trace {
                        self.probe.emit(rec);
                    }
                }
            }
        }
        self.harvest_completions()?;
        self.reassign_priorities();
        if self.dirty.any {
            self.recompute_rates();
        }
        self.schedule_followups();
        if self.probe.on() {
            self.maybe_sample();
        }
        if self.drained() {
            return Ok(StepOutcome::Drained);
        }
        if !self.online {
            self.check_stranded()?;
        }
        Ok(StepOutcome::Advanced)
    }

    /// Admits a job into the running simulation. The job's arrival event
    /// is scheduled at `max(spec.arrival, now)` (a spec dated in the
    /// past is re-stamped to the current virtual time, so its JCT
    /// measures from admission); activation then flows through the exact
    /// same dirty-link incremental recompute a constructor-seeded
    /// arrival uses — admission cost is proportional to the touched
    /// network component, not the cluster.
    ///
    /// # Errors
    ///
    /// * [`SimError::DuplicateJob`] if the id was ever submitted before
    ///   (pending, running, completed, or cancelled);
    /// * [`SimError::UnknownHost`] if a flow endpoint is outside the
    ///   fabric. Validation happens up front: a rejected job leaves the
    ///   engine untouched.
    pub fn submit_job(&mut self, spec: JobSpec) -> Result<JobId, SimError> {
        let id = spec.id();
        if self.specs.contains_key(&id)
            || self.completed_at.contains_key(&id)
            || self.cancelled.contains(&id)
        {
            return Err(SimError::DuplicateJob { job: id.index() });
        }
        let num_hosts = self.fabric.num_hosts();
        for cf in spec.coflows() {
            for fl in cf.flows() {
                for host in [fl.src, fl.dst] {
                    if host.index() >= num_hosts {
                        return Err(SimError::UnknownHost {
                            host: host.index(),
                            num_hosts,
                        });
                    }
                }
            }
        }
        let spec = if spec.arrival() < self.now {
            spec.with_arrival(self.now)
        } else {
            spec
        };
        self.queue.push(Event {
            time: spec.arrival(),
            seq: self.seq,
            kind: EventKind::JobArrival(id),
        });
        self.seq += 1;
        self.specs.insert(id, spec);
        self.remaining_jobs += 1;
        Ok(id)
    }

    /// Cancels a job: a pending job simply never activates; a running
    /// job's open flows are torn down (freed capacity redistributes via
    /// the incremental recompute) and its partial coflow statistics are
    /// discarded. Returns `false` if the id is unknown, already
    /// completed, or already cancelled.
    pub fn cancel_job(&mut self, id: JobId) -> bool {
        if self.jobs_state.contains_key(&id) {
            let cids: Vec<CoflowId> = self
                .active_coflows
                .iter()
                .copied()
                .filter(|c| self.coflows[c].job == id)
                .collect();
            for cid in cids {
                let state = self.coflows.remove(&cid).expect("active coflow");
                self.active_coflows.retain(|&c| c != cid);
                for rec in &state.flows {
                    if !rec.open {
                        continue;
                    }
                    let Some(pos) = self.flow_pos.remove(rec.id) else {
                        continue;
                    };
                    self.flows.swap_remove(pos);
                    let (_, _, path, _) = self.hot.swap_remove(pos);
                    self.topo_gen += 1;
                    if let Some(moved) = self.flows.get(pos) {
                        self.flow_pos.insert(moved.id, pos);
                    }
                    // Freed capacity redistributes; stale finish-heap
                    // and link-index entries tombstone via `flow_pos`.
                    self.dirty.mark_path(self.arena.get(path));
                }
            }
            self.jobs_state.remove(&id);
            self.specs.remove(&id);
            self.cancelled.insert(id);
            self.remaining_jobs -= 1;
            self.result.jobs_cancelled += 1;
            self.dirty.any = true;
            true
        } else if self.specs.remove(&id).is_some() {
            // Not yet arrived: the queued arrival event is skipped when
            // it fires.
            self.cancelled.insert(id);
            self.remaining_jobs -= 1;
            self.result.jobs_cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Current virtual time: the timestamp of the last processed event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Pending events in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Flows currently in flight.
    pub fn open_flows(&self) -> usize {
        self.flows.len()
    }

    /// Coflows currently active.
    pub fn open_coflows(&self) -> usize {
        self.active_coflows.len()
    }

    /// Jobs submitted but not yet completed or cancelled.
    pub fn outstanding_jobs(&self) -> usize {
        self.remaining_jobs
    }

    /// Whether every submitted job has completed and no flow is in
    /// flight. A drained online engine accepts further submissions.
    pub fn drained(&self) -> bool {
        self.remaining_jobs == 0 && self.flows.is_empty()
    }

    /// Completion records of the jobs finished so far, in completion
    /// order. The daemon polls the tail of this slice to release
    /// dependent jobs.
    pub fn completed_jobs(&self) -> &[JobResult] {
        &self.result.jobs
    }

    /// Lifecycle phase of a job id, with live progress for running jobs.
    pub fn job_phase(&self, id: JobId) -> JobPhase {
        if let Some(&completed_at) = self.completed_at.get(&id) {
            return JobPhase::Completed { at: completed_at };
        }
        if self.cancelled.contains(&id) {
            return JobPhase::Cancelled;
        }
        if let Some(js) = self.jobs_state.get(&id) {
            let total_bytes = self.specs.get(&id).map_or(0.0, |s| s.total_bytes());
            return JobPhase::Running {
                progress: JobProgress {
                    completed_coflows: js.completed_coflows,
                    total_coflows: js.completed_coflows + js.remaining_coflows,
                    completed_bytes: js.completed_bytes,
                    total_bytes,
                },
            };
        }
        if self.specs.contains_key(&id) {
            return JobPhase::Pending;
        }
        JobPhase::NotSubmitted
    }

    /// Delivered bytes of the open flow at table position `pos`.
    fn bytes_done(&self, pos: usize) -> f64 {
        self.flows[pos].size - self.hot.remaining[pos]
    }

    /// Advances every flow's remaining volume to virtual time `t` at its
    /// current rate. The `collect_link_stats` branch is hoisted out of
    /// the per-flow loop into two loop variants, so the (default)
    /// stats-off path runs the dense [`Engine::advance_span`] kernel
    /// with zero per-flow branching on the config; both variants fan
    /// across the worker pool in fixed index-ordered chunks once the
    /// flow table is large enough to pay for a pool wakeup.
    fn advance_to(&mut self, t: f64) {
        let dt = t - self.now;
        if dt > 0.0 && !self.flows.is_empty() {
            if self.config.collect_link_stats {
                self.advance_flows_stats(dt);
            } else {
                self.advance_flows(dt);
            }
        }
        self.now = t.max(self.now);
    }

    /// The flow-advance kernel over a span of the SoA block:
    /// `remaining[i] -= min(rate[i]·dt, remaining[i])` for positive
    /// finite rates. Written as an unconditional store with a selected
    /// operand (rather than a conditional store) over two dense `f64`
    /// lanes, so the loop vectorizes; the select reproduces the
    /// historical AoS guard bit-for-bit (`x - 0.0` is an f64 identity
    /// for every non-NaN `x`, including `-0.0`).
    fn advance_span(rate: &[f64], remaining: &mut [f64], dt: f64) {
        for (r, rem) in rate.iter().zip(remaining.iter_mut()) {
            let moved = if *r > 0.0 && r.is_finite() {
                (*r * dt).min(*rem)
            } else {
                0.0
            };
            *rem -= moved;
        }
    }

    /// Fixed chunk width for the fanned advance sweep: one index-ordered
    /// chunk per worker, floored so a chunk always carries enough flows
    /// to outweigh a task claim. Purely a wall-clock heuristic — each
    /// flow's update is independent of every other's, so chunk
    /// boundaries (and hence the thread count) cannot change results.
    fn advance_chunk(n: usize, threads: usize) -> usize {
        n.div_ceil(threads).max(MIN_ADVANCE_CHUNK)
    }

    /// Stats-off advance: the branch-free SoA sweep, fanned across the
    /// pool in fixed index-ordered chunks when the flow table is large
    /// enough. Every chunk's updates are elementwise-independent, so
    /// the fan-out is bit-for-bit identical to the serial sweep at any
    /// thread count.
    fn advance_flows(&mut self, dt: f64) {
        let n = self.flows.len();
        if n >= PAR_MIN_ADVANCE_FLOWS {
            if let Some(pool) = self.pool.as_ref() {
                let chunk = Self::advance_chunk(n, self.threads);
                let rate = &self.hot.rate;
                // Disjoint per-chunk `remaining` spans; task `c` locks
                // chunk `c` exactly once, so the mutexes are uncontended
                // bookkeeping for the borrow checker, not contention
                // points (same pattern as the component fan-out).
                let chunks: Vec<Mutex<&mut [f64]>> = self
                    .hot
                    .remaining
                    .chunks_mut(chunk)
                    .map(Mutex::new)
                    .collect();
                let task = |_slot: usize, c: usize| {
                    let mut rem = chunks[c].lock().expect("chunk lock poisoned");
                    let s = c * chunk;
                    Self::advance_span(&rate[s..s + rem.len()], &mut rem, dt);
                };
                pool.run(chunks.len(), &task);
                return;
            }
        }
        Self::advance_span(&self.hot.rate, &mut self.hot.remaining, dt);
    }

    /// Stats-on advance: the same sweep plus per-link byte accounting
    /// into the dense `link_bytes` array. The fanned variant records
    /// each chunk's `(link, bytes)` contributions in flow order into a
    /// per-chunk sparse accumulator and merges them chunk-by-chunk —
    /// chunks are index-ordered, so every link sees its additions in
    /// exactly the serial loop's flow order and the f64 sums are
    /// bit-for-bit identical at any thread count.
    fn advance_flows_stats(&mut self, dt: f64) {
        let n = self.flows.len();
        let fanned = n >= PAR_MIN_ADVANCE_FLOWS && self.pool.is_some();
        if fanned {
            let chunk = Self::advance_chunk(n, self.threads);
            let nchunks = n.div_ceil(chunk);
            let outs: Vec<Mutex<Vec<(u32, f64)>>> = (0..nchunks)
                .map(|_| Mutex::new(self.advance_stat_bufs.pop().unwrap_or_default()))
                .collect();
            let rate = &self.hot.rate;
            let path = &self.hot.path;
            let arena = &self.arena;
            let chunks: Vec<Mutex<&mut [f64]>> = self
                .hot
                .remaining
                .chunks_mut(chunk)
                .map(Mutex::new)
                .collect();
            let pool = self.pool.as_ref().expect("fanned implies pool");
            let task = |_slot: usize, c: usize| {
                let mut rem = chunks[c].lock().expect("chunk lock poisoned");
                let mut out = outs[c].lock().expect("stat buf lock poisoned");
                let s = c * chunk;
                for (i, rem) in rem.iter_mut().enumerate() {
                    let r = rate[s + i];
                    if r > 0.0 && r.is_finite() {
                        let moved = (r * dt).min(*rem);
                        *rem -= moved;
                        for l in arena.get(path[s + i]) {
                            out.push((l.index() as u32, moved));
                        }
                    }
                }
            };
            pool.run(nchunks, &task);
            for m in outs {
                let mut buf = m.into_inner().expect("stat buf lock poisoned");
                for &(l, b) in &buf {
                    self.link_bytes[l as usize] += b;
                }
                buf.clear();
                self.advance_stat_bufs.push(buf);
            }
        } else {
            for pos in 0..n {
                let r = self.hot.rate[pos];
                if r > 0.0 && r.is_finite() {
                    let moved = (r * dt).min(self.hot.remaining[pos]);
                    self.hot.remaining[pos] -= moved;
                    for l in self.arena.get(self.hot.path[pos]) {
                        self.link_bytes[l.index()] += moved;
                    }
                }
            }
        }
    }

    fn activate_job(&mut self, id: JobId) -> Result<(), SimError> {
        let spec = self.specs.get(&id).expect("arrival for unknown job");
        let dag = spec.dag();
        let n = dag.num_vertices();
        let state = JobState {
            arrival: spec.arrival(),
            pending_children: (0..n).map(|v| dag.children(v).len()).collect(),
            completed: vec![false; n],
            completed_coflows: 0,
            completed_stages: 0,
            remaining_coflows: n,
            completed_bytes: 0.0,
            fault_reroutes: 0,
            fault_parks: 0,
        };
        self.jobs_state.insert(id, state);
        for v in dag.leaves() {
            self.activate_coflow(id, v)?;
        }
        self.dirty.any = true;
        Ok(())
    }

    fn activate_coflow(&mut self, job: JobId, vertex: usize) -> Result<(), SimError> {
        let spec = &self.specs[&job];
        let cf_spec = spec.coflow(vertex);
        let dag_stage = spec.dag().stage_of(vertex);
        let id = CoflowId(self.next_coflow_id);
        self.next_coflow_id += 1;
        let mut state = CoflowState {
            id,
            job,
            dag_vertex: vertex,
            dag_stage,
            activated_at: self.now,
            open_flows: 0,
            queue: 0,
            total_bytes: cf_spec.total_bytes(),
            flows: Vec::with_capacity(cf_spec.width()),
            flowing: 0,
            // Born starved: every coflow starts at zero aggregate rate
            // until the first recomputation grants one of its flows
            // bandwidth. Coflows that complete instantly (empty or
            // host-local) close the interval at zero width.
            starved_since: Some(self.now),
            starved_total: 0.0,
            starved_max: 0.0,
        };
        for fs in cf_spec.flows() {
            let fid = FlowId(self.next_flow_id);
            self.next_flow_id += 1;
            // Route around hard-failed links; if every candidate path is
            // dead, the flow starts parked and waits for a recovery.
            let (path, parked) = if self.overlay.has_failures() {
                match resalt_live_path(
                    self.fabric,
                    &self.overlay,
                    &mut self.arena,
                    fid.index() as u64,
                    fs.src,
                    fs.dst,
                )? {
                    Some(p) => (p, false),
                    None => (
                        self.fabric.path_ref(
                            fs.src,
                            fs.dst,
                            fid.index() as u64,
                            &mut self.arena,
                        )?,
                        true,
                    ),
                }
            } else {
                (
                    self.fabric
                        .path_ref(fs.src, fs.dst, fid.index() as u64, &mut self.arena)?,
                    false,
                )
            };
            if parked {
                self.result.flows_parked += 1;
                let js = self.jobs_state.get_mut(&job).expect("job active");
                js.fault_parks += 1;
            }
            state.flows.push(FlowRecord {
                id: fid,
                src: fs.src,
                bytes_done: 0.0,
                open: true,
            });
            state.open_flows += 1;
            let flow = FlowState {
                id: fid,
                src: fs.src,
                dst: fs.dst,
                size: fs.bytes,
                queue: 0,
                fresh: true,
                parked,
                stamp: 0,
            };
            let pos = self.flows.len();
            self.flow_pos.insert(fid, pos);
            self.flows.push(flow);
            self.hot.push(0.0, fs.bytes, path, id);
            self.topo_gen += 1;
            if !parked {
                // One pass over the interned slice both seeds the dirty
                // set and indexes the flow under its links.
                let arena = &self.arena;
                let dirty = &mut self.dirty;
                let link_flows = &mut self.link_flows;
                dirty.any = true;
                for l in arena.get(path) {
                    let li = l.index();
                    if !dirty.full {
                        dirty.links.push(li);
                    }
                    link_flows[li].push(fid);
                }
            }
            if self.probe.on() {
                self.probe.emit(&TraceRecord::FlowStart {
                    t: self.now,
                    flow: fid.index(),
                    coflow: id.index(),
                    job: job.index(),
                    src: fs.src.index(),
                    dst: fs.dst.index(),
                    bytes: fs.bytes,
                    parked,
                });
            }
        }
        if self.probe.on() {
            self.probe.emit(&TraceRecord::CoflowActivate {
                t: self.now,
                coflow: id.index(),
                job: job.index(),
                dag_vertex: vertex,
                width: state.flows.len(),
                bytes: state.total_bytes,
            });
        }
        self.coflows.insert(id, state);
        self.active_coflows.push(id);
        self.dirty.any = true;
        Ok(())
    }

    /// Applies one scheduled fault: mutate the capacity overlay, then
    /// react to liveness changes (reroute/park on failures, resume on
    /// recoveries) and mark rates for recomputation.
    fn apply_fault(&mut self, index: usize) -> Result<(), SimError> {
        let tf = self.fault_schedule[index];
        let impact = self.overlay.apply(&tf.event, self.fabric.num_hosts());
        // Every link whose effective capacity changed seeds the next
        // incremental recomputation, even if no flow reroutes.
        for l in impact.changed_links() {
            self.dirty.mark_link(l);
        }
        let mut rec = FaultRecord {
            at: self.now,
            event: tf.event,
            rerouted: 0,
            parked: 0,
            resumed: 0,
        };
        if !impact.newly_dead.is_empty() {
            self.handle_link_failures(&mut rec)?;
        }
        if !impact.revived.is_empty() {
            self.handle_link_recoveries(&mut rec)?;
        }
        self.result.flows_rerouted += rec.rerouted;
        self.result.flows_parked += rec.parked;
        self.result.flows_resumed += rec.resumed;
        if self.probe.on() {
            self.probe.emit(&TraceRecord::FaultApplied {
                t: self.now,
                rerouted: rec.rerouted,
                parked: rec.parked,
                resumed: rec.resumed,
            });
        }
        self.result.faults.push(rec);
        self.dirty.any = true;
        Ok(())
    }

    /// Reroutes every live flow crossing a now-dead link onto a fresh
    /// ECMP path (delivered bytes preserved); flows with no live
    /// candidate path park at zero rate.
    fn handle_link_failures(&mut self, rec: &mut FaultRecord) -> Result<(), SimError> {
        let mut reroutes: Vec<(usize, PathRef)> = Vec::new();
        let mut parks: Vec<usize> = Vec::new();
        for pos in 0..self.flows.len() {
            let f = &self.flows[pos];
            if f.parked
                || !self
                    .overlay
                    .path_is_dead(self.arena.get(self.hot.path[pos]))
            {
                continue;
            }
            let (fid, src, dst) = (f.id, f.src, f.dst);
            match resalt_live_path(
                self.fabric,
                &self.overlay,
                &mut self.arena,
                fid.index() as u64,
                src,
                dst,
            )? {
                Some(path) => reroutes.push((pos, path)),
                None => parks.push(pos),
            }
        }
        for (pos, path) in reroutes {
            let old = self.hot.path[pos];
            self.dirty.mark_path(self.arena.get(old));
            self.hot.path[pos] = path;
            self.topo_gen += 1;
            self.dirty.mark_path(self.arena.get(path));
            self.index_flow(pos, true);
            rec.rerouted += 1;
            let job = self.coflows[&self.hot.coflow[pos]].job;
            self.jobs_state
                .get_mut(&job)
                .expect("job active")
                .fault_reroutes += 1;
        }
        for pos in parks {
            self.rate_stamp += 1;
            let stamp = self.rate_stamp;
            let path = self.hot.path[pos];
            self.dirty.mark_path(self.arena.get(path));
            let was_flowing = self.hot.rate[pos] > FLOWING_EPS;
            self.hot.rate[pos] = 0.0;
            let coflow = self.hot.coflow[pos];
            let f = &mut self.flows[pos];
            f.parked = true;
            self.topo_gen += 1;
            f.stamp = stamp; // invalidate any completion-index entry
            let fid = f.id;
            rec.parked += 1;
            let job = self.coflows[&coflow].job;
            self.jobs_state
                .get_mut(&job)
                .expect("job active")
                .fault_parks += 1;
            if was_flowing {
                // Parking zeroes the rate outside the recompute path, so
                // the starvation watch must see the loss here.
                self.coflow_rate_transition(coflow, false);
            }
            if self.probe.on() {
                self.probe.emit(&TraceRecord::FlowPark {
                    t: self.now,
                    flow: fid.index(),
                    coflow: coflow.index(),
                });
            }
        }
        Ok(())
    }

    /// Resumes parked flows whose stored path is live again, rerouting
    /// those whose path is still dead but now has a live alternative.
    fn handle_link_recoveries(&mut self, rec: &mut FaultRecord) -> Result<(), SimError> {
        let mut resumes: Vec<(usize, Option<PathRef>)> = Vec::new();
        for pos in 0..self.flows.len() {
            let f = &self.flows[pos];
            if !f.parked {
                continue;
            }
            if !self
                .overlay
                .path_is_dead(self.arena.get(self.hot.path[pos]))
            {
                resumes.push((pos, None));
            } else {
                let (fid, src, dst) = (f.id, f.src, f.dst);
                if let Some(path) = resalt_live_path(
                    self.fabric,
                    &self.overlay,
                    &mut self.arena,
                    fid.index() as u64,
                    src,
                    dst,
                )? {
                    resumes.push((pos, Some(path)));
                }
            }
        }
        for (pos, new_path) in resumes {
            {
                self.flows[pos].parked = false;
                self.topo_gen += 1;
                rec.resumed += 1;
                if let Some(path) = new_path {
                    self.hot.path[pos] = path;
                    rec.rerouted += 1;
                    let coflow = self.hot.coflow[pos];
                    let job = self.coflows[&coflow].job;
                    self.jobs_state
                        .get_mut(&job)
                        .expect("job active")
                        .fault_reroutes += 1;
                }
            }
            if self.probe.on() {
                self.probe.emit(&TraceRecord::FlowResume {
                    t: self.now,
                    flow: self.flows[pos].id.index(),
                    coflow: self.hot.coflow[pos].index(),
                    rerouted: new_path.is_some(),
                });
            }
            // The resumed flow (possibly on a new path) joins the
            // allocation again; its links seed the recomputation.
            let path = self.hot.path[pos];
            self.dirty.mark_path(self.arena.get(path));
            self.index_flow(pos, true);
        }
        Ok(())
    }

    /// Detects the unrecoverable state where every in-flight flow is
    /// parked and nothing scheduled (arrival or fault) can change that;
    /// reports eagerly instead of ticking to `EventBudgetExhausted`.
    fn check_stranded(&self) -> Result<(), SimError> {
        if !self.overlay.has_failures()
            || self.flows.is_empty()
            || !self.flows.iter().all(|f| f.parked)
        {
            return Ok(());
        }
        let can_change = self
            .queue
            .any(|e| matches!(e.kind, EventKind::JobArrival(_) | EventKind::Fault { .. }));
        if can_change {
            Ok(())
        } else {
            Err(SimError::StrandedFlows {
                parked: self.flows.len(),
            })
        }
    }

    /// Completes every flow whose remaining volume has reached zero, and
    /// cascades coflow / job completions (activating parent coflows,
    /// which may themselves complete instantly if empty or host-local).
    fn harvest_completions(&mut self) -> Result<(), SimError> {
        loop {
            let mut completed_flow_ids: Vec<FlowId> = self
                .flows
                .iter()
                .enumerate()
                .filter(|&(pos, _)| {
                    self.hot.remaining[pos] <= self.config.completion_eps
                        || self.hot.path[pos].is_empty()
                })
                .map(|(_, f)| f.id)
                .collect();
            // Also: newly activated coflows may be empty (no flows).
            let empty_coflows: Vec<CoflowId> = self
                .active_coflows
                .iter()
                .copied()
                .filter(|c| self.coflows[c].flows.is_empty())
                .collect();
            if completed_flow_ids.is_empty() && empty_coflows.is_empty() {
                return Ok(());
            }
            completed_flow_ids.sort_unstable();
            let mut completed_coflows: Vec<CoflowId> = empty_coflows;
            for fid in completed_flow_ids {
                let pos = self.flow_pos.remove(fid).expect("flow indexed");
                let flow = self.flows.swap_remove(pos);
                let (rate, _, path, coflow) = self.hot.swap_remove(pos);
                self.topo_gen += 1;
                if let Some(moved) = self.flows.get(pos) {
                    self.flow_pos.insert(moved.id, pos);
                }
                // Freed capacity redistributes across the flow's links.
                self.dirty.mark_path(self.arena.get(path));
                let cf = self.coflows.get_mut(&coflow).expect("flow's coflow active");
                let rec = cf
                    .flows
                    .iter_mut()
                    .find(|r| r.id == fid)
                    .expect("flow recorded in coflow");
                rec.open = false;
                rec.bytes_done = flow.size;
                cf.open_flows -= 1;
                // A completing flow leaves the flowing set; if it was the
                // coflow's last source of bandwidth and siblings remain
                // open, a starvation interval opens here. (If the coflow
                // completes too, `complete_coflow` closes it at zero
                // width in the same instant.)
                if rate > FLOWING_EPS {
                    cf.flowing -= 1;
                    if cf.flowing == 0 {
                        cf.starved_since = Some(self.now);
                    }
                }
                if cf.open_flows == 0 {
                    completed_coflows.push(cf.id);
                }
                if self.probe.on() {
                    self.probe.emit(&TraceRecord::FlowComplete {
                        t: self.now,
                        flow: fid.index(),
                        coflow: coflow.index(),
                        bytes: flow.size,
                    });
                }
            }
            for cid in completed_coflows {
                self.complete_coflow(cid)?;
            }
            self.dirty.any = true;
        }
    }

    fn complete_coflow(&mut self, cid: CoflowId) -> Result<(), SimError> {
        let mut state = self.coflows.remove(&cid).expect("completing active coflow");
        self.active_coflows.retain(|&c| c != cid);
        // Close any open starvation interval at completion time. Coflows
        // that never received bandwidth (empty, host-local, or finished
        // while parked) carry their whole lifetime here.
        if let Some(since) = state.starved_since.take() {
            let dur = self.now - since;
            if dur > 0.0 {
                state.starved_total += dur;
                state.starved_max = state.starved_max.max(dur);
                if self.probe.on() {
                    self.probe.emit(&TraceRecord::CoflowStarved {
                        t: self.now,
                        coflow: cid.index(),
                        dur,
                    });
                }
            }
        }
        self.result.coflows.push(CoflowResult {
            id: cid,
            job: state.job,
            dag_vertex: state.dag_vertex,
            activated_at: state.activated_at,
            completed_at: self.now,
            bytes: state.total_bytes,
            starved_total: state.starved_total,
            starved_max: state.starved_max,
        });
        if self.probe.on() {
            self.probe.emit(&TraceRecord::CoflowComplete {
                t: self.now,
                coflow: cid.index(),
                job: state.job.index(),
                cct: self.now - state.activated_at,
                starved_total: state.starved_total,
                starved_max: state.starved_max,
            });
        }
        self.plane.on_coflow_completed(cid, state.job, self.now);
        let job_id = state.job;
        let vertex = state.dag_vertex;
        let to_activate: Vec<usize>;
        let job_done: bool;
        {
            let js = self.jobs_state.get_mut(&job_id).expect("job active");
            js.completed[vertex] = true;
            js.completed_coflows += 1;
            js.remaining_coflows -= 1;
            js.completed_stages = js.completed_stages.max(state.dag_stage + 1);
            js.completed_bytes += state.total_bytes;
            let dag = self.specs[&job_id].dag();
            to_activate = dag
                .parents(vertex)
                .iter()
                .copied()
                .filter(|&p| {
                    let js2 = &mut *js;
                    js2.pending_children[p] -= 1;
                    js2.pending_children[p] == 0
                })
                .collect();
            job_done = js.remaining_coflows == 0;
        }
        for p in to_activate {
            self.activate_coflow(job_id, p)?;
        }
        if job_done {
            let spec = &self.specs[&job_id];
            let js = self.jobs_state.remove(&job_id).expect("job state");
            self.result.jobs.push(JobResult {
                id: job_id,
                arrival: js.arrival,
                completed_at: self.now,
                jct: self.now - js.arrival,
                total_bytes: spec.total_bytes(),
                num_stages: spec.num_stages(),
                fault_reroutes: js.fault_reroutes,
                fault_parks: js.fault_parks,
            });
            if self.probe.on() {
                self.probe.emit(&TraceRecord::JobComplete {
                    t: self.now,
                    job: job_id.index(),
                    jct: self.now - js.arrival,
                });
            }
            self.plane.on_job_completed(job_id, self.now);
            self.remaining_jobs -= 1;
            self.completed_at.insert(job_id, self.now);
            // Drop the spec: nothing reads it past completion (the
            // oracle only answers for active jobs), and releasing it
            // keeps a streamed online run's memory proportional to the
            // active set, not the history.
            self.specs.remove(&job_id);
        }
        Ok(())
    }

    fn build_observation(&self) -> Observation {
        let mut coflows = Vec::with_capacity(self.active_coflows.len());
        let mut job_index: HashMap<JobId, usize> = HashMap::new();
        let mut jobs: Vec<JobObs> = Vec::new();
        for (ci, cid) in self.active_coflows.iter().enumerate() {
            let cf = &self.coflows[cid];
            let mut flows = Vec::with_capacity(cf.flows.len());
            let mut bytes = 0.0f64;
            let mut max_flow = 0.0f64;
            for rec in &cf.flows {
                let done = if rec.open {
                    let pos = self.flow_pos.get(rec.id).expect("open flow indexed");
                    self.bytes_done(pos)
                } else {
                    rec.bytes_done
                };
                bytes += done;
                max_flow = max_flow.max(done);
                flows.push(FlowObs {
                    id: rec.id,
                    bytes_received: done,
                    open: rec.open,
                });
            }
            coflows.push(CoflowObs {
                id: cf.id,
                job: cf.job,
                dag_vertex: cf.dag_vertex,
                dag_stage: cf.dag_stage,
                activated_at: cf.activated_at,
                open_flows: cf.open_flows,
                bytes_received: bytes,
                max_flow_bytes_received: max_flow,
                flows,
            });
            let job_id = cf.job;
            let j = *job_index.entry(job_id).or_insert_with(|| {
                let js = &self.jobs_state[&job_id];
                jobs.push(JobObs {
                    id: job_id,
                    arrival: js.arrival,
                    completed_coflows: js.completed_coflows,
                    completed_stages: js.completed_stages,
                    bytes_received: js.completed_bytes,
                    completed_bytes: js.completed_bytes,
                    active_coflows: Vec::new(),
                });
                jobs.len() - 1
            });
            jobs[j].bytes_received += bytes;
            jobs[j].active_coflows.push(ci);
        }
        // Ascending-id order is an `Observation` invariant (binary
        // search in `Observation::job`); the accumulation above runs in
        // coflow order, so sorting afterwards changes no values.
        jobs.sort_unstable_by_key(|j| j.id);
        Observation {
            now: self.now,
            coflows,
            jobs,
        }
    }

    /// Splits the cluster state into per-host views: each sender host
    /// sees only the flows sourced there. Views preserve the global
    /// orders (coflows ascending by id, flows in creation order) so
    /// [`crate::control::merge_reports`] can reassemble the centralized
    /// observation exactly.
    fn build_local_views(&self) -> Vec<LocalObservation> {
        let mut host_slot: HashMap<HostId, usize> = HashMap::new();
        let mut views: Vec<LocalObservation> = Vec::new();
        for cid in &self.active_coflows {
            let cf = &self.coflows[cid];
            for rec in &cf.flows {
                let done = if rec.open {
                    let pos = self.flow_pos.get(rec.id).expect("open flow indexed");
                    self.bytes_done(pos)
                } else {
                    rec.bytes_done
                };
                let vi = *host_slot.entry(rec.src).or_insert_with(|| {
                    views.push(LocalObservation {
                        host: rec.src,
                        now: self.now,
                        coflows: Vec::new(),
                        jobs: Vec::new(),
                    });
                    views.len() - 1
                });
                let view = &mut views[vi];
                // A coflow's flows are contiguous in this loop, so if the
                // view already tracks it, it is the last entry.
                if view.coflows.last().map(|c| c.id) != Some(cf.id) {
                    view.coflows.push(CoflowObs {
                        id: cf.id,
                        job: cf.job,
                        dag_vertex: cf.dag_vertex,
                        dag_stage: cf.dag_stage,
                        activated_at: cf.activated_at,
                        open_flows: 0,
                        bytes_received: 0.0,
                        max_flow_bytes_received: 0.0,
                        flows: Vec::new(),
                    });
                }
                let c = view.coflows.last_mut().expect("just ensured");
                c.flows.push(FlowObs {
                    id: rec.id,
                    bytes_received: done,
                    open: rec.open,
                });
                c.bytes_received += done;
                c.max_flow_bytes_received = c.max_flow_bytes_received.max(done);
                c.open_flows += usize::from(rec.open);
            }
        }
        for view in &mut views {
            let mut job_index: HashMap<JobId, usize> = HashMap::new();
            for ci in 0..view.coflows.len() {
                let (job_id, bytes) = (view.coflows[ci].job, view.coflows[ci].bytes_received);
                let j = *job_index.entry(job_id).or_insert_with(|| {
                    let js = &self.jobs_state[&job_id];
                    view.jobs.push(JobObs {
                        id: job_id,
                        arrival: js.arrival,
                        completed_coflows: js.completed_coflows,
                        completed_stages: js.completed_stages,
                        bytes_received: js.completed_bytes,
                        completed_bytes: js.completed_bytes,
                        active_coflows: Vec::new(),
                    });
                    view.jobs.len() - 1
                });
                view.jobs[j].bytes_received += bytes;
                view.jobs[j].active_coflows.push(ci);
            }
            view.jobs.sort_unstable_by_key(|j| j.id);
        }
        views
    }

    fn reassign_priorities(&mut self) {
        if self.active_coflows.is_empty() {
            return;
        }
        let output = if self.plane.needs_local_views() {
            let views = self.build_local_views();
            self.plane.decide(ControlInput::Local {
                now: self.now,
                latency: self.config.control_latency,
                views,
            })
        } else {
            let obs = self.build_observation();
            let remaining = |fid: FlowId| self.flow_pos.get(fid).map(|pos| self.hot.remaining[pos]);
            let flow_size = |fid: FlowId| self.flow_pos.get(fid).map(|pos| self.flows[pos].size);
            let oracle = Oracle::new(&self.specs, &remaining, &flow_size);
            self.plane.decide(ControlInput::Global {
                obs: &obs,
                oracle: &oracle,
            })
        };
        self.apply_table(&output.assignments);
        self.apply_host_tables(&output.host_assignments);
        self.push_control_timers(&output.timers);
        if self.probe.on() {
            for rec in &output.trace {
                self.probe.emit(rec);
            }
        }
        if let Some(token) = output.schedule_update {
            self.queue.push(Event {
                time: self.now + self.config.control_latency,
                seq: self.seq,
                kind: EventKind::ControlUpdate { token },
            });
            self.seq += 1;
            if self.probe.on() {
                // Stamp the decision time so delivery can report the
                // measured staleness rather than the configured latency.
                self.probe.control_issued.insert(token, self.now);
            }
        }
    }

    /// Schedules `ControlTimer` events for the protocol steps a
    /// fault-armed plane requested: `(delay_from_now, token)` pairs.
    fn push_control_timers(&mut self, timers: &[(f64, u64)]) {
        for &(delay, token) in timers {
            self.queue.push(Event {
                time: self.now + delay,
                seq: self.seq,
                kind: EventKind::ControlTimer { token },
            });
            self.seq += 1;
        }
    }

    /// Applies a priority table to the flows it covers. Entries for
    /// coflows that completed while the table was in flight are skipped
    /// (a delayed table may be stale); active coflows absent from the
    /// table keep their current queues.
    fn apply_table(&mut self, table: &[(CoflowId, usize)]) {
        let nq = self.plane.num_queues();
        let relax = self.plane.reprioritizes_live_flows();
        for &(cid, queue) in table {
            assert!(
                queue < nq,
                "assigned queue {queue} out of range ({nq} queues)"
            );
            let Some(cf) = self.coflows.get_mut(&cid) else {
                continue; // completed before the table was delivered
            };
            let old_queue = cf.queue;
            cf.queue = queue;
            if old_queue != queue && self.probe.on() {
                self.probe.emit(&TraceRecord::PriorityMove {
                    t: self.now,
                    coflow: cid.index(),
                    from: old_queue,
                    to: queue,
                });
            }
            for rec in cf.flows.iter().filter(|r| r.open) {
                let pos = self.flow_pos.get(rec.id).expect("open flow indexed");
                let f = &mut self.flows[pos];
                let new_queue = if f.fresh || relax {
                    queue
                } else {
                    // Demotions (larger queue index) apply to live flows;
                    // promotions only affect flows started later.
                    f.queue.max(queue)
                };
                let changed = new_queue != f.queue;
                if changed {
                    f.queue = new_queue;
                }
                f.fresh = false;
                if changed {
                    // A queue change only affects the allocation through
                    // the flow's own links, so they suffice as seeds.
                    self.dirty.mark_path(self.arena.get(self.hot.path[pos]));
                }
            }
        }
    }

    /// Applies per-sender-host priority tables (fault-armed
    /// decentralized planes): for each `(host, table)` pair, only the
    /// flows *sourced at* that host take the table's queues, under the
    /// same demotion rule as [`Engine::apply_table`]. Coflow-level
    /// queue labels (and `PriorityMove` records) are reserved for the
    /// uniform path — under faults, hosts may legitimately disagree.
    fn apply_host_tables(&mut self, tables: &[(HostId, Vec<(CoflowId, usize)>)]) {
        if tables.is_empty() {
            return;
        }
        let nq = self.plane.num_queues();
        let relax = self.plane.reprioritizes_live_flows();
        for (host, table) in tables {
            for &(cid, queue) in table {
                assert!(
                    queue < nq,
                    "assigned queue {queue} out of range ({nq} queues)"
                );
                let Some(cf) = self.coflows.get_mut(&cid) else {
                    continue; // completed before the table landed
                };
                for rec in cf.flows.iter().filter(|r| r.open && r.src == *host) {
                    let pos = self.flow_pos.get(rec.id).expect("open flow indexed");
                    let f = &mut self.flows[pos];
                    let new_queue = if f.fresh || relax {
                        queue
                    } else {
                        f.queue.max(queue)
                    };
                    let changed = new_queue != f.queue;
                    if changed {
                        f.queue = new_queue;
                    }
                    f.fresh = false;
                    if changed {
                        self.dirty.mark_path(self.arena.get(self.hot.path[pos]));
                    }
                }
            }
        }
    }

    /// Adds `flows[pos]` to the link→flows index for every link on its
    /// path. With `dedup`, skips links that already list the flow (a
    /// rerouted path may share links with the stale entry's old path).
    fn index_flow(&mut self, pos: usize, dedup: bool) {
        let fid = self.flows[pos].id;
        let path = self.hot.path[pos];
        let arena = &self.arena;
        let link_flows = &mut self.link_flows;
        for l in arena.get(path) {
            let list = &mut link_flows[l.index()];
            if !dedup || !list.contains(&fid) {
                list.push(fid);
            }
        }
    }

    /// Expands the dirty seed links into the full set of flow positions
    /// whose rate can change — the connected components of the
    /// flow↔link bipartite graph containing any seed. Each seed that
    /// reaches unvisited links starts a fresh BFS, so `component` /
    /// `comp_bounds` come back *grouped by connected component* (in
    /// deterministic seed-discovery order, each group sorted ascending
    /// by flow-table position) — the unit of both per-component
    /// waterfilling and intra-run parallelism. Side effect: compacts
    /// stale `link_flows` entries it walks over.
    fn collect_component(&mut self) {
        self.component.clear();
        self.comp_bounds.clear();
        self.comp_bounds.push(0);
        let epoch = self.begin_bfs_epoch();
        // Take the seed list out so the BFS below can borrow the rest
        // of `self`; hand the allocation back (cleared) afterwards.
        let seeds = std::mem::take(&mut self.dirty.links);
        let mut bfs = ComponentBfs {
            flows: &self.flows,
            paths: &self.hot.path,
            flow_pos: &self.flow_pos,
            arena: &self.arena,
            link_flows: &mut self.link_flows,
            flow_mark: &mut self.flow_mark,
            link_mark: &mut self.link_mark,
            stack: &mut self.bfs_stack,
        };
        for &seed in &seeds {
            if bfs.link_mark[seed] == epoch {
                continue; // joins a component already collected
            }
            bfs.link_mark[seed] = epoch;
            bfs.stack.push(seed);
            let start = self.component.len();
            bfs.expand(epoch, &mut self.component);
            if self.component.len() > start {
                // Ascending flow-table order within the component so its
                // demand sequence is independent of BFS visit order.
                self.component[start..].sort_unstable();
                self.comp_bounds.push(self.component.len());
            }
        }
        self.dirty.links = seeds;
        self.dirty.links.clear();
    }

    /// Full-pass variant of [`Engine::collect_component`]: every
    /// unparked flow joins some component, grouped with the *same
    /// canonical structure* an incremental pass would discover —
    /// components ordered by their lowest member position, each group's
    /// members ascending — so per-component waterfill order is
    /// canonical regardless of how the pass was triggered, full passes
    /// reuse the component fan-out, and forced-full runs match
    /// incremental ones exactly (see DESIGN.md "Hot path &
    /// complexity").
    ///
    /// Unlike the seed-link BFS, a full pass already knows its
    /// membership (every unparked flow), so grouping needs no adjacency
    /// lists, no per-entry `flow_pos` validation, and no sorting: three
    /// linear sweeps over the flow table with an epoch-stamped
    /// union-find keyed by each flow's own path. Flagship Gurita runs
    /// make this the hot path — WRR starvation-mitigation weights shift
    /// with queue loads, so most recomputations are discipline-change
    /// full passes.
    ///
    /// The partition depends only on the topology (which unparked flows
    /// exist and which links their paths cross), never on disciplines,
    /// weights, priorities, or capacities — so it is cached under
    /// [`Engine::topo_gen`] and a discipline-only full pass reuses it
    /// outright. Debug builds re-derive and compare on every hit, so
    /// the equivalence suites would catch a missed `topo_gen` bump.
    fn collect_full_components(&mut self) {
        if self.full_gen == self.topo_gen {
            self.component.clear();
            self.component.extend_from_slice(&self.full_comp);
            self.comp_bounds.clear();
            self.comp_bounds.extend_from_slice(&self.full_bounds);
            #[cfg(debug_assertions)]
            {
                let cached_comp = std::mem::take(&mut self.component);
                let cached_bounds = std::mem::take(&mut self.comp_bounds);
                self.compute_full_partition();
                debug_assert_eq!(
                    cached_comp, self.component,
                    "stale full-partition cache: a topology mutation missed topo_gen"
                );
                debug_assert_eq!(
                    cached_bounds, self.comp_bounds,
                    "stale full-partition cache: a topology mutation missed topo_gen"
                );
            }
            return;
        }
        self.compute_full_partition();
        self.full_comp.clone_from(&self.component);
        self.full_bounds.clone_from(&self.comp_bounds);
        self.full_gen = self.topo_gen;
    }

    /// Derives the canonical full partition into `component` /
    /// `comp_bounds` (see [`Engine::collect_full_components`]).
    fn compute_full_partition(&mut self) {
        let n = self.flows.len();
        debug_assert!(n < u32::MAX as usize, "flow positions fit u32");
        self.mark_epoch += 1;
        let epoch = self.mark_epoch;
        // Sweep 1: union each flow with the flows sharing its links.
        // `link_owner[li]` caches a root position for link `li` this
        // epoch (validity gated by `link_mark`). Unions attach the
        // larger root under the smaller, so every root is its
        // component's lowest member and `uf_counts` accumulates
        // component sizes at the roots. Live positions are collected
        // once (`uf_live`) so the later sweeps skip the parked checks.
        self.uf_parent.clear();
        self.uf_parent.extend(0..n as u32);
        self.uf_counts.clear();
        self.uf_counts.resize(n, 1);
        self.uf_live.clear();
        for pos in 0..n {
            if self.flows[pos].parked {
                continue;
            }
            self.uf_live.push(pos as u32);
            // Unions only ever touch already-visited positions, so this
            // flow is still its own root when first reached.
            debug_assert_eq!(self.uf_parent[pos], pos as u32);
            let mut root = pos as u32;
            for l in self.arena.get(self.hot.path[pos]) {
                let li = l.index();
                if self.link_mark[li] == epoch {
                    let other = uf_find(&mut self.uf_parent, self.link_owner[li]);
                    if other != root {
                        if other < root {
                            self.uf_parent[root as usize] = other;
                            self.uf_counts[other as usize] += self.uf_counts[root as usize];
                            root = other;
                        } else {
                            self.uf_parent[other as usize] = root;
                            self.uf_counts[root as usize] += self.uf_counts[other as usize];
                        }
                    }
                    // Refresh the owner to the merged root: later flows
                    // on this link then resolve it in O(1).
                    self.link_owner[li] = root;
                } else {
                    self.link_mark[li] = epoch;
                    self.link_owner[li] = root;
                }
            }
        }
        // Sweep 2: roots are exactly the positions still parenting
        // themselves; scanning the live list ascending numbers
        // components by lowest member with no `find` at all. Each
        // root's count slot becomes its component's scatter cursor.
        self.comp_bounds.clear();
        self.comp_bounds.push(0);
        let mut acc = 0usize;
        for i in 0..self.uf_live.len() {
            let pos = self.uf_live[i] as usize;
            if self.uf_parent[pos] == pos as u32 {
                let start = acc;
                acc += self.uf_counts[pos] as usize;
                self.uf_counts[pos] = start as u32;
                self.comp_bounds.push(acc);
            }
        }
        debug_assert_eq!(acc, self.uf_live.len());
        // Sweep 3: scatter positions into their root's segment; the
        // ascending scan keeps each group's members ascending.
        self.component.clear();
        self.component.resize(acc, 0);
        for i in 0..self.uf_live.len() {
            let pos = self.uf_live[i];
            let root = uf_find(&mut self.uf_parent, pos) as usize;
            let cur = self.uf_counts[root] as usize;
            self.component[cur] = pos as usize;
            self.uf_counts[root] = cur as u32 + 1;
        }
    }

    /// Bumps the shared mark epoch and readies the BFS scratch
    /// (flow-mark table sized to the flow table, empty stack).
    fn begin_bfs_epoch(&mut self) -> u64 {
        self.mark_epoch += 1;
        if self.flow_mark.len() < self.flows.len() {
            self.flow_mark.resize(self.flows.len(), 0);
        }
        self.bfs_stack.clear();
        self.mark_epoch
    }

    /// Drops invalidated completion-index entries once garbage dominates,
    /// keeping the heap O(live flows) without an O(log n) delete.
    fn rebuild_finish_heap(&mut self) {
        let mut buf = std::mem::take(&mut self.finish_heap).into_vec();
        let flows = &self.flows;
        let flow_pos = &self.flow_pos;
        buf.retain(|c| {
            flow_pos
                .get(c.flow)
                .is_some_and(|pos| flows[pos].stamp == c.stamp)
        });
        self.finish_heap = BinaryHeap::from(buf);
    }

    fn recompute_rates(&mut self) {
        let full_requested = self.dirty.full || self.config.force_full_recompute;
        self.dirty.any = false;
        self.dirty.full = false;
        self.completion_generation += 1;
        if self.flows.is_empty() {
            self.dirty.links.clear();
            return;
        }
        // Planes derive weights from state accumulated at decision time
        // (always before rates are recomputed), so the policy query does
        // not need a fresh observation. See the `Scheduler::queue_policy`
        // contract.
        let discipline = match self.plane.queue_policy() {
            QueuePolicy::Strict => Discipline::StrictPriority {
                num_queues: self.plane.num_queues(),
            },
            QueuePolicy::Weighted(weights) => {
                assert_eq!(
                    weights.len(),
                    self.plane.num_queues(),
                    "one WRR weight per queue required"
                );
                Discipline::WeightedRoundRobin { weights }
            }
        };
        // A discipline change (e.g. WRR weights shifted) re-weights every
        // flow everywhere: incremental seeds are insufficient, fall back
        // to a full pass.
        let full = full_requested || self.last_discipline.as_ref() != Some(&discipline);
        if self.probe.on() {
            if full {
                self.probe.full_passes += 1;
            } else {
                self.probe.incremental_passes += 1;
                self.probe.seed_links += self.dirty.links.len() as u64;
            }
        }
        self.last_discipline = Some(discipline.clone());
        self.rate_stamp += 1;
        let stamp = self.rate_stamp;
        if full {
            // Parked flows may have been holding a nonzero entry from
            // before parking in exotic orderings; pin them to zero as
            // the pre-incremental engine did.
            for pos in 0..self.flows.len() {
                if !self.flows[pos].parked {
                    continue;
                }
                let was_flowing = self.hot.rate[pos] > FLOWING_EPS;
                self.hot.rate[pos] = 0.0;
                self.flows[pos].stamp = stamp;
                if was_flowing {
                    let cid = self.hot.coflow[pos];
                    self.coflow_rate_transition(cid, false);
                }
            }
        }
        // Component discovery + allocation. Incremental passes with a
        // pool and enough seed links stream the (expensive, adjacency-
        // validating) BFS against the waterfill workers — the caller
        // discovers component i+1 while workers allocate component i.
        // Full passes never stream: their union-find grouping is a few
        // linear sweeps (no adjacency work to hide, and a later flow
        // can merge two earlier groups, so no component is final until
        // the union sweep ends); they batch-collect and then fan or
        // loop like any other pass. Both orders produce the same
        // `component` / `comp_bounds` / `rate_buf` triple bit-for-bit.
        let streamed = !full && self.pool.is_some() && self.dirty.links.len() >= PAR_MIN_SEED_LINKS;
        if streamed {
            self.recompute_streamed(&discipline);
        } else {
            if full {
                self.dirty.links.clear();
                self.collect_full_components();
            } else {
                self.collect_component();
            }
            if self.component.is_empty() {
                return;
            }
            self.rate_buf.clear();
            self.rate_buf.resize(self.component.len(), 0.0);
            let ncomp = self.comp_bounds.len() - 1;
            if ncomp == 1 {
                // One component: a single waterfill, on the engine's own
                // allocator — identical at every thread count.
                let view = FlowDemandView {
                    flows: &self.flows,
                    paths: &self.hot.path,
                    subset: &self.component,
                    arena: &self.arena,
                };
                let fabric = self.fabric;
                let overlay = &self.overlay;
                self.allocator.allocate_into(
                    &view,
                    |l| fabric.link_capacity(l) * overlay.scale(l),
                    &discipline,
                    &mut self.rate_buf,
                );
                self.last_alloc_touched = self.allocator.last_touched_links();
                self.last_alloc_passes = self.allocator.last_waterfill_passes();
            } else if self.pool.is_some() && self.component.len() >= PAR_MIN_FLOWS {
                self.recompute_components_parallel(&discipline);
            } else {
                // Per-component serial loop: the reference the parallel
                // branches must match bit-for-bit. Components are
                // disjoint in both flows and links, so each call's
                // inputs — and hence its output rates — are independent
                // of the other components entirely.
                self.last_alloc_touched = 0;
                self.last_alloc_passes = 0;
                let fabric = self.fabric;
                for c in 0..ncomp {
                    let (s, e) = (self.comp_bounds[c], self.comp_bounds[c + 1]);
                    let view = FlowDemandView {
                        flows: &self.flows,
                        paths: &self.hot.path,
                        subset: &self.component[s..e],
                        arena: &self.arena,
                    };
                    let overlay = &self.overlay;
                    self.allocator.allocate_into(
                        &view,
                        |l| fabric.link_capacity(l) * overlay.scale(l),
                        &discipline,
                        &mut self.rate_buf[s..e],
                    );
                    self.last_alloc_touched += self.allocator.last_touched_links();
                    self.last_alloc_passes += self.allocator.last_waterfill_passes();
                }
            }
        }
        if self.component.is_empty() {
            return;
        }
        let ncomp = self.comp_bounds.len() - 1;
        if self.probe.on() {
            self.probe.component_calls += ncomp as u64;
        }
        for i in 0..self.component.len() {
            let pos = self.component[i];
            let rate = self.rate_buf[i];
            let was_flowing = self.hot.rate[pos] > FLOWING_EPS;
            self.hot.rate[pos] = rate;
            self.flows[pos].stamp = stamp;
            if rate > 1e-15 && rate.is_finite() {
                self.finish_heap.push(FinishCand {
                    time: self.now + self.hot.remaining[pos] / rate,
                    flow: self.flows[pos].id,
                    stamp,
                });
            }
            let is_flowing = rate > FLOWING_EPS;
            if was_flowing != is_flowing {
                let cid = self.hot.coflow[pos];
                self.coflow_rate_transition(cid, is_flowing);
            }
        }
        if self.probe.on() {
            self.probe.component_flows += self.component.len() as u64;
        }
        if self.finish_heap.len() > 4 * self.flows.len() + 64 {
            self.rebuild_finish_heap();
        }
    }

    /// Fans the epoch's disjoint components across the worker pool:
    /// `f(worker_slot, component_index)` waterfills one component into
    /// its own `rate_buf` span using the slot's private [`Allocator`]
    /// scratch. Writes exactly what the serial per-component loop
    /// writes — the same rates into the same slices, and per-component
    /// diagnostics merged in component-index order — so results are
    /// bit-for-bit independent of scheduling (see
    /// [`SimConfig::threads`]).
    fn recompute_components_parallel(&mut self, discipline: &Discipline) {
        let ncomp = self.comp_bounds.len() - 1;
        let fabric = self.fabric;
        if self.worker_alloc.len() < self.threads {
            self.worker_alloc.resize_with(self.threads, || {
                Mutex::new(Allocator::new(fabric.num_links()))
            });
        }
        // Disjoint per-component output spans carved out of `rate_buf`.
        // Task `c` locks span `c` and worker slot `s` locks scratch `s`,
        // each exactly once per batch, so every lock below is
        // uncontended — the mutexes keep this fan-out inside the
        // crate-wide `forbid(unsafe_code)`; they are not synchronization
        // points.
        let mut spans: Vec<Mutex<(&mut [f64], usize, u64)>> = Vec::with_capacity(ncomp);
        let mut rest: &mut [f64] = &mut self.rate_buf;
        for w in self.comp_bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            rest = tail;
            spans.push(Mutex::new((head, 0, 0)));
        }
        let flows = &self.flows;
        let paths = &self.hot.path;
        let arena = &self.arena;
        let overlay = &self.overlay;
        let component = &self.component;
        let bounds = &self.comp_bounds;
        let scratch = &self.worker_alloc;
        let pool = self.pool.as_ref().expect("caller checked");
        let spans_ref = &spans;
        let task = move |slot: usize, c: usize| {
            let (s, e) = (bounds[c], bounds[c + 1]);
            let view = FlowDemandView {
                flows,
                paths,
                subset: &component[s..e],
                arena,
            };
            let mut alloc = scratch[slot].lock().expect("worker scratch poisoned");
            let mut out = spans_ref[c].lock().expect("span lock poisoned");
            let out = &mut *out;
            alloc.allocate_into(
                &view,
                |l| fabric.link_capacity(l) * overlay.scale(l),
                discipline,
                &mut *out.0,
            );
            out.1 = alloc.last_touched_links();
            out.2 = alloc.last_waterfill_passes();
        };
        pool.run(ncomp, &task);
        // Merge diagnostics in component-index order. Integer sums are
        // order-independent anyway; the explicit order documents the
        // contract the f64-free merge shares with the rate application
        // loop below (component-index order, always).
        let (mut touched, mut passes) = (0usize, 0u64);
        for m in spans {
            let (_, t, p) = m.into_inner().expect("span lock poisoned");
            touched += t;
            passes += p;
        }
        self.last_alloc_touched = touched;
        self.last_alloc_passes = passes;
        if self.probe.on() {
            self.probe.parallel_epochs += 1;
        }
    }

    /// Streamed incremental recompute: overlaps component *discovery*
    /// with component *allocation*. The caller thread runs the
    /// seed-link BFS (it owns the mutable marks and `link_flows`
    /// compaction) and hands each finished component through a queue to
    /// the pool workers, which waterfill it into a recycled buffer
    /// while the caller is already discovering the next one. After the
    /// BFS finishes the caller drains the queue too (as worker slot 0).
    /// Full passes never come here — their union-find grouping has no
    /// discovery cost worth hiding (see
    /// [`Engine::collect_full_components`]).
    ///
    /// Determinism: components get their index in discovery order —
    /// the same order the batch collectors produce — and results are
    /// sorted by that index before `component` / `comp_bounds` /
    /// `rate_buf` are assembled, so the triple is byte-identical to the
    /// batch path's regardless of which worker ran which component
    /// when. Each waterfill is the same pure per-component call.
    fn recompute_streamed(&mut self, discipline: &Discipline) {
        let epoch = self.begin_bfs_epoch();
        let fabric = self.fabric;
        if self.worker_alloc.len() < self.threads {
            self.worker_alloc.resize_with(self.threads, || {
                Mutex::new(Allocator::new(fabric.num_links()))
            });
        }
        let seeds = std::mem::take(&mut self.dirty.links);
        // Recycled membership / rate buffers ride along inside the jobs
        // and come back via the results, so steady state allocates
        // nothing.
        let pos_pool = Mutex::new(std::mem::take(&mut self.comp_pos_bufs));
        let rate_pool = Mutex::new(std::mem::take(&mut self.comp_rate_bufs));
        let queue: Mutex<(VecDeque<CompJob>, bool)> = Mutex::new((VecDeque::new(), false));
        let ready = Condvar::new();
        let results: Mutex<Vec<CompResult>> = Mutex::new(Vec::new());
        {
            let flows = &self.flows;
            let paths = &self.hot.path;
            let arena = &self.arena;
            let overlay = &self.overlay;
            let scratch = &self.worker_alloc;
            let (queue, ready, results) = (&queue, &ready, &results);
            // Each of the `threads` tasks is a drain loop: pop a
            // component, waterfill it, repeat until the queue is closed
            // and empty.
            let task = |slot: usize, _task: usize| loop {
                let job = {
                    let mut st = queue.lock().expect("component queue poisoned");
                    loop {
                        if let Some(j) = st.0.pop_front() {
                            break Some(j);
                        }
                        if st.1 {
                            break None;
                        }
                        st = ready.wait(st).expect("component queue poisoned");
                    }
                };
                let Some(mut job) = job else { return };
                job.rates.clear();
                job.rates.resize(job.positions.len(), 0.0);
                let view = FlowDemandView {
                    flows,
                    paths,
                    subset: &job.positions,
                    arena,
                };
                let mut alloc = scratch[slot].lock().expect("worker scratch poisoned");
                alloc.allocate_into(
                    &view,
                    |l| fabric.link_capacity(l) * overlay.scale(l),
                    discipline,
                    &mut job.rates,
                );
                let (touched, passes) = (alloc.last_touched_links(), alloc.last_waterfill_passes());
                drop(alloc);
                results.lock().expect("results poisoned").push(CompResult {
                    index: job.index,
                    positions: job.positions,
                    rates: job.rates,
                    touched,
                    passes,
                });
            };
            let mut bfs = ComponentBfs {
                flows,
                paths,
                flow_pos: &self.flow_pos,
                arena,
                link_flows: &mut self.link_flows,
                flow_mark: &mut self.flow_mark,
                link_mark: &mut self.link_mark,
                stack: &mut self.bfs_stack,
            };
            let (pos_pool, rate_pool, seeds) = (&pos_pool, &rate_pool, &seeds);
            let produce = move || {
                // Close the queue even if discovery unwinds — blocked
                // workers must terminate for run_with to return.
                let _close = CloseOnDrop { queue, ready };
                let mut next = 0usize;
                let mut emit = |positions: Vec<usize>| {
                    let rates = rate_pool
                        .lock()
                        .expect("rate pool poisoned")
                        .pop()
                        .unwrap_or_default();
                    let mut st = queue.lock().expect("component queue poisoned");
                    st.0.push_back(CompJob {
                        index: next,
                        positions,
                        rates,
                    });
                    next += 1;
                    drop(st);
                    ready.notify_one();
                };
                let take_buf = || {
                    let mut b: Vec<usize> = pos_pool
                        .lock()
                        .expect("pos pool poisoned")
                        .pop()
                        .unwrap_or_default();
                    b.clear();
                    b
                };
                for &seed in seeds {
                    if bfs.link_mark[seed] == epoch {
                        continue; // joins a component already collected
                    }
                    bfs.link_mark[seed] = epoch;
                    bfs.stack.push(seed);
                    let mut out = take_buf();
                    bfs.expand(epoch, &mut out);
                    if out.is_empty() {
                        pos_pool.lock().expect("pos pool poisoned").push(out);
                        continue;
                    }
                    out.sort_unstable();
                    emit(out);
                }
            };
            let pool = self.pool.as_ref().expect("caller checked");
            pool.run_with(self.threads, &task, produce);
            if self.probe.on() {
                self.probe.parallel_epochs += 1;
            }
        }
        self.dirty.links = seeds;
        self.dirty.links.clear();
        // Assemble in discovery order: byte-identical to the batch path.
        let mut results = results.into_inner().expect("results poisoned");
        results.sort_unstable_by_key(|r| r.index);
        self.component.clear();
        self.comp_bounds.clear();
        self.comp_bounds.push(0);
        self.rate_buf.clear();
        self.last_alloc_touched = 0;
        self.last_alloc_passes = 0;
        let mut pos_bufs = pos_pool.into_inner().expect("pos pool poisoned");
        let mut rate_bufs = rate_pool.into_inner().expect("rate pool poisoned");
        for r in results {
            self.component.extend_from_slice(&r.positions);
            self.rate_buf.extend_from_slice(&r.rates);
            self.comp_bounds.push(self.component.len());
            self.last_alloc_touched += r.touched;
            self.last_alloc_passes += r.passes;
            let (mut p, mut rt) = (r.positions, r.rates);
            p.clear();
            rt.clear();
            pos_bufs.push(p);
            rate_bufs.push(rt);
        }
        self.comp_pos_bufs = pos_bufs;
        self.comp_rate_bufs = rate_bufs;
    }

    /// Starvation-watch bookkeeping: one flow of `cid` crossed the
    /// [`FLOWING_EPS`] threshold. `gained` means zero → positive rate.
    /// Runs unconditionally — the starvation fields in
    /// [`CoflowResult`] never depend on whether telemetry is armed.
    fn coflow_rate_transition(&mut self, cid: CoflowId, gained: bool) {
        let Some(cf) = self.coflows.get_mut(&cid) else {
            return; // completed in this same instant; interval already closed
        };
        if gained {
            cf.flowing += 1;
            if cf.flowing == 1 {
                if let Some(since) = cf.starved_since.take() {
                    let dur = self.now - since;
                    if dur > 0.0 {
                        cf.starved_total += dur;
                        cf.starved_max = cf.starved_max.max(dur);
                        if self.probe.on() {
                            self.probe.emit(&TraceRecord::CoflowStarved {
                                t: self.now,
                                coflow: cid.index(),
                                dur,
                            });
                        }
                    }
                }
            }
        } else {
            cf.flowing -= 1;
            if cf.flowing == 0 {
                cf.starved_since = Some(self.now);
            }
        }
    }

    /// Emits an [`EpochSample`] when at least one sample interval of
    /// simulation time has passed since the previous one. Only called
    /// when the probe is armed, so the disabled path never pays for the
    /// snapshot below.
    fn maybe_sample(&mut self) {
        if self.now < self.probe.next_sample {
            return;
        }
        let sample = self.build_sample();
        self.probe.next_sample = self.now + self.probe.sample_interval;
        self.probe.emit(&TraceRecord::Epoch(sample));
    }

    /// Snapshots queue/link/coflow/allocator state into an
    /// [`EpochSample`]. Read-only: O(flows · path) once per sample
    /// interval, never on the disabled path.
    fn build_sample(&self) -> EpochSample {
        let nq = self.plane.num_queues();
        let mut queue_occupancy = vec![0usize; nq];
        let mut queue_rate = vec![0.0f64; nq];
        let mut parked_flows = 0usize;
        let mut link_rate: HashMap<usize, f64> = HashMap::new();
        for (pos, f) in self.flows.iter().enumerate() {
            if f.parked {
                parked_flows += 1;
                continue;
            }
            queue_occupancy[f.queue] += 1;
            let rate = self.hot.rate[pos];
            if rate > FLOWING_EPS && rate.is_finite() {
                queue_rate[f.queue] += rate;
                for l in self.arena.get(self.hot.path[pos]) {
                    *link_rate.entry(l.index()).or_insert(0.0) += rate;
                }
            }
        }
        let total_rate: f64 = queue_rate.iter().sum();
        let queue_service_share = if total_rate > 0.0 {
            queue_rate.iter().map(|r| r / total_rate).collect()
        } else {
            queue_rate
        };
        let mut max_util = 0.0f64;
        let mut util_sum = 0.0f64;
        // Sum in link-index order: HashMap iteration order varies per
        // process, and f64 addition is order-sensitive — an unordered
        // sum would make the mean differ across identical runs.
        let mut busy: Vec<usize> = link_rate.keys().copied().collect();
        busy.sort_unstable();
        for li in busy {
            let rate = link_rate[&li];
            let cap = self.fabric.link_capacity(LinkId(li)) * self.overlay.scale(LinkId(li));
            let util = if cap > 0.0 { rate / cap } else { 0.0 };
            max_util = max_util.max(util);
            util_sum += util;
        }
        let links_busy = link_rate.len();
        let starved_coflows = self
            .active_coflows
            .iter()
            .filter(|cid| {
                let cf = &self.coflows[cid];
                cf.open_flows > 0 && cf.flowing == 0
            })
            .count();
        EpochSample {
            t: self.now,
            events: self.events,
            event_queue_depth: self.queue.len(),
            active_flows: self.flows.len(),
            parked_flows,
            active_coflows: self.active_coflows.len(),
            starved_coflows,
            queue_occupancy,
            queue_service_share,
            links_busy,
            max_link_utilization: max_util,
            mean_link_utilization: if links_busy > 0 {
                util_sum / links_busy as f64
            } else {
                0.0
            },
            pending_control_updates: self.plane.pending_updates(),
            degraded_links: self.overlay.num_degraded() + self.overlay.num_dead(),
            alloc_full_passes: self.probe.full_passes,
            alloc_incremental_passes: self.probe.incremental_passes,
            alloc_component_flows: self.probe.component_flows,
            alloc_seed_links: self.probe.seed_links,
            alloc_touched_links: self.last_alloc_touched,
            alloc_waterfill_passes: self.last_alloc_passes,
            alloc_component_calls: self.probe.component_calls,
            alloc_parallel_epochs: self.probe.parallel_epochs,
        }
    }

    fn schedule_followups(&mut self) {
        // Next completion, via the lazy completion index: pop entries
        // whose flow completed or whose rate was re-stamped since the
        // prediction was pushed; the top valid entry is the argmin. The
        // event time is recomputed from the flow's *current* state so it
        // is bit-identical to what a full scan over `flows` would find
        // (predictions are pushed before any `advance_to` drains
        // `remaining`, but `now + remaining/rate` is invariant along the
        // segment while the rate holds — up to the fresh division here).
        // The event time must be strictly after `now` in f64, or a
        // sub-epsilon residue would re-fire the same event with zero
        // progress forever; nudging by one ULP-scale step costs well
        // under a nanosecond of accuracy.
        let mut t_next = f64::INFINITY;
        while let Some(top) = self.finish_heap.peek() {
            match self.flow_pos.get(top.flow) {
                Some(pos) if self.flows[pos].stamp == top.stamp => {
                    debug_assert!(self.hot.rate[pos] > 1e-15);
                    t_next = self.now + self.hot.remaining[pos] / self.hot.rate[pos];
                    break;
                }
                _ => {
                    self.finish_heap.pop();
                }
            }
        }
        if t_next.is_finite() {
            let min_step = self.now.abs() * 1e-14 + 1e-12;
            if t_next <= self.now + min_step {
                t_next = self.now + min_step;
            }
            self.queue.push(Event {
                time: t_next,
                seq: self.seq,
                kind: EventKind::Completion {
                    generation: self.completion_generation,
                },
            });
            self.seq += 1;
        }
        // Next tick, while anything is in flight.
        if !self.tick_pending && !self.flows.is_empty() {
            self.queue.push(Event {
                time: self.now + self.config.tick_interval,
                seq: self.seq,
                kind: EventKind::Tick,
            });
            self.seq += 1;
            self.tick_pending = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FifoScheduler;
    use crate::topology::BigSwitch;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag};

    fn single_flow_job(id: usize, arrival: f64, src: usize, dst: usize, bytes: f64) -> JobSpec {
        JobSpec::new(
            id,
            arrival,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(src),
                HostId(dst),
                bytes,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap()
    }

    fn big_switch_sim() -> Simulation<BigSwitch> {
        Simulation::new(BigSwitch::new(8, 1.0 * MB), SimConfig::default())
    }

    #[test]
    fn fanned_advance_matches_serial_with_link_stats() {
        // More open flows than `PAR_MIN_ADVANCE_FLOWS` so the chunked
        // advance sweep engages, with link stats on so the
        // chunk-ordered per-link byte merge sits on the hot path; as
        // completions drain the table below the threshold the serial
        // sweep takes over, so one run crosses both variants. The
        // fanned run must reproduce the serial `RunResult` — including
        // `link_bytes` — byte for byte.
        let hosts = 64;
        let n = PAR_MIN_ADVANCE_FLOWS + 200;
        let flows: Vec<FlowSpec> = (0..n)
            .map(|i| {
                let src = i % hosts;
                let mut dst = (i * 7 + 1) % hosts;
                if dst == src {
                    dst = (dst + 1) % hosts;
                }
                let bytes = (1.0 + (i % 97) as f64 * 0.13) * MB;
                FlowSpec::new(HostId(src), HostId(dst), bytes)
            })
            .collect();
        let job = JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(flows)],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let run = |threads: usize| {
            let mut sim = Simulation::new(
                BigSwitch::new(hosts, 1.0 * MB),
                SimConfig {
                    threads,
                    collect_link_stats: true,
                    ..SimConfig::default()
                },
            );
            sim.run(vec![job.clone()], &mut FifoScheduler::new(1))
        };
        let serial = run(1);
        let fanned = run(4);
        assert!(!serial.link_bytes.is_empty(), "link stats were collected");
        assert!(
            serial == fanned,
            "fanned advance diverged from the serial sweep"
        );
    }

    #[test]
    fn single_flow_completes_at_exact_time() {
        let mut sim = big_switch_sim();
        let res = sim.run(
            vec![single_flow_job(0, 0.0, 0, 1, 10.0 * MB)],
            &mut FifoScheduler::new(1),
        );
        assert_eq!(res.jobs.len(), 1);
        assert!(
            (res.jobs[0].jct - 10.0).abs() < 1e-6,
            "jct = {}",
            res.jobs[0].jct
        );
        assert_eq!(res.coflows.len(), 1);
    }

    #[test]
    fn two_flows_share_a_downlink() {
        // Both flows into host 2: each gets half the 1 MB/s downlink.
        let mut sim = big_switch_sim();
        let jobs = vec![
            single_flow_job(0, 0.0, 0, 2, 5.0 * MB),
            single_flow_job(1, 0.0, 1, 2, 5.0 * MB),
        ];
        let res = sim.run(jobs, &mut FifoScheduler::new(1));
        assert_eq!(res.jobs.len(), 2);
        for j in &res.jobs {
            assert!((j.jct - 10.0).abs() < 1e-6, "jct = {}", j.jct);
        }
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut sim = big_switch_sim();
        let jobs = vec![
            single_flow_job(0, 0.0, 0, 2, 2.0 * MB),
            single_flow_job(1, 0.0, 1, 2, 6.0 * MB),
        ];
        let res = sim.run(jobs, &mut FifoScheduler::new(1));
        // Fair share: both at 0.5 until t=4 (short done: 2MB at 0.5),
        // then long has 4MB left at full rate -> done at t=8.
        let j0 = res.jobs.iter().find(|j| j.id == JobId(0)).unwrap();
        let j1 = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap();
        assert!((j0.jct - 4.0).abs() < 1e-6, "short jct {}", j0.jct);
        assert!((j1.jct - 8.0).abs() < 1e-6, "long jct {}", j1.jct);
    }

    #[test]
    fn staggered_arrivals_are_respected() {
        let mut sim = big_switch_sim();
        let jobs = vec![
            single_flow_job(0, 0.0, 0, 2, 2.0 * MB),
            single_flow_job(1, 100.0, 1, 3, 2.0 * MB),
        ];
        let res = sim.run(jobs, &mut FifoScheduler::new(1));
        let j1 = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap();
        assert!((j1.completed_at - 102.0).abs() < 1e-6);
        assert!((j1.jct - 2.0).abs() < 1e-6);
    }

    #[test]
    fn chain_job_runs_stages_sequentially() {
        let coflows = vec![
            CoflowSpec::new(vec![FlowSpec::new(HostId(0), HostId(1), 3.0 * MB)]),
            CoflowSpec::new(vec![FlowSpec::new(HostId(1), HostId(2), 2.0 * MB)]),
        ];
        let job = JobSpec::new(0, 0.0, coflows, JobDag::chain(2).unwrap()).unwrap();
        let mut sim = big_switch_sim();
        let res = sim.run(vec![job], &mut FifoScheduler::new(1));
        assert!(
            (res.jobs[0].jct - 5.0).abs() < 1e-6,
            "jct {}",
            res.jobs[0].jct
        );
        assert_eq!(res.coflows.len(), 2);
        // Stage 1 activates exactly when stage 0 completes.
        let c0 = res.coflows.iter().find(|c| c.dag_vertex == 0).unwrap();
        let c1 = res.coflows.iter().find(|c| c.dag_vertex == 1).unwrap();
        assert!((c1.activated_at - c0.completed_at).abs() < 1e-9);
    }

    #[test]
    fn parallel_chains_advance_independently() {
        // Two chains joined by a root: chain A short, chain B long; A's
        // second stage must start before B's first finishes.
        let coflows = vec![
            CoflowSpec::new(vec![FlowSpec::new(HostId(0), HostId(1), 1.0 * MB)]), // A0
            CoflowSpec::new(vec![FlowSpec::new(HostId(1), HostId(2), 1.0 * MB)]), // A1
            CoflowSpec::new(vec![FlowSpec::new(HostId(3), HostId(4), 8.0 * MB)]), // B0
            CoflowSpec::new(vec![FlowSpec::new(HostId(4), HostId(5), 1.0 * MB)]), // B1
            CoflowSpec::new(vec![FlowSpec::new(HostId(5), HostId(6), 1.0 * MB)]), // root
        ];
        let dag = JobDag::new(5, &[(0, 1), (2, 3), (1, 4), (3, 4)]).unwrap();
        let job = JobSpec::new(0, 0.0, coflows, dag).unwrap();
        let mut sim = big_switch_sim();
        let res = sim.run(vec![job], &mut FifoScheduler::new(1));
        let a1 = res.coflows.iter().find(|c| c.dag_vertex == 1).unwrap();
        let b0 = res.coflows.iter().find(|c| c.dag_vertex == 2).unwrap();
        assert!(
            a1.activated_at < b0.completed_at,
            "parallel chain A stalled behind B"
        );
        // JCT: chain B dominates (8 + 1), then root (1): 10s total.
        assert!(
            (res.jobs[0].jct - 10.0).abs() < 1e-6,
            "jct {}",
            res.jobs[0].jct
        );
    }

    #[test]
    fn local_flows_complete_instantly() {
        let mut sim = big_switch_sim();
        let res = sim.run(
            vec![single_flow_job(0, 1.0, 3, 3, 4.0 * MB)],
            &mut FifoScheduler::new(1),
        );
        assert!(res.jobs[0].jct.abs() < 1e-9);
    }

    #[test]
    fn conservation_of_bytes() {
        let mut sim = big_switch_sim();
        let jobs = vec![
            single_flow_job(0, 0.0, 0, 2, 3.0 * MB),
            single_flow_job(1, 0.5, 1, 2, 4.0 * MB),
        ];
        let total: f64 = jobs.iter().map(|j| j.total_bytes()).sum();
        let res = sim.run(jobs, &mut FifoScheduler::new(1));
        let delivered: f64 = res.coflows.iter().map(|c| c.bytes).sum();
        assert!((delivered - total).abs() < 1.0);
    }

    #[test]
    fn event_budget_guard_fires() {
        let mut sim = Simulation::new(
            BigSwitch::new(8, 1.0 * MB),
            SimConfig {
                max_events: 2,
                ..SimConfig::default()
            },
        );
        let jobs = vec![
            single_flow_job(0, 0.0, 0, 2, 30.0 * MB),
            single_flow_job(1, 0.0, 1, 2, 30.0 * MB),
        ];
        let err = sim.try_run(jobs, &mut FifoScheduler::new(1)).unwrap_err();
        assert_eq!(err, SimError::EventBudgetExhausted { max_events: 2 });
    }

    #[test]
    fn link_stats_account_carried_bytes() {
        let mut sim = Simulation::new(
            BigSwitch::new(8, 1.0 * MB),
            SimConfig {
                collect_link_stats: true,
                ..SimConfig::default()
            },
        );
        let res = sim.run(
            vec![single_flow_job(0, 0.0, 0, 1, 3.0 * MB)],
            &mut FifoScheduler::new(1),
        );
        // Uplink of host 0 and downlink of host 1 each carried ~3 MB.
        assert_eq!(res.link_bytes.len(), 2);
        for &(_, bytes) in &res.link_bytes {
            assert!((bytes - 3.0 * MB).abs() < 1.0, "carried {bytes}");
        }
        // Disabled by default.
        let mut sim = Simulation::new(BigSwitch::new(8, 1.0 * MB), SimConfig::default());
        let res = sim.run(
            vec![single_flow_job(0, 0.0, 0, 1, MB)],
            &mut FifoScheduler::new(1),
        );
        assert!(res.link_bytes.is_empty());
    }

    #[test]
    fn mid_run_degrade_and_restore_stretch_completion() {
        use crate::faults::{FaultEvent, FaultSchedule};
        // 10 MB at 1 MB/s; halve the path for t in [2, 6): 2 MB by t=2,
        // 2 MB more by t=6, remaining 6 MB at full rate -> done at t=12.
        let mut sim = big_switch_sim();
        let mut faults = FaultSchedule::new();
        faults
            .push(
                2.0,
                FaultEvent::BrownoutHost {
                    host: HostId(1),
                    factor: 0.5,
                },
            )
            .push(6.0, FaultEvent::RestoreHost { host: HostId(1) });
        let res = sim.run_with_faults(
            vec![single_flow_job(0, 0.0, 0, 1, 10.0 * MB)],
            &mut FifoScheduler::new(1),
            &faults,
        );
        assert!(
            (res.jobs[0].jct - 12.0).abs() < 1e-6,
            "jct {}",
            res.jobs[0].jct
        );
        assert_eq!(res.faults.len(), 2);
        assert_eq!(res.flows_rerouted + res.flows_parked, 0);
    }

    #[test]
    fn failed_link_parks_flow_until_recovery() {
        use crate::faults::{FaultEvent, FaultSchedule};
        use crate::topology::LinkId;
        // BigSwitch has a single path per pair, so a hard failure cannot
        // be rerouted: the flow parks, holds its bytes, and resumes.
        // 10 MB: 3 MB by t=3, parked for [3, 8), done at 8 + 7 = 15.
        let mut sim = big_switch_sim();
        let mut faults = FaultSchedule::new();
        faults
            .push(3.0, FaultEvent::FailLink { link: LinkId(0) })
            .push(8.0, FaultEvent::RecoverLink { link: LinkId(0) });
        let res = sim.run_with_faults(
            vec![single_flow_job(0, 0.0, 0, 1, 10.0 * MB)],
            &mut FifoScheduler::new(1),
            &faults,
        );
        assert!(
            (res.jobs[0].jct - 15.0).abs() < 1e-6,
            "jct {}",
            res.jobs[0].jct
        );
        assert_eq!(res.flows_parked, 1);
        assert_eq!(res.flows_resumed, 1);
        assert_eq!(res.jobs[0].fault_parks, 1);
        let fail = &res.faults[0];
        assert_eq!(fail.parked, 1);
        let recover = &res.faults[1];
        assert_eq!(recover.resumed, 1);
    }

    #[test]
    fn stranded_flows_error_when_no_recovery_is_scheduled() {
        use crate::faults::{FaultEvent, FaultSchedule};
        use crate::topology::LinkId;
        let mut sim = big_switch_sim();
        let mut faults = FaultSchedule::new();
        faults.push(1.0, FaultEvent::FailLink { link: LinkId(0) });
        let err = sim
            .try_run_with_faults(
                vec![single_flow_job(0, 0.0, 0, 1, 10.0 * MB)],
                &mut FifoScheduler::new(1),
                &faults,
            )
            .unwrap_err();
        assert_eq!(err, SimError::StrandedFlows { parked: 1 });
    }

    #[test]
    fn invalid_schedule_is_rejected_up_front() {
        use crate::faults::{FaultEvent, FaultSchedule};
        use crate::topology::LinkId;
        let mut sim = big_switch_sim();
        let mut faults = FaultSchedule::new();
        faults.push(1.0, FaultEvent::FailLink { link: LinkId(999) });
        let err = sim
            .try_run_with_faults(
                vec![single_flow_job(0, 0.0, 0, 1, MB)],
                &mut FifoScheduler::new(1),
                &faults,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFault { .. }), "{err}");
    }

    #[test]
    fn fat_tree_reroutes_around_a_failed_core_path() {
        use crate::faults::{FaultEvent, FaultSchedule};
        use crate::topology::FatTree;
        // Cross-pod traffic on a fat-tree has multiple ECMP paths; kill
        // one link of the flow's current path and the flow must move to
        // another path and still finish (no park, no stall).
        let fabric = FatTree::with_capacity(4, 1.0 * MB).unwrap();
        let flow_path = fabric.path(HostId(0), HostId(8), 0).unwrap();
        // Pick a core-facing link (not the first/last hop, which are the
        // hosts' only NICs).
        let mid = flow_path[1];
        let job = || vec![single_flow_job(0, 0.0, 0, 8, 10.0 * MB)];
        let healthy = {
            let mut sim = Simulation::new(fabric.clone(), SimConfig::default());
            sim.run(job(), &mut FifoScheduler::new(1))
        };
        let mut sim = Simulation::new(fabric, SimConfig::default());
        let mut faults = FaultSchedule::new();
        let mid_fault = healthy.jobs[0].jct / 2.0;
        faults
            .push(mid_fault, FaultEvent::FailLink { link: mid })
            .push(1e6, FaultEvent::RecoverLink { link: mid });
        let res = sim.run_with_faults(job(), &mut FifoScheduler::new(1), &faults);
        assert_eq!(res.jobs.len(), 1);
        assert_eq!(res.flows_rerouted, 1, "flow should re-salt, not park");
        assert_eq!(res.flows_parked, 0);
        assert_eq!(res.jobs[0].fault_reroutes, 1);
        // The detour has identical capacity, and delivered bytes are
        // preserved across the reroute: completion time is unchanged.
        assert!(
            (res.jobs[0].jct - healthy.jobs[0].jct).abs() < 1e-6,
            "jct {} vs healthy {}",
            res.jobs[0].jct,
            healthy.jobs[0].jct
        );
    }

    #[test]
    fn flows_activated_during_an_outage_route_around_it() {
        use crate::faults::{FaultEvent, FaultSchedule};
        use crate::topology::FatTree;
        let fabric = FatTree::with_capacity(4, 1.0 * MB).unwrap();
        let future_path = fabric.path(HostId(0), HostId(8), 0).unwrap();
        let mid = future_path[1];
        let job = |arrival: f64| vec![single_flow_job(0, arrival, 0, 8, 5.0 * MB)];
        let healthy = {
            let mut sim = Simulation::new(fabric.clone(), SimConfig::default());
            sim.run(job(0.0), &mut FifoScheduler::new(1))
        };
        let mut sim = Simulation::new(fabric, SimConfig::default());
        let mut faults = FaultSchedule::new();
        faults
            .push(0.5, FaultEvent::FailLink { link: mid })
            .push(1e6, FaultEvent::RecoverLink { link: mid });
        // Job arrives while the link is down; its natural path would
        // cross the dead link, so activation must pick a live detour and
        // run at full speed from the start.
        let res = sim.run_with_faults(job(1.0), &mut FifoScheduler::new(1), &faults);
        assert_eq!(res.flows_parked, 0);
        assert!(
            (res.jobs[0].jct - healthy.jobs[0].jct).abs() < 1e-6,
            "jct {} vs healthy {}",
            res.jobs[0].jct,
            healthy.jobs[0].jct
        );
    }

    #[test]
    fn makespan_and_event_counts_recorded() {
        let mut sim = big_switch_sim();
        let res = sim.run(
            vec![single_flow_job(0, 0.0, 0, 1, MB)],
            &mut FifoScheduler::new(1),
        );
        assert!(res.makespan >= 1.0 - 1e-6);
        assert!(res.events >= 2);
        assert_eq!(res.scheduler, "fifo");
    }

    // ---- steppable core / online admission ----

    fn online_fixture() -> (BigSwitch, SimConfig) {
        (BigSwitch::new(8, 1.0 * MB), SimConfig::default())
    }

    #[test]
    fn online_t0_submission_matches_offline_run() {
        let jobs = vec![
            single_flow_job(0, 0.0, 0, 2, 5.0 * MB),
            single_flow_job(1, 0.5, 1, 2, 5.0 * MB),
            single_flow_job(2, 2.0, 3, 4, 2.0 * MB),
        ];
        let mut sim = big_switch_sim();
        let mut sched = FifoScheduler::new(1);
        let offline = sim.run(jobs.clone(), &mut sched);

        let (fabric, config) = online_fixture();
        let mut sched = FifoScheduler::new(1);
        let mut plane = Centralized::new(&mut sched);
        let mut engine =
            Engine::online(&fabric, &config, &mut plane, &FaultSchedule::new()).unwrap();
        for job in jobs {
            engine.submit_job(job).unwrap();
        }
        assert_eq!(engine.run_to_drained().unwrap(), StepOutcome::Drained);
        let online = engine.finish();
        assert_eq!(offline, online, "online t=0 path must be bit-for-bit");
    }

    #[test]
    fn mid_run_submission_is_admitted_and_completes() {
        let (fabric, config) = online_fixture();
        let mut sched = FifoScheduler::new(1);
        let mut plane = Centralized::new(&mut sched);
        let mut engine =
            Engine::online(&fabric, &config, &mut plane, &FaultSchedule::new()).unwrap();
        engine
            .submit_job(single_flow_job(0, 0.0, 0, 2, 5.0 * MB))
            .unwrap();
        // Run partway, then admit a second job dated in the past: its
        // arrival must clamp to the current virtual time.
        engine.run_until(2.0).unwrap();
        assert!(engine.now() > 0.0 && engine.now() <= 2.0);
        let id = engine
            .submit_job(single_flow_job(1, 0.0, 1, 2, 5.0 * MB))
            .unwrap();
        assert_eq!(engine.job_phase(id), JobPhase::Pending);
        assert_eq!(engine.run_to_drained().unwrap(), StepOutcome::Drained);
        let res = engine.finish();
        assert_eq!(res.jobs.len(), 2);
        let late = res.jobs.iter().find(|j| j.id == JobId(1)).unwrap();
        assert!(
            late.arrival >= 2.0 - 1e-9,
            "arrival clamped to admission time"
        );
        assert!((late.jct - (late.completed_at - late.arrival)).abs() < 1e-9);
    }

    #[test]
    fn duplicate_and_unknown_host_submissions_are_rejected() {
        let (fabric, config) = online_fixture();
        let mut sched = FifoScheduler::new(1);
        let mut plane = Centralized::new(&mut sched);
        let mut engine =
            Engine::online(&fabric, &config, &mut plane, &FaultSchedule::new()).unwrap();
        engine
            .submit_job(single_flow_job(0, 0.0, 0, 1, MB))
            .unwrap();
        assert_eq!(
            engine.submit_job(single_flow_job(0, 0.0, 2, 3, MB)),
            Err(SimError::DuplicateJob { job: 0 })
        );
        assert_eq!(
            engine.submit_job(single_flow_job(1, 0.0, 0, 99, MB)),
            Err(SimError::UnknownHost {
                host: 99,
                num_hosts: 8
            })
        );
        // The rejected submissions left the engine intact.
        assert_eq!(engine.outstanding_jobs(), 1);
        engine.run_to_drained().unwrap();
        assert_eq!(engine.finish().jobs.len(), 1);
    }

    #[test]
    fn cancel_pending_and_running_jobs() {
        let (fabric, config) = online_fixture();
        let mut sched = FifoScheduler::new(1);
        let mut plane = Centralized::new(&mut sched);
        let mut engine =
            Engine::online(&fabric, &config, &mut plane, &FaultSchedule::new()).unwrap();
        engine
            .submit_job(single_flow_job(0, 0.0, 0, 2, 5.0 * MB))
            .unwrap();
        engine
            .submit_job(single_flow_job(1, 0.0, 1, 2, 5.0 * MB))
            .unwrap();
        engine
            .submit_job(single_flow_job(2, 50.0, 3, 4, MB))
            .unwrap();
        engine.run_until(1.0).unwrap();
        // Job 1 is running (sharing the host-2 downlink); job 2 pending.
        assert!(matches!(
            engine.job_phase(JobId(1)),
            JobPhase::Running { .. }
        ));
        assert!(engine.cancel_job(JobId(1)));
        assert_eq!(engine.job_phase(JobId(1)), JobPhase::Cancelled);
        assert!(engine.cancel_job(JobId(2)));
        assert!(!engine.cancel_job(JobId(2)), "double cancel is a no-op");
        assert!(!engine.cancel_job(JobId(9)), "unknown id is a no-op");
        assert_eq!(engine.run_to_drained().unwrap(), StepOutcome::Drained);
        let res = engine.finish();
        assert_eq!(res.jobs.len(), 1);
        assert_eq!(res.jobs_cancelled, 2);
        // With the competitor cancelled at t=1, job 0 has 4.5 MB left at
        // the full 1 MB/s: done at 5.5s, faster than the shared 7.5s.
        assert!(
            (res.jobs[0].jct - 5.5).abs() < 1e-6,
            "jct {}",
            res.jobs[0].jct
        );
    }

    #[test]
    fn drained_engine_accepts_further_submissions() {
        let (fabric, config) = online_fixture();
        let mut sched = FifoScheduler::new(1);
        let mut plane = Centralized::new(&mut sched);
        let mut engine =
            Engine::online(&fabric, &config, &mut plane, &FaultSchedule::new()).unwrap();
        engine
            .submit_job(single_flow_job(0, 0.0, 0, 1, MB))
            .unwrap();
        assert_eq!(engine.run_to_drained().unwrap(), StepOutcome::Drained);
        assert!(engine.drained());
        engine
            .submit_job(single_flow_job(1, 0.0, 1, 2, MB))
            .unwrap();
        assert!(!engine.drained());
        assert_eq!(engine.run_to_drained().unwrap(), StepOutcome::Drained);
        let res = engine.finish();
        assert_eq!(res.jobs.len(), 2);
        assert!(res.jobs[1].completed_at > res.jobs[0].completed_at);
    }

    #[test]
    fn run_until_honors_the_horizon() {
        let (fabric, config) = online_fixture();
        let mut sched = FifoScheduler::new(1);
        let mut plane = Centralized::new(&mut sched);
        let mut engine =
            Engine::online(&fabric, &config, &mut plane, &FaultSchedule::new()).unwrap();
        engine
            .submit_job(single_flow_job(0, 0.0, 0, 1, 10.0 * MB))
            .unwrap();
        engine
            .submit_job(single_flow_job(1, 20.0, 1, 2, MB))
            .unwrap();
        let out = engine.run_until(12.0).unwrap();
        assert_eq!(out, StepOutcome::Idle, "job 1 still outstanding");
        assert!(engine.now() <= 12.0);
        assert_eq!(
            engine.completed_jobs().len(),
            1,
            "job 0 done inside horizon"
        );
        assert!(matches!(
            engine.job_phase(JobId(0)),
            JobPhase::Completed { .. }
        ));
        assert_eq!(
            engine.run_until(f64::INFINITY).unwrap(),
            StepOutcome::Drained
        );
        assert_eq!(engine.finish().jobs.len(), 2);
    }
}
