//! Flow-level discrete-event datacenter network simulator.
//!
//! This crate is the evaluation substrate of the Gurita reproduction: a
//! fluid (flow-level) simulator that, exactly like the paper's own,
//! "accounts for the flow arrival and departure events, rather than packet
//! sending and receiving events \[and\] updates the rate and the remaining
//! volume of each flow when an event occurs".
//!
//! # Components
//!
//! * [`topology`] — datacenter fabrics: the k-pod [`topology::FatTree`]
//!   (with ECMP multipathing) used in the evaluation, and the
//!   [`topology::BigSwitch`] non-blocking abstraction used for analysis;
//! * [`bandwidth`] — weighted max-min ("water-filling") bandwidth
//!   allocation with strict-priority-queue (SPQ) and weighted-round-robin
//!   (WRR) service disciplines;
//! * [`sched`] — the [`sched::Scheduler`] trait through which any coflow
//!   scheduler observes the system (receiver-side observations plus an
//!   explicit oracle side channel for centralized/clairvoyant schemes) and
//!   assigns priorities;
//! * [`control`] — the control-plane layering: [`control::Centralized`]
//!   (wraps any scheduler, instantaneous global view) vs
//!   [`control::Decentralized`] (per-host [`control::HostAgent`]s over
//!   [`control::LocalObservation`]s, with priority updates propagated
//!   through the event loop after a configurable latency);
//! * [`runtime`] — the event loop driving jobs through their coflow DAGs;
//! * [`stats`] — per-job/per-coflow completion records;
//! * [`telemetry`] — opt-in instrumentation: lifecycle event tracing,
//!   epoch-sampled queue/link/allocator time series, and a Chrome
//!   `trace_event` (Perfetto) exporter, all guaranteed not to perturb
//!   results.
//!
//! # Example
//!
//! ```
//! use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec, units};
//! use gurita_sim::runtime::{SimConfig, Simulation};
//! use gurita_sim::sched::FifoScheduler;
//! use gurita_sim::topology::FatTree;
//!
//! let fabric = FatTree::new(4)?;
//! let job = JobSpec::new(
//!     0,
//!     0.0,
//!     vec![CoflowSpec::new(vec![FlowSpec::new(
//!         HostId(0),
//!         HostId(8),
//!         10.0 * units::MB,
//!     )])],
//!     JobDag::chain(1)?,
//! )?;
//! let mut sim = Simulation::new(fabric, SimConfig::default());
//! let result = sim.run(vec![job], &mut FifoScheduler::new(1));
//! assert_eq!(result.jobs.len(), 1);
//! assert!(result.jobs[0].jct > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod control;
pub mod faults;
pub mod metrics;
pub use gurita_pool as pool;
pub mod runtime;
pub mod sched;
pub mod stats;
pub mod telemetry;
pub mod thresholds;
pub mod topology;

mod calendar;
mod error;

pub use error::SimError;
