//! Fault injection: degraded fabrics and time-scheduled fault events.
//!
//! Datacenter links brown out (lossy optics, unbalanced LAGs, partial
//! switch failures) far more often than they fail cleanly — and real
//! incidents are *dynamic*: capacity sags mid-run, links die, and both
//! recover while jobs are in flight. Two layers model this:
//!
//! * **Static degradation** — [`DegradedFabric`] wraps any [`Fabric`]
//!   and scales selected links' capacities by per-link factors frozen at
//!   construction, for steady-state brown-out experiments.
//! * **Scheduled faults** — a [`FaultSchedule`] of timed [`FaultEvent`]s
//!   delivered through the simulator event loop
//!   ([`crate::runtime::Simulation::try_run_with_faults`]). The engine
//!   maintains a [`FaultOverlay`] of live capacity factors and dead
//!   links; on a hard [`FaultEvent::FailLink`] it reroutes affected
//!   flows via ECMP re-salting (preserving bytes already delivered) and
//!   parks flows with no surviving path until the matching
//!   [`FaultEvent::RecoverLink`]. [`MutableFabric`] exposes the same
//!   overlay as a standalone [`Fabric`] for tests and tools.
//!
//! Degradations never touch routing (ECMP stays oblivious, exactly like
//! real unequal-capacity incidents); only hard failures do.

use crate::topology::{Fabric, LinkId, PathArena, PathRef};
use crate::SimError;
use gurita_model::HostId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A fabric with per-link capacity degradation factors.
///
/// # Example
///
/// ```
/// use gurita_sim::faults::DegradedFabric;
/// use gurita_sim::topology::{BigSwitch, Fabric, LinkId};
/// let base = BigSwitch::new(4, 100.0);
/// let faulty = DegradedFabric::new(base).with_degraded_link(LinkId(0), 0.25);
/// assert_eq!(faulty.link_capacity(LinkId(0)), 25.0);
/// assert_eq!(faulty.link_capacity(LinkId(1)), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedFabric<F> {
    inner: F,
    factors: HashMap<usize, f64>,
}

impl<F: Fabric> DegradedFabric<F> {
    /// Wraps a fabric with no degradations.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            factors: HashMap::new(),
        }
    }

    /// Degrades one link to `factor` of its capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1` (a zero-capacity link would stall
    /// every flow routed over it forever; model hard failures with a
    /// [`FaultSchedule`] instead) and the link exists. Use
    /// [`DegradedFabric::try_with_degraded_link`] for a fallible variant.
    pub fn with_degraded_link(self, link: LinkId, factor: f64) -> Self {
        self.try_with_degraded_link(link, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`DegradedFabric::with_degraded_link`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] if `factor` is outside `(0, 1]` or the
    /// link does not exist.
    pub fn try_with_degraded_link(mut self, link: LinkId, factor: f64) -> Result<Self, SimError> {
        validate_factor(factor)?;
        if link.index() >= self.inner.num_links() {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "link {} out of range (fabric has {} links)",
                    link.index(),
                    self.inner.num_links()
                ),
            });
        }
        self.factors.insert(link.index(), factor);
        Ok(self)
    }

    /// Degrades every link of `host`'s up/down pair (NIC brown-out) on
    /// fabrics following the convention that link `h` is host `h`'s
    /// uplink and link `num_hosts + h` its downlink (both provided
    /// fabrics do).
    ///
    /// # Panics
    ///
    /// Panics on an invalid factor or host. Use
    /// [`DegradedFabric::try_with_degraded_host`] for a fallible variant.
    pub fn with_degraded_host(self, host: HostId, factor: f64) -> Self {
        self.try_with_degraded_host(host, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`DegradedFabric::with_degraded_host`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] if `factor` is outside `(0, 1]` or the
    /// host does not exist.
    pub fn try_with_degraded_host(self, host: HostId, factor: f64) -> Result<Self, SimError> {
        let n = self.inner.num_hosts();
        if host.index() >= n {
            return Err(SimError::InvalidFault {
                reason: format!("host {host} out of range (fabric has {n} hosts)"),
            });
        }
        self.try_with_degraded_link(LinkId(host.index()), factor)?
            .try_with_degraded_link(LinkId(n + host.index()), factor)
    }

    /// Number of degraded links.
    pub fn num_degraded(&self) -> usize {
        self.factors.len()
    }

    /// Borrows the wrapped fabric.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: Fabric> Fabric for DegradedFabric<F> {
    fn num_hosts(&self) -> usize {
        self.inner.num_hosts()
    }

    fn num_links(&self) -> usize {
        self.inner.num_links()
    }

    fn link_capacity(&self, l: LinkId) -> f64 {
        let base = self.inner.link_capacity(l);
        match self.factors.get(&l.index()) {
            Some(&f) => base * f,
            None => base,
        }
    }

    fn path(&self, src: HostId, dst: HostId, salt: u64) -> Result<Vec<LinkId>, SimError> {
        self.inner.path(src, dst, salt)
    }

    fn path_ref(
        &self,
        src: HostId,
        dst: HostId,
        salt: u64,
        arena: &mut PathArena,
    ) -> Result<PathRef, SimError> {
        self.inner.path_ref(src, dst, salt, arena)
    }
}

fn validate_factor(factor: f64) -> Result<(), SimError> {
    if factor > 0.0 && factor <= 1.0 {
        Ok(())
    } else {
        Err(SimError::InvalidFault {
            reason: format!("degradation factor must be in (0, 1], got {factor}"),
        })
    }
}

/// One fault, applied instantaneously when its scheduled time is
/// reached.
///
/// Link-level events address a single directed link; host-level events
/// address both links of a host's up/down NIC pair. `Degrade`/`Brownout`
/// scale capacity (soft fault: routing untouched); `Fail` removes the
/// link entirely (hard fault: flows reroute or park).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Scale one link to `factor` of its base capacity.
    DegradeLink {
        /// The affected link.
        link: LinkId,
        /// Remaining fraction of capacity, in `(0, 1]`.
        factor: f64,
    },
    /// Remove any degradation from one link.
    RestoreLink {
        /// The affected link.
        link: LinkId,
    },
    /// Hard-fail one link: capacity drops to zero and flows routed over
    /// it are rerouted (fresh ECMP salts) or parked.
    FailLink {
        /// The affected link.
        link: LinkId,
    },
    /// Bring a hard-failed link back; parked flows resume.
    RecoverLink {
        /// The affected link.
        link: LinkId,
    },
    /// Scale both links of a host's NIC pair to `factor` (brown-out).
    BrownoutHost {
        /// The affected host.
        host: HostId,
        /// Remaining fraction of capacity, in `(0, 1]`.
        factor: f64,
    },
    /// Remove any degradation from a host's NIC pair.
    RestoreHost {
        /// The affected host.
        host: HostId,
    },
    /// Hard-fail both links of a host's NIC pair.
    FailHost {
        /// The affected host.
        host: HostId,
    },
    /// Bring a hard-failed host back; parked flows resume.
    RecoverHost {
        /// The affected host.
        host: HostId,
    },
}

impl FaultEvent {
    /// The directed links this event addresses on a fabric with
    /// `num_hosts` hosts (host events expand to the up/down pair).
    pub fn links(&self, num_hosts: usize) -> Vec<LinkId> {
        match *self {
            FaultEvent::DegradeLink { link, .. }
            | FaultEvent::RestoreLink { link }
            | FaultEvent::FailLink { link }
            | FaultEvent::RecoverLink { link } => vec![link],
            FaultEvent::BrownoutHost { host, .. }
            | FaultEvent::RestoreHost { host }
            | FaultEvent::FailHost { host }
            | FaultEvent::RecoverHost { host } => {
                vec![LinkId(host.index()), LinkId(num_hosts + host.index())]
            }
        }
    }

    /// Whether this event kills links (hard failure).
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            FaultEvent::FailLink { .. } | FaultEvent::FailHost { .. }
        )
    }

    /// Whether this event revives previously hard-failed links.
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            FaultEvent::RecoverLink { .. } | FaultEvent::RecoverHost { .. }
        )
    }

    fn validate(&self, fabric: &impl Fabric) -> Result<(), SimError> {
        if let FaultEvent::DegradeLink { factor, .. } | FaultEvent::BrownoutHost { factor, .. } =
            self
        {
            validate_factor(*factor)?;
        }
        match *self {
            FaultEvent::BrownoutHost { host, .. }
            | FaultEvent::RestoreHost { host }
            | FaultEvent::FailHost { host }
            | FaultEvent::RecoverHost { host }
                if host.index() >= fabric.num_hosts() =>
            {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "host {host} out of range (fabric has {} hosts)",
                        fabric.num_hosts()
                    ),
                });
            }
            _ => {}
        }
        for l in self.links(fabric.num_hosts()) {
            if l.index() >= fabric.num_links() {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "link {} out of range (fabric has {} links)",
                        l.index(),
                        fabric.num_links()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A [`FaultEvent`] with its injection time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Simulation time at which the fault applies, in seconds.
    pub at: f64,
    /// The fault.
    pub event: FaultEvent,
}

/// A time-ordered script of faults injected into a run.
///
/// Build one with [`FaultSchedule::push`] (any insertion order; the
/// engine sequences events by time) and pass it to
/// [`crate::runtime::Simulation::try_run_with_faults`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// An empty schedule (equivalent to a healthy run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `event` at time `at`.
    pub fn push(&mut self, at: f64, event: FaultEvent) -> &mut Self {
        self.events.push(TimedFault { at, event });
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every entry against `fabric`: links/hosts must exist,
    /// factors must lie in `(0, 1]`, times must be finite and
    /// non-negative.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] describing the first offending entry.
    pub fn validate(&self, fabric: &impl Fabric) -> Result<(), SimError> {
        for tf in &self.events {
            if !tf.at.is_finite() || tf.at < 0.0 {
                return Err(SimError::InvalidFault {
                    reason: format!("fault time must be finite and >= 0, got {}", tf.at),
                });
            }
            tf.event.validate(fabric)?;
        }
        Ok(())
    }
}

/// Live capacity state accumulated from applied [`FaultEvent`]s:
/// per-link degradation factors plus the set of hard-failed links.
///
/// The runtime owns one per faulted run; [`MutableFabric`] packages one
/// with a base fabric for standalone use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultOverlay {
    factors: HashMap<usize, f64>,
    dead: HashSet<usize>,
}

impl FaultOverlay {
    /// An overlay with no faults applied.
    pub fn new() -> Self {
        Self::default()
    }

    /// Multiplier on the base capacity of link `l`: `0.0` when the link
    /// is hard-failed, its degradation factor when browned out, `1.0`
    /// when healthy. The empty-overlay fast path matters: the engine
    /// queries every touched link on every rate recomputation, and
    /// healthy runs should not pay a hash lookup per query.
    pub fn scale(&self, l: LinkId) -> f64 {
        if self.dead.is_empty() && self.factors.is_empty() {
            return 1.0;
        }
        if self.dead.contains(&l.index()) {
            0.0
        } else {
            self.factors.get(&l.index()).copied().unwrap_or(1.0)
        }
    }

    /// Whether link `l` is hard-failed.
    pub fn is_dead(&self, l: LinkId) -> bool {
        !self.dead.is_empty() && self.dead.contains(&l.index())
    }

    /// Whether any link is hard-failed.
    pub fn has_failures(&self) -> bool {
        !self.dead.is_empty()
    }

    /// Whether `path` crosses a hard-failed link.
    pub fn path_is_dead(&self, path: &[LinkId]) -> bool {
        path.iter().any(|l| self.is_dead(*l))
    }

    /// Number of links currently degraded (browned out, not dead).
    pub fn num_degraded(&self) -> usize {
        self.factors.len()
    }

    /// Number of links currently hard-failed — read by telemetry epoch
    /// samples alongside [`FaultOverlay::num_degraded`].
    pub fn num_dead(&self) -> usize {
        self.dead.len()
    }

    /// Applies `event` (validated elsewhere) on a fabric with
    /// `num_hosts` hosts. Returns exactly which links changed, so the
    /// caller can invalidate only the rates the event actually touched
    /// (the runtime re-waterfills just the affected flow↔link
    /// component).
    pub fn apply(&mut self, event: &FaultEvent, num_hosts: usize) -> FaultImpact {
        let links = event.links(num_hosts);
        let mut impact = FaultImpact::default();
        for l in links {
            match event {
                FaultEvent::DegradeLink { factor, .. }
                | FaultEvent::BrownoutHost { factor, .. } => {
                    if self.factors.insert(l.index(), *factor) != Some(*factor) {
                        impact.rescaled.push(l);
                    }
                }
                FaultEvent::RestoreLink { .. } | FaultEvent::RestoreHost { .. } => {
                    if self.factors.remove(&l.index()).is_some() {
                        impact.rescaled.push(l);
                    }
                }
                FaultEvent::FailLink { .. } | FaultEvent::FailHost { .. } => {
                    if self.dead.insert(l.index()) {
                        impact.newly_dead.push(l);
                    }
                }
                FaultEvent::RecoverLink { .. } | FaultEvent::RecoverHost { .. } => {
                    if self.dead.remove(&l.index()) {
                        impact.revived.push(l);
                    }
                }
            }
        }
        impact
    }
}

/// Exactly which links one applied [`FaultEvent`] changed. Idempotent
/// re-applications (failing a dead link, restoring a healthy one,
/// re-degrading to the same factor) report nothing, so rate
/// invalidation stays proportional to real change.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultImpact {
    /// Links that transitioned live → hard-failed.
    pub newly_dead: Vec<LinkId>,
    /// Links that transitioned hard-failed → live.
    pub revived: Vec<LinkId>,
    /// Links whose capacity scale changed without a liveness change
    /// (degradations applied or lifted).
    pub rescaled: Vec<LinkId>,
}

impl FaultImpact {
    /// Whether the event changed nothing at all.
    pub fn is_empty(&self) -> bool {
        self.newly_dead.is_empty() && self.revived.is_empty() && self.rescaled.is_empty()
    }

    /// All changed links, in `newly_dead`, `revived`, `rescaled` order.
    pub fn changed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.newly_dead
            .iter()
            .chain(self.revived.iter())
            .chain(self.rescaled.iter())
            .copied()
    }
}

/// A fabric whose capacities change as faults are applied: a base
/// [`Fabric`] composed with a [`FaultOverlay`].
///
/// Hard-failed links report zero capacity; routing is delegated
/// unchanged (callers decide how to react to dead links, exactly as the
/// runtime does via rerouting/parking).
///
/// # Example
///
/// ```
/// use gurita_sim::faults::{FaultEvent, MutableFabric};
/// use gurita_sim::topology::{BigSwitch, Fabric, LinkId};
/// let mut fab = MutableFabric::new(BigSwitch::new(4, 100.0));
/// fab.apply(&FaultEvent::DegradeLink { link: LinkId(1), factor: 0.5 });
/// assert_eq!(fab.link_capacity(LinkId(1)), 50.0);
/// fab.apply(&FaultEvent::FailLink { link: LinkId(1) });
/// assert_eq!(fab.link_capacity(LinkId(1)), 0.0);
/// fab.apply(&FaultEvent::RecoverLink { link: LinkId(1) });
/// assert_eq!(fab.link_capacity(LinkId(1)), 50.0); // degradation persists
/// ```
#[derive(Debug, Clone)]
pub struct MutableFabric<F> {
    inner: F,
    overlay: FaultOverlay,
}

impl<F: Fabric> MutableFabric<F> {
    /// Wraps a healthy fabric.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            overlay: FaultOverlay::new(),
        }
    }

    /// Applies one fault event, mutating capacities in place. Returns
    /// exactly which links changed as a [`FaultImpact`].
    pub fn apply(&mut self, event: &FaultEvent) -> FaultImpact {
        let n = self.inner.num_hosts();
        self.overlay.apply(event, n)
    }

    /// The live fault state.
    pub fn overlay(&self) -> &FaultOverlay {
        &self.overlay
    }

    /// Borrows the wrapped fabric.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: Fabric> Fabric for MutableFabric<F> {
    fn num_hosts(&self) -> usize {
        self.inner.num_hosts()
    }

    fn num_links(&self) -> usize {
        self.inner.num_links()
    }

    fn link_capacity(&self, l: LinkId) -> f64 {
        self.inner.link_capacity(l) * self.overlay.scale(l)
    }

    fn path(&self, src: HostId, dst: HostId, salt: u64) -> Result<Vec<LinkId>, SimError> {
        self.inner.path(src, dst, salt)
    }

    fn path_ref(
        &self,
        src: HostId,
        dst: HostId,
        salt: u64,
        arena: &mut PathArena,
    ) -> Result<PathRef, SimError> {
        self.inner.path_ref(src, dst, salt, arena)
    }
}

/// Salt for re-route `attempt` of a flow with natural salt `base`:
/// attempt 0 is the flow's own path, later attempts perturb the salt
/// with a splitmix64-style odd multiplier. The sequence is part of the
/// simulator's determinism contract — both re-salt helpers and any A/B
/// representation must walk it identically.
fn resalt(base: u64, attempt: u64) -> u64 {
    if attempt == 0 {
        base
    } else {
        base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// How many fresh salts [`resalt_live_path`] tries after the natural one.
const RESALT_ATTEMPTS: u64 = 32;

/// Looks for an ECMP path between `src` and `dst` avoiding every
/// hard-failed link in `overlay`: the flow's natural salt (`base_salt`)
/// first, then fresh re-salts. Returns `None` when all candidates are
/// dead (e.g. the host's own NIC failed, or the fabric is
/// salt-oblivious). The surviving path is interned into `arena`.
pub fn resalt_live_path<F: Fabric + ?Sized>(
    fabric: &F,
    overlay: &FaultOverlay,
    arena: &mut PathArena,
    base_salt: u64,
    src: HostId,
    dst: HostId,
) -> Result<Option<PathRef>, SimError> {
    for attempt in 0..=RESALT_ATTEMPTS {
        let p = fabric.path_ref(src, dst, resalt(base_salt, attempt), arena)?;
        if !overlay.path_is_dead(arena.get(p)) {
            return Ok(Some(p));
        }
    }
    Ok(None)
}

/// Owned-path variant of [`resalt_live_path`], walking the exact same
/// salt sequence through [`Fabric::path`]. Exists so equivalence tests
/// can pin the two representations against each other.
pub fn resalt_live_path_vec<F: Fabric + ?Sized>(
    fabric: &F,
    overlay: &FaultOverlay,
    base_salt: u64,
    src: HostId,
    dst: HostId,
) -> Result<Option<Vec<LinkId>>, SimError> {
    for attempt in 0..=RESALT_ATTEMPTS {
        let p = fabric.path(src, dst, resalt(base_salt, attempt))?;
        if !overlay.path_is_dead(&p) {
            return Ok(Some(p));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{SimConfig, Simulation};
    use crate::sched::FifoScheduler;
    use crate::topology::BigSwitch;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, JobDag, JobSpec};

    #[test]
    fn degradation_scales_capacity_only_where_applied() {
        let f = DegradedFabric::new(BigSwitch::new(4, 8.0))
            .with_degraded_link(LinkId(2), 0.5)
            .with_degraded_host(HostId(0), 0.25);
        assert_eq!(f.num_degraded(), 3);
        assert_eq!(f.link_capacity(LinkId(2)), 4.0);
        assert_eq!(f.link_capacity(LinkId(0)), 2.0);
        assert_eq!(f.link_capacity(LinkId(4)), 2.0);
        assert_eq!(f.link_capacity(LinkId(3)), 8.0);
        assert_eq!(f.num_hosts(), 4);
    }

    #[test]
    fn routing_is_unchanged() {
        let base = BigSwitch::new(4, 8.0);
        let f = DegradedFabric::new(base.clone()).with_degraded_link(LinkId(1), 0.1);
        assert_eq!(
            f.path(HostId(1), HostId(3), 9).unwrap(),
            base.path(HostId(1), HostId(3), 9).unwrap()
        );
    }

    #[test]
    fn flows_slow_down_through_degraded_links() {
        let job = JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(1),
                4.0 * MB,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let healthy = {
            let mut sim = Simulation::new(BigSwitch::new(4, MB), SimConfig::default());
            sim.run(vec![job.clone()], &mut FifoScheduler::new(1))
        };
        let degraded = {
            let fabric =
                DegradedFabric::new(BigSwitch::new(4, MB)).with_degraded_host(HostId(1), 0.5);
            let mut sim = Simulation::new(fabric, SimConfig::default());
            sim.run(vec![job], &mut FifoScheduler::new(1))
        };
        assert!((healthy.jobs[0].jct - 4.0).abs() < 1e-6);
        assert!((degraded.jobs[0].jct - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_zero_factor() {
        let _ = DegradedFabric::new(BigSwitch::new(2, 1.0)).with_degraded_link(LinkId(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_link() {
        let _ = DegradedFabric::new(BigSwitch::new(2, 1.0)).with_degraded_link(LinkId(99), 0.5);
    }

    #[test]
    fn try_builders_report_instead_of_panicking() {
        let base = || DegradedFabric::new(BigSwitch::new(2, 1.0));
        let err = base().try_with_degraded_link(LinkId(0), 0.0).unwrap_err();
        assert!(matches!(err, SimError::InvalidFault { .. }), "{err}");
        let err = base().try_with_degraded_link(LinkId(99), 0.5).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let err = base().try_with_degraded_host(HostId(7), 0.5).unwrap_err();
        assert!(err.to_string().contains("host"));
        let ok = base().try_with_degraded_host(HostId(1), 0.5).unwrap();
        assert_eq!(ok.num_degraded(), 2);
    }

    #[test]
    fn fault_event_links_expand_hosts() {
        let e = FaultEvent::BrownoutHost {
            host: HostId(3),
            factor: 0.5,
        };
        assert_eq!(e.links(8), vec![LinkId(3), LinkId(11)]);
        let e = FaultEvent::FailLink { link: LinkId(5) };
        assert_eq!(e.links(8), vec![LinkId(5)]);
        assert!(e.is_failure() && !e.is_recovery());
        assert!(FaultEvent::RecoverHost { host: HostId(0) }.is_recovery());
    }

    #[test]
    fn schedule_validation_catches_bad_entries() {
        let fab = BigSwitch::new(4, 1.0);
        let mut s = FaultSchedule::new();
        s.push(
            1.0,
            FaultEvent::DegradeLink {
                link: LinkId(0),
                factor: 0.5,
            },
        );
        assert!(s.validate(&fab).is_ok());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());

        let mut bad_factor = FaultSchedule::new();
        bad_factor.push(
            0.0,
            FaultEvent::BrownoutHost {
                host: HostId(0),
                factor: 1.5,
            },
        );
        assert!(matches!(
            bad_factor.validate(&fab),
            Err(SimError::InvalidFault { .. })
        ));

        let mut bad_link = FaultSchedule::new();
        bad_link.push(0.0, FaultEvent::FailLink { link: LinkId(400) });
        assert!(bad_link.validate(&fab).is_err());

        let mut bad_host = FaultSchedule::new();
        bad_host.push(0.0, FaultEvent::RestoreHost { host: HostId(9) });
        assert!(bad_host.validate(&fab).is_err());

        let mut bad_time = FaultSchedule::new();
        bad_time.push(-1.0, FaultEvent::RestoreLink { link: LinkId(0) });
        assert!(bad_time.validate(&fab).is_err());
    }

    #[test]
    fn overlay_tracks_death_and_revival() {
        let mut o = FaultOverlay::new();
        let impact = o.apply(&FaultEvent::FailHost { host: HostId(1) }, 4);
        assert_eq!(impact.newly_dead, vec![LinkId(1), LinkId(5)]);
        assert!(o.is_dead(LinkId(1)) && o.is_dead(LinkId(5)));
        assert!(o.has_failures());
        assert_eq!(o.scale(LinkId(1)), 0.0);
        assert!(o.path_is_dead(&[LinkId(0), LinkId(5)]));
        // Double-fail is idempotent.
        let impact = o.apply(&FaultEvent::FailLink { link: LinkId(1) }, 4);
        assert!(impact.is_empty());
        let impact = o.apply(&FaultEvent::RecoverHost { host: HostId(1) }, 4);
        assert_eq!(impact.revived, vec![LinkId(1), LinkId(5)]);
        assert!(!o.has_failures());
        assert_eq!(o.scale(LinkId(1)), 1.0);
    }

    #[test]
    fn overlay_reports_rescaled_links_exactly() {
        let mut o = FaultOverlay::new();
        let degrade = FaultEvent::DegradeLink {
            link: LinkId(2),
            factor: 0.5,
        };
        let impact = o.apply(&degrade, 4);
        assert_eq!(impact.rescaled, vec![LinkId(2)]);
        assert!(impact.newly_dead.is_empty() && impact.revived.is_empty());
        assert_eq!(impact.changed_links().collect::<Vec<_>>(), vec![LinkId(2)]);
        // Re-degrading to the same factor changes nothing.
        assert!(o.apply(&degrade, 4).is_empty());
        // A different factor is a change again.
        let impact = o.apply(
            &FaultEvent::DegradeLink {
                link: LinkId(2),
                factor: 0.25,
            },
            4,
        );
        assert_eq!(impact.rescaled, vec![LinkId(2)]);
        // Restoring an undegraded link reports nothing; restoring the
        // degraded one reports it.
        assert!(o
            .apply(&FaultEvent::RestoreLink { link: LinkId(3) }, 4)
            .is_empty());
        let impact = o.apply(&FaultEvent::RestoreLink { link: LinkId(2) }, 4);
        assert_eq!(impact.rescaled, vec![LinkId(2)]);
        // Host brownout touches the up/down pair.
        let impact = o.apply(
            &FaultEvent::BrownoutHost {
                host: HostId(0),
                factor: 0.75,
            },
            4,
        );
        assert_eq!(impact.rescaled, vec![LinkId(0), LinkId(4)]);
    }

    #[test]
    fn mutable_fabric_layers_degradation_under_failure() {
        let mut fab = MutableFabric::new(BigSwitch::new(4, 100.0));
        fab.apply(&FaultEvent::BrownoutHost {
            host: HostId(0),
            factor: 0.25,
        });
        assert_eq!(fab.link_capacity(LinkId(0)), 25.0);
        fab.apply(&FaultEvent::FailLink { link: LinkId(0) });
        assert_eq!(fab.link_capacity(LinkId(0)), 0.0);
        assert_eq!(fab.link_capacity(LinkId(4)), 25.0);
        fab.apply(&FaultEvent::RecoverLink { link: LinkId(0) });
        assert_eq!(fab.link_capacity(LinkId(0)), 25.0);
        fab.apply(&FaultEvent::RestoreHost { host: HostId(0) });
        assert_eq!(fab.link_capacity(LinkId(0)), 100.0);
        assert_eq!(fab.overlay().num_degraded(), 0);
        assert_eq!(fab.num_hosts(), 4);
        assert_eq!(fab.num_links(), 8);
        assert!(fab
            .path(HostId(0), HostId(1), 3)
            .unwrap()
            .contains(&LinkId(0)));
        assert_eq!(fab.inner().num_hosts(), 4);
    }

    #[test]
    fn schedule_serializes_round_trip() {
        let mut s = FaultSchedule::new();
        s.push(
            0.5,
            FaultEvent::DegradeLink {
                link: LinkId(3),
                factor: 0.25,
            },
        )
        .push(2.0, FaultEvent::FailHost { host: HostId(1) });
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
